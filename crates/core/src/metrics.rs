//! Simulation reports and derived metrics.

use sgcn_mem::{EnergyBreakdown, MemReport, Traffic};

/// Process-wide wall-clock accounting of time spent *inside* the
/// dataflow simulator (`AccelModel::simulate` bodies), summed across
/// threads. Everything a driver does outside of it — graph synthesis,
/// trace generation, format encoding, sampling, rendering — is
/// "prepare" time by subtraction. The perf harness (`bench_sim`) reads
/// this to attribute wall time per stage; the counter never influences
/// simulation results.
pub mod timing {
    use std::sync::atomic::{AtomicU64, Ordering};

    static SIM_NANOS: AtomicU64 = AtomicU64::new(0);

    /// Nanoseconds spent inside the simulator so far (process lifetime).
    pub fn simulate_nanos() -> u64 {
        SIM_NANOS.load(Ordering::Relaxed)
    }

    /// Books one simulation's elapsed wall time.
    pub(crate) fn add_simulate_nanos(nanos: u64) {
        SIM_NANOS.fetch_add(nanos, Ordering::Relaxed);
    }
}

/// Per-layer slice of a simulation (layers are the natural unit of the
/// paper's pipeline: Fig. 10 shows one layer's flow end to end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerReport {
    /// Layer index (0-based).
    pub layer: usize,
    /// Cycles attributed to this layer (max of compute pipeline and DRAM
    /// service time).
    pub cycles: u64,
    /// Pipelined compute cycles.
    pub compute_cycles: u64,
    /// DRAM service cycles.
    pub mem_cycles: u64,
    /// Aggregation engine cycles.
    pub agg_cycles: u64,
    /// Combination engine cycles.
    pub comb_cycles: u64,
    /// MAC operations.
    pub macs: u64,
}

impl LayerReport {
    /// Whether this layer was memory-bound.
    pub fn is_memory_bound(&self) -> bool {
        self.mem_cycles >= self.compute_cycles
    }
}

/// The result of simulating one accelerator on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Accelerator name.
    pub accelerator: &'static str,
    /// Workload label (dataset abbreviation).
    pub workload: String,
    /// Total execution cycles.
    pub cycles: u64,
    /// Aggregation compute cycles (before memory stalls).
    pub agg_cycles: u64,
    /// Combination compute cycles (before memory stalls).
    pub comb_cycles: u64,
    /// DRAM-limited cycles.
    pub mem_cycles: u64,
    /// Total MAC operations.
    pub macs: u64,
    /// Memory-system counters.
    pub mem: MemReport,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Estimated peak (TDP-style) power in watts.
    pub tdp_watts: f64,
    /// Per-layer breakdown.
    pub layers: Vec<LayerReport>,
}

impl SimReport {
    /// Total DRAM bytes moved.
    pub fn dram_bytes(&self) -> u64 {
        self.mem.dram_total_bytes()
    }

    /// DRAM bytes for one traffic class.
    pub fn dram_bytes_for(&self, kind: Traffic) -> u64 {
        self.mem.traffic(kind).dram_bytes
    }

    /// Speedup of `self` relative to `baseline` (higher = faster).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        baseline.cycles as f64 / self.cycles as f64
    }

    /// DRAM traffic normalized to `baseline` (lower = less traffic).
    pub fn traffic_vs(&self, baseline: &SimReport) -> f64 {
        if baseline.dram_bytes() == 0 {
            return 0.0;
        }
        self.dram_bytes() as f64 / baseline.dram_bytes() as f64
    }

    /// Energy normalized to `baseline` (lower = more efficient).
    pub fn energy_vs(&self, baseline: &SimReport) -> f64 {
        let b = baseline.energy.total_pj();
        if b == 0.0 {
            return 0.0;
        }
        self.energy.total_pj() / b
    }

    /// Execution time in milliseconds at 1 GHz.
    pub fn time_ms(&self) -> f64 {
        self.cycles as f64 / 1e6
    }

    /// Fraction of layers that were memory-bound — the quantity the
    /// paper's §IV design goals hinge on ("the primary bottleneck of GCN
    /// execution is known to be the aggregation phase, which is extremely
    /// memory intensive").
    pub fn memory_bound_fraction(&self) -> f64 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers.iter().filter(|l| l.is_memory_bound()).count() as f64 / self.layers.len() as f64
    }
}

/// Running geometric mean (the paper reports geomean speedups).
#[derive(Debug, Clone, Copy, Default)]
pub struct GeoMean {
    log_sum: f64,
    count: usize,
}

impl GeoMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        GeoMean::default()
    }

    /// Adds a strictly positive sample.
    ///
    /// # Panics
    ///
    /// Panics if `value <= 0`.
    pub fn push(&mut self, value: f64) {
        assert!(value > 0.0, "geomean samples must be positive, got {value}");
        self.log_sum += value.ln();
        self.count += 1;
    }

    /// The geometric mean so far (1.0 when empty).
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            1.0
        } else {
            (self.log_sum / self.count as f64).exp()
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no samples were added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl FromIterator<f64> for GeoMean {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut g = GeoMean::new();
        for v in iter {
            g.push(v);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64) -> SimReport {
        SimReport {
            accelerator: "test",
            workload: "WL".into(),
            cycles,
            agg_cycles: 0,
            comb_cycles: 0,
            mem_cycles: 0,
            macs: 0,
            mem: MemReport::default(),
            energy: EnergyBreakdown::default(),
            tdp_watts: 0.0,
            layers: Vec::new(),
        }
    }

    #[test]
    fn speedup_ratio() {
        let fast = report(100);
        let slow = report(300);
        assert!((fast.speedup_over(&slow) - 3.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_known_values() {
        let g: GeoMean = [1.0, 4.0].into_iter().collect();
        assert!((g.value() - 2.0).abs() < 1e-12);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn geomean_empty_is_one() {
        assert_eq!(GeoMean::new().value(), 1.0);
        assert!(GeoMean::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        GeoMean::new().push(0.0);
    }

    #[test]
    fn time_ms_at_1ghz() {
        assert!((report(2_000_000).time_ms() - 2.0).abs() < 1e-12);
    }
}
