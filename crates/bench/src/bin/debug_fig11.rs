//! Internal debugging harness: paper-scale Fig. 11 shape check on a
//! subset of datasets.

use sgcn::experiments::{fig11_performance, ExperimentConfig};
use sgcn_graph::datasets::DatasetId;

fn main() {
    let cfg = ExperimentConfig::paper();
    let datasets = [
        DatasetId::Cora,
        DatasetId::PubMed,
        DatasetId::Reddit,
        DatasetId::Github,
    ];
    let t0 = std::time::Instant::now();
    let grid = fig11_performance(&cfg, &datasets);
    println!("{grid}");
    println!("elapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
