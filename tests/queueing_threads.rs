//! Queueing thread-count equivalence on the real serving path. This is
//! the **only** test in this binary: `SGCN_THREADS` is process state,
//! and any sibling test reaching `par_map` (or anything else that reads
//! the environment) would race the `set_var` calls — the same
//! one-env-test discipline as `thread_equivalence.rs` and
//! `golden_suite.rs`. Integration-test binaries are separate processes,
//! so the env-free queueing properties live in `queueing.rs` instead.

use sgcn::accel::AccelModel;
use sgcn::experiments::ExperimentConfig;
use sgcn::serving::queueing::{
    feature_row_bytes, prepare, prepare_degraded, simulate_queue, ClassPolicy, DegradePolicy,
    EngineLineup, FailureModel, FleetSpec, FormatPolicy, QueueConfig, RetryPolicy, ScalePolicy,
    SchedPolicy, ServeFormat, SloConfig, TrafficModel,
};
use sgcn::serving::{ServingConfig, ServingContext};
use sgcn::HwConfig;
use sgcn_graph::datasets::DatasetId;
use sgcn_graph::sampling::Fanouts;

/// One full queueing sweep on the real serving path (hotspot stream,
/// every traffic model × policy, plus SLO-shedding,
/// heterogeneous-fleet/work-stealing and sharded-store cells),
/// returning every byte that lands in `BENCH_queue.json`.
fn queue_probe() -> Vec<String> {
    let cfg = ExperimentConfig::quick();
    let ctx = ServingContext::new(ServingConfig {
        dataset: DatasetId::Cora,
        scale: cfg.scale,
        fanouts: Fanouts::new(vec![8, 4]),
        width: cfg.width,
        seed: cfg.seed,
    });
    let stream = ctx.hotspot_stream(30, 5);
    let hw = HwConfig::default();
    let prepared = prepare(&ctx, &stream, &AccelModel::sgcn(), &hw);
    let row = feature_row_bytes(&ctx);
    let mean = prepared.iter().map(|p| p.report.cycles).sum::<u64>() / 30;
    let traffics = [
        TrafficModel::Exponential,
        TrafficModel::bursty_default(),
        TrafficModel::diurnal_default(),
        TrafficModel::ClosedLoop { clients: 6 },
    ];
    let mut out = Vec::new();
    for traffic in traffics {
        for policy in SchedPolicy::ALL {
            let qcfg = QueueConfig::new(3, policy, 0.8, 7).with_traffic(traffic);
            let run = simulate_queue(&prepared, &qcfg, &hw, row);
            out.push(
                run.summary
                    .to_json(&format!("{} {}", traffic.label(), policy.label())),
            );
        }
    }
    // SLO shedding under pressure, and the lazy loop's fleet features.
    for (name, qcfg) in [
        (
            "slo-shed",
            QueueConfig::new(2, SchedPolicy::SloAware, 1.5, 7)
                .with_traffic(TrafficModel::bursty_default())
                .with_slo(SloConfig::shedding(2 * mean)),
        ),
        (
            "mixed-steal",
            QueueConfig::new(3, SchedPolicy::CacheAffinity, 0.9, 7)
                .with_fleet(FleetSpec::mixed(3, 1.5).with_work_stealing()),
        ),
    ] {
        out.push(
            simulate_queue(&prepared, &qcfg, &hw, row)
                .summary
                .to_json(name),
        );
    }
    // Failure drill: MTBF crashes, bounded retries and elastic
    // autoscaling on bursty traffic — plus the recorded arrival trace
    // replayed through the same fleet, which must reproduce the drill
    // byte for byte.
    let drill_cfg = QueueConfig::new(3, SchedPolicy::CacheAffinity, 0.9, 7)
        .with_traffic(TrafficModel::bursty_default())
        .with_faults(FailureModel::mtbf_default())
        .with_retry(RetryPolicy::new(3, mean / 4))
        .with_autoscale(ScalePolicy::with_floor(2));
    let drill = simulate_queue(&prepared, &drill_cfg, &hw, row);
    let trace = drill.arrival_trace();
    out.push(trace.to_json());
    out.push(drill.summary.to_json("drill"));
    let replay = simulate_queue(&prepared, &drill_cfg.with_trace(trace), &hw, row);
    assert_eq!(replay.summary, drill.summary, "drill replay diverged");
    out.push(replay.summary.to_json("drill-replay"));
    // Scenario-lab cells: deadline classes with preemption under
    // overload and drills, then the brownout ladder on the degraded
    // preparation (lineup + adaptive dispatch), with and without the
    // degrade policy — the preparation itself is the parallel stage the
    // worker count exercises.
    let class_cfg = QueueConfig::new(3, SchedPolicy::CacheAffinity, 1.3, 7)
        .with_traffic(TrafficModel::bursty_default())
        .with_faults(FailureModel::mtbf_default())
        .with_retry(RetryPolicy::new(2, mean / 4))
        .with_classes(ClassPolicy::mix(0.3).with_preemption());
    out.push(
        simulate_queue(&prepared, &class_cfg, &hw, row)
            .summary
            .to_json("classes-preempt"),
    );
    let lineup = EngineLineup::mixed(3, hw);
    let degraded = prepare_degraded(
        &ctx,
        &stream,
        &AccelModel::sgcn(),
        &lineup,
        &ServeFormat::PALETTE,
    );
    // Sharded-store cells: a real shard plan over the context graph,
    // shard-oblivious vs shard-affinity routing — the per-request
    // residency bitmaps and the network bill must be thread-invariant.
    let plan = sgcn::serving::sharding::ShardPlan::from_graph(&ctx.dataset.graph, 3, 8);
    for policy in [SchedPolicy::LeastLoaded, SchedPolicy::ShardAffinity] {
        let qcfg = QueueConfig::new(3, policy, 0.9, 7)
            .with_traffic(TrafficModel::bursty_default())
            .with_sharding(plan.clone());
        out.push(
            simulate_queue(&prepared, &qcfg, &hw, row)
                .summary
                .to_json(&format!("sharded {}", policy.label())),
        );
    }
    for (name, brownout) in [("classes-lab-off", false), ("classes-lab-on", true)] {
        let mut lab_cfg = QueueConfig::new(3, SchedPolicy::CostAware, 1.5, 7)
            .with_traffic(TrafficModel::bursty_default())
            .with_lineup(lineup.clone())
            .with_format(FormatPolicy::Adaptive)
            .with_faults(FailureModel::mtbf_default())
            .with_retry(RetryPolicy::new(2, mean / 4))
            .with_classes(ClassPolicy::mix(0.3).with_preemption());
        if brownout {
            lab_cfg = lab_cfg.with_degrade(DegradePolicy::default());
        }
        out.push(
            simulate_queue(&degraded, &lab_cfg, &hw, row)
                .summary
                .to_json(name),
        );
    }
    out
}

#[test]
fn forced_worker_counts_produce_identical_queue_json() {
    std::env::set_var("SGCN_THREADS", "1");
    assert_eq!(sgcn_par::threads(), 1);
    let serial = queue_probe();

    for workers in ["2", "4"] {
        std::env::set_var("SGCN_THREADS", workers);
        assert_eq!(sgcn_par::threads(), workers.parse::<usize>().unwrap());
        assert_eq!(
            queue_probe(),
            serial,
            "SGCN_THREADS={workers} changed the queue summaries"
        );
    }
    std::env::remove_var("SGCN_THREADS");
}
