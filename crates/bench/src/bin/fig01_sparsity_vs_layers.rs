//! Fig. 1: average intermediate feature sparsity vs network depth,
//! traditional vs modern (residual) GCNs on Cora/CiteSeer/PubMed.

use sgcn::experiments::fig01_sparsity_vs_layers;
use sgcn_bench::{banner, experiment_config, quick_mode};

fn main() {
    banner("Fig 1: sparsity vs #layers");
    let cfg = experiment_config();
    let depths: &[usize] = if quick_mode() {
        &[1, 3, 5, 10]
    } else {
        &[1, 3, 5, 10, 28, 56, 112]
    };
    println!("{}", fig01_sparsity_vs_layers(&cfg, depths));
    println!(
        "Paper shape: traditional GCNs stay ≤30% sparsity at any depth; residual\n\
         GCNs jump above 50% as soon as the residual connection is added and rise\n\
         with depth toward ~70%."
    );
}
