//! Property tests for the line-granular trace compaction: replaying a
//! compacted run stream must be **bit-identical** — every counter, clock
//! and the cache contents themselves — to replaying the original span
//! sequence one span at a time, on both cache engines. This is the
//! exactness contract of `sgcn_formats::runs` and
//! `MemorySystem::{access_lines, write_lines}` (the optimization changes
//! how counters are computed, never what they count).

use proptest::prelude::*;
use sgcn_formats::{LineRun, RunCompactor, Span};
use sgcn_mem::{
    AddressMapping, Cache, CacheConfig, CacheEngine, Dram, DramConfig, MemorySystem, Traffic,
};

/// Builds a span sequence from `(backstep, bytes)` pairs: each span
/// starts `backstep` bytes before the previous span's end (0 = byte
/// adjacent — the seam-heavy shape real formats emit), so the stream
/// mixes adjacency, seams, deep overlaps and (via large `bytes` jumps)
/// gaps.
fn spans_from(walk: &[(u64, u64)]) -> Vec<Span> {
    let mut spans = Vec::with_capacity(walk.len());
    let mut cursor = 4096u64;
    for &(back, bytes) in walk {
        let offset = cursor.saturating_sub(back);
        spans.push(Span::new(offset, bytes as u32));
        // Jump ahead occasionally to create line-granular gaps.
        cursor = offset + bytes + if back % 7 == 0 { back * 11 } else { 0 };
    }
    spans
}

fn small_mem(engine: CacheEngine) -> MemorySystem {
    // Small cache → frequent evictions; HBM2 timing model.
    MemorySystem::with_engine(
        CacheConfig {
            capacity_bytes: 4 * 1024,
            ways: 4,
            line_bytes: 64,
            ..CacheConfig::default()
        },
        DramConfig::hbm2(),
        engine,
    )
}

/// Compacts `spans` with the given compactor mode.
fn compact(mode: fn(u64) -> RunCompactor, spans: &[Span]) -> Vec<LineRun> {
    let mut c = mode(64);
    let mut runs = Vec::new();
    for &s in spans {
        c.push(s, &mut |r| runs.push(r));
    }
    c.finish(&mut |r| runs.push(r));
    runs
}

/// Residency fingerprint over the address region the spans touched.
fn residency(mem: &MemorySystem, spans: &[Span]) -> Vec<u64> {
    let end = spans.iter().map(Span::end).max().unwrap_or(0) + 64;
    (0..end / 64)
        .filter(|&line| mem.peek_span(line * 64, 64).hits == 1)
        .collect()
}

proptest! {
    #[test]
    fn read_runs_replay_bit_identically(
        walk in proptest::collection::vec((0u64..160, 1u64..400), 1..60),
        engine_flat in proptest::bool::ANY,
    ) {
        let engine = if engine_flat { CacheEngine::Flat } else { CacheEngine::List };
        let spans = spans_from(&walk);
        let runs = compact(RunCompactor::reads, &spans);

        let mut by_span = small_mem(engine);
        let mut span_counts = sgcn_mem::SpanCounts::default();
        for &s in &spans {
            span_counts.add(by_span.read_span(s.offset, u64::from(s.bytes), Traffic::FeatureRead));
        }
        let mut by_run = small_mem(engine);
        let mut run_counts = sgcn_mem::SpanCounts::default();
        for &r in &runs {
            run_counts.add(by_run.access_lines(0, r, Traffic::FeatureRead));
        }

        // Counters, per-class traffic, DRAM stats and clocks, the
        // returned counts, and the surviving cache contents all agree.
        prop_assert_eq!(by_span.report(), by_run.report());
        prop_assert_eq!(by_span.elapsed_dram_cycles(), by_run.elapsed_dram_cycles());
        prop_assert_eq!(span_counts, run_counts);
        prop_assert_eq!(residency(&by_span, &spans), residency(&by_run, &spans));
        // The request count is preserved through merging: one per
        // non-empty span.
        let nonempty = spans.iter().filter(|s| !s.is_empty()).count() as u64;
        prop_assert_eq!(by_run.report().traffic(Traffic::FeatureRead).requests, nonempty);
    }

    #[test]
    fn write_runs_replay_bit_identically(
        walk in proptest::collection::vec((0u64..160, 1u64..400), 1..60),
        engine_flat in proptest::bool::ANY,
    ) {
        let engine = if engine_flat { CacheEngine::Flat } else { CacheEngine::List };
        let spans = spans_from(&walk);
        let runs = compact(RunCompactor::writes, &spans);
        for r in &runs {
            prop_assert_eq!(r.seam_hits, 0, "write runs never merge seams");
        }

        let mut by_span = small_mem(engine);
        // Pre-warm some lines so invalidation has work to do.
        let mut by_run = small_mem(engine);
        for m in [&mut by_span, &mut by_run] {
            for &s in spans.iter().step_by(3) {
                m.read_span(s.offset, u64::from(s.bytes.max(1)), Traffic::FeatureRead);
            }
        }
        for &s in &spans {
            by_span.write_span(s.offset, u64::from(s.bytes), Traffic::FeatureWrite);
        }
        for &r in &runs {
            by_run.write_lines(0, r, Traffic::FeatureWrite);
        }

        prop_assert_eq!(by_span.report(), by_run.report());
        prop_assert_eq!(by_span.elapsed_dram_cycles(), by_run.elapsed_dram_cycles());
        prop_assert_eq!(residency(&by_span, &spans), residency(&by_run, &spans));
    }

    #[test]
    fn interleaved_reads_and_writes_replay_bit_identically(
        walk in proptest::collection::vec((0u64..120, 1u64..300, proptest::bool::ANY), 1..50),
    ) {
        // Alternating read/write visits, each compacted independently —
        // the shape of a simulated layer (read sweeps interleaved with
        // output write-backs).
        for engine in [CacheEngine::Flat, CacheEngine::List] {
            let mut by_span = small_mem(engine);
            let mut by_run = small_mem(engine);
            let mut cursor = 0u64;
            for &(back, bytes, is_write) in &walk {
                let offset = cursor.saturating_sub(back);
                cursor = offset + bytes;
                let spans = [Span::new(offset, bytes as u32), Span::new(offset + bytes, (bytes / 2) as u32)];
                if is_write {
                    let runs = compact(RunCompactor::writes, &spans);
                    for &s in &spans {
                        by_span.write_span(s.offset, u64::from(s.bytes), Traffic::FeatureWrite);
                    }
                    for &r in &runs {
                        by_run.write_lines(0, r, Traffic::FeatureWrite);
                    }
                } else {
                    let runs = compact(RunCompactor::reads, &spans);
                    for &s in &spans {
                        by_span.read_span(s.offset, u64::from(s.bytes), Traffic::FeatureRead);
                    }
                    for &r in &runs {
                        by_run.access_lines(0, r, Traffic::FeatureRead);
                    }
                }
            }
            prop_assert_eq!(by_span.report(), by_run.report());
            prop_assert_eq!(by_span.elapsed_dram_cycles(), by_run.elapsed_dram_cycles());
        }
    }

    #[test]
    fn probe_run_matches_per_line_probes(
        runs in proptest::collection::vec((0u64..600, 1u64..40), 1..40),
    ) {
        // The batched cache walk must hit/miss/evict and re-order
        // recency exactly like per-line probes, including the miss
        // sub-run reporting.
        let config = CacheConfig {
            capacity_bytes: 2 * 1024,
            ways: 4,
            line_bytes: 64,
            ..CacheConfig::default()
        };
        let mut batched = Cache::new(config);
        let mut per_line = Cache::new(config);
        for &(first, lines) in &runs {
            let mut reported = Vec::new();
            let hits = batched.probe_run(first, lines, |miss_first, miss_count| {
                reported.push((miss_first, miss_count));
            });
            let mut expect_hits = 0u64;
            let mut expect_misses = Vec::new();
            for line in first..first + lines {
                if per_line.access_line(line) {
                    expect_hits += 1;
                } else {
                    match expect_misses.last_mut() {
                        Some((start, count)) if *start + *count == line => *count += 1,
                        _ => expect_misses.push((line, 1)),
                    }
                }
            }
            prop_assert_eq!(hits, expect_hits);
            prop_assert_eq!(reported, expect_misses);
            prop_assert_eq!(batched.stats(), per_line.stats());
        }
        // Contents agree afterwards.
        for line in 0..700 {
            prop_assert_eq!(batched.peek_line(line), per_line.peek_line(line));
        }
    }

    #[test]
    fn dram_access_run_matches_per_burst_accesses(
        runs in proptest::collection::vec((0u64..(1 << 22), 1u64..300, proptest::bool::ANY), 1..30),
        bank_first in proptest::bool::ANY,
    ) {
        let config = DramConfig {
            mapping: if bank_first {
                AddressMapping::BankInterleaved
            } else {
                AddressMapping::ChannelInterleaved
            },
            ..DramConfig::hbm2()
        };
        let mut batched = Dram::new(config);
        let mut per_burst = Dram::new(config);
        for &(addr, count, is_write) in &runs {
            let addr = addr & !63;
            batched.access_run(addr, count, 64, is_write);
            for i in 0..count {
                per_burst.access(addr + i * 64, is_write);
            }
            prop_assert_eq!(batched.stats(), per_burst.stats());
            // The f64 channel/bank clocks accumulate in the same order,
            // so even the rounded elapsed time matches exactly.
            prop_assert_eq!(batched.elapsed_cycles(), per_burst.elapsed_cycles());
        }
    }
}
