//! Set-associative global cache.
//!
//! Models the accelerator's on-chip global cache (Table III: 512 KB,
//! 16-way, LRU, 64 B lines) "resembling a last-level cache in modern CPUs"
//! (§III-B). Accesses are line-granular; the [`crate::MemorySystem`] breaks
//! byte spans into lines before probing.

/// Replacement policy for the global cache.
///
/// Table III specifies LRU; the alternatives exist for the replacement
/// ablation (`ablation_cache_policy` in `sgcn-bench`) — the paper's §V-C
/// motivates SAC precisely by LRU's thrashing pattern on oversized
/// working sets, the problem BIP-style insertion policies attack
/// (Qureshi et al., ISCA'07, the paper's reference \[61\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (the paper's configuration).
    #[default]
    Lru,
    /// First-in first-out: insertion order, no recency promotion.
    Fifo,
    /// Bimodal insertion: new lines insert at LRU position except one in
    /// `1/32` inserted at MRU — thrash-resistant for cyclic working sets.
    Bip,
}

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl Default for CacheConfig {
    /// The paper's Table III cache: 512 KB, 16-way, 64 B lines, LRU.
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 512 * 1024,
            ways: 16,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
        }
    }
}

impl CacheConfig {
    /// Convenience constructor with capacity in KiB.
    pub fn with_capacity_kib(kib: u64) -> Self {
        CacheConfig {
            capacity_bytes: kib * 1024,
            ..CacheConfig::default()
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways/line, or capacity not
    /// a multiple of `ways × line_bytes`).
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0 && self.line_bytes > 0, "degenerate cache geometry");
        let set_bytes = self.ways as u64 * self.line_bytes;
        assert!(
            self.capacity_bytes % set_bytes == 0 && self.capacity_bytes > 0,
            "capacity {} not a multiple of way×line {}",
            self.capacity_bytes,
            set_bytes
        );
        (self.capacity_bytes / set_bytes) as usize
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Line accesses that hit.
    pub hits: u64,
    /// Line accesses that missed.
    pub misses: u64,
    /// Evictions of valid lines.
    pub evictions: u64,
}

impl CacheStats {
    /// Total line accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative cache over 64 B (configurable) lines with a
/// selectable replacement policy (LRU by default).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    /// Per set: line tags in recency order, index 0 = MRU.
    lines: Vec<Vec<u64>>,
    stats: CacheStats,
    /// Deterministic counter driving BIP's bimodal insertion.
    bip_counter: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            config,
            sets,
            lines: vec![Vec::with_capacity(config.ways); sets],
            stats: CacheStats::default(),
            bip_counter: 0,
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Probes the line containing `addr`; fills on miss, evicting per the
    /// configured policy. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes;
        let set = (line % self.sets as u64) as usize;
        let policy = self.config.policy;
        let ways = &mut self.lines[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            // FIFO does not promote on hit; LRU and BIP do.
            if !matches!(policy, ReplacementPolicy::Fifo) {
                let tag = ways.remove(pos);
                ways.insert(0, tag);
            }
            self.stats.hits += 1;
            true
        } else {
            if ways.len() == self.config.ways {
                ways.pop();
                self.stats.evictions += 1;
            }
            let at_mru = match policy {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => true,
                ReplacementPolicy::Bip => {
                    self.bip_counter = self.bip_counter.wrapping_add(1);
                    self.bip_counter % 32 == 0
                }
            };
            if at_mru {
                ways.insert(0, line);
            } else {
                ways.push(line);
            }
            self.stats.misses += 1;
            false
        }
    }

    /// Invalidates the line containing `addr` if present (used by streaming
    /// writes that bypass the cache, so later reads see fresh data).
    /// Returns `true` if a line was dropped.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes;
        let set = (line % self.sets as u64) as usize;
        let ways = &mut self.lines[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            ways.remove(pos);
            true
        } else {
            false
        }
    }

    /// Invalidates all lines, keeping the statistics.
    pub fn flush(&mut self) {
        for set in &mut self.lines {
            set.clear();
        }
    }

    /// Resets the statistics, keeping cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
        })
    }

    #[test]
    fn default_matches_table3() {
        let c = CacheConfig::default();
        assert_eq!(c.capacity_bytes, 512 * 1024);
        assert_eq!(c.ways, 16);
        assert_eq!(c.sets(), 512);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with line_idx % 4 == 0: addresses 0, 256, 512.
        c.access(0);
        c.access(256);
        c.access(0); // 0 is MRU, 256 LRU
        c.access(512); // evicts 256
        assert!(c.access(0), "0 should survive");
        assert!(!c.access(256), "256 was evicted");
        assert_eq!(c.stats().evictions, 2); // 256 evicted, then 0 or 512
    }

    #[test]
    fn working_set_within_capacity_all_hits() {
        let mut c = tiny();
        let lines: Vec<u64> = (0..8).map(|i| i * 64).collect(); // exactly capacity
        for &a in &lines {
            c.access(a);
        }
        for &a in &lines {
            assert!(c.access(a), "line {a} should hit");
        }
        assert_eq!(c.stats().hit_rate(), 0.5);
    }

    #[test]
    fn thrashing_working_set_misses() {
        let mut c = tiny();
        // 16 distinct lines in a 8-line cache, cycled twice: all misses.
        for _ in 0..2 {
            for i in 0..16u64 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 32);
    }

    #[test]
    fn flush_clears_contents_not_stats() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert!(!c.access(0));
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            capacity_bytes: 1000,
            ways: 3,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
        });
    }

    fn with_policy(policy: ReplacementPolicy) -> Cache {
        Cache::new(CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
            policy,
        })
    }

    #[test]
    fn fifo_does_not_promote_on_hit() {
        let mut c = with_policy(ReplacementPolicy::Fifo);
        // Set 0: lines 0, 256. Hit 0, then insert 512: FIFO evicts 0 (the
        // oldest insertion) even though it was just touched.
        c.access(0);
        c.access(256);
        assert!(c.access(0));
        c.access(512);
        assert!(!c.access(0), "FIFO evicted the oldest-inserted line");
        // LRU, by contrast, keeps the recently touched line.
        let mut l = with_policy(ReplacementPolicy::Lru);
        l.access(0);
        l.access(256);
        assert!(l.access(0));
        l.access(512);
        assert!(l.access(0), "LRU kept the recently used line");
    }

    #[test]
    fn bip_resists_cyclic_thrash() {
        // Cyclic working set slightly over capacity: LRU gets zero hits,
        // BIP retains a fraction of the set.
        let lines: Vec<u64> = (0..12u64).map(|i| i * 64 * 4).collect(); // all map set 0? no: stride 256 → sets cycle
        let run = |policy| {
            let mut c = with_policy(policy);
            for _ in 0..50 {
                for &a in &lines {
                    c.access(a);
                }
            }
            c.stats().hits
        };
        let lru_hits = run(ReplacementPolicy::Lru);
        let bip_hits = run(ReplacementPolicy::Bip);
        assert!(
            bip_hits > lru_hits,
            "BIP {bip_hits} hits should beat LRU {lru_hits} under thrash"
        );
    }

    #[test]
    fn policies_agree_when_working_set_fits() {
        for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::Bip] {
            let mut c = with_policy(policy);
            let lines: Vec<u64> = (0..8u64).map(|i| i * 64).collect();
            for _ in 0..3 {
                for &a in &lines {
                    c.access(a);
                }
            }
            assert_eq!(c.stats().misses, 8, "{policy:?} compulsory misses only");
        }
    }
}
