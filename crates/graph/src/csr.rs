//! The normalized adjacency matrix in compressed sparse row form.

use crate::partition::VertexRange;

/// A graph topology in CSR with per-edge weights — the paper's `Ã` matrix,
/// kept in CSR "to employ the high \[topology\] sparsity" (§III-B).
///
/// Rows are destination vertices; `neighbors(v)` lists the source vertices
/// whose features are aggregated into `v`. Construct via
/// [`crate::GraphBuilder`] or the generators in [`crate::generate`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CsrGraph {
    pub(crate) row_ptr: Vec<usize>,
    pub(crate) col_idx: Vec<u32>,
    pub(crate) weights: Vec<f32>,
}

impl CsrGraph {
    /// Builds directly from CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent (non-monotonic `row_ptr`,
    /// mismatched lengths, or column indices out of range).
    pub fn from_parts(row_ptr: Vec<usize>, col_idx: Vec<u32>, weights: Vec<f32>) -> Self {
        assert!(!row_ptr.is_empty(), "row_ptr must have at least one entry");
        assert_eq!(
            *row_ptr.last().unwrap(),
            col_idx.len(),
            "row_ptr end must equal nnz"
        );
        assert_eq!(
            col_idx.len(),
            weights.len(),
            "col_idx and weights must align"
        );
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be monotonic"
        );
        let n = row_ptr.len() - 1;
        assert!(
            col_idx.iter().all(|&c| (c as usize) < n),
            "column index out of range"
        );
        CsrGraph {
            row_ptr,
            col_idx,
            weights,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of directed edges (stored non-zeros of `Ã`).
    pub fn num_edges(&self) -> usize {
        self.col_idx.len()
    }

    /// In-degree of vertex `v` (row length).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        let (s, e) = self.row_bounds(v);
        e - s
    }

    /// Neighbor (source-vertex) list of `v`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        let (s, e) = self.row_bounds(v);
        &self.col_idx[s..e]
    }

    /// Edge weights aligned with [`Self::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn edge_weights(&self, v: usize) -> &[f32] {
        let (s, e) = self.row_bounds(v);
        &self.weights[s..e]
    }

    /// Average in-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Topology footprint in bytes when stored as CSR with 32-bit column
    /// indices, 32-bit weights and a row-pointer array — what the graph
    /// reader streams from DRAM.
    pub fn topology_bytes(&self) -> u64 {
        (self.row_ptr.len() as u64) * 4 + (self.num_edges() as u64) * 8
    }

    /// Neighbors of `v` restricted to sources within `range`
    /// (a column tile), via binary search on the sorted neighbor list.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors_in(&self, v: usize, range: VertexRange) -> (&[u32], &[f32]) {
        let (s, e) = self.row_bounds(v);
        let cols = &self.col_idx[s..e];
        let lo = cols.partition_point(|&c| (c as usize) < range.start);
        let hi = cols.partition_point(|&c| (c as usize) < range.end);
        (&cols[lo..hi], &self.weights[s + lo..s + hi])
    }

    /// Iterates `(dst, src, weight)` over all edges.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.num_vertices()).flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .zip(self.edge_weights(v))
                .map(move |(&src, &w)| (v as u32, src, w))
        })
    }

    fn row_bounds(&self, v: usize) -> (usize, usize) {
        assert!(
            v < self.num_vertices(),
            "vertex {v} out of range {}",
            self.num_vertices()
        );
        (self.row_ptr[v], self.row_ptr[v + 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> CsrGraph {
        // 0-1-2 path, unit weights, no self loops.
        CsrGraph::from_parts(vec![0, 1, 3, 4], vec![1, 0, 2, 1], vec![1.0; 4])
    }

    #[test]
    fn basic_accessors() {
        let g = path3();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!((g.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_in_range() {
        let g = path3();
        let (n, w) = g.neighbors_in(1, VertexRange::new(0, 1));
        assert_eq!(n, &[0]);
        assert_eq!(w.len(), 1);
        let (n, _) = g.neighbors_in(1, VertexRange::new(2, 3));
        assert_eq!(n, &[2]);
        let (n, _) = g.neighbors_in(1, VertexRange::new(1, 2));
        assert!(n.is_empty());
    }

    #[test]
    fn iter_edges_yields_all() {
        let g = path3();
        let edges: Vec<(u32, u32, f32)> = g.iter_edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[0], (0, 1, 1.0));
    }

    #[test]
    fn topology_bytes_counts_csr_arrays() {
        let g = path3();
        assert_eq!(g.topology_bytes(), 4 * 4 + 4 * 8);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn non_monotonic_row_ptr_panics() {
        let _ = CsrGraph::from_parts(vec![0, 2, 1, 2], vec![0, 0], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_col_idx_panics() {
        let _ = CsrGraph::from_parts(vec![0, 1], vec![5], vec![1.0]);
    }
}
