//! Design ablation: SAC strip-height sweep around the paper's empirical
//! default of 32 rows (§V-C).

use sgcn::experiments::ablation_sac_strip;
use sgcn_bench::{banner, experiment_config, selected_datasets};

fn main() {
    banner("Ablation: SAC strip height");
    let cfg = experiment_config();
    println!(
        "{}",
        ablation_sac_strip(&cfg, &[8, 16, 32, 64, 128], &selected_datasets())
    );
    println!(
        "Expected shape: a broad plateau around the paper's strip height of 32;\n\
         very tall strips degenerate toward the conventional split."
    );
}
