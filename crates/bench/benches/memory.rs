//! Criterion microbenches for the memory hierarchy: cache probe
//! throughput, DRAM model service accounting, and the line-run
//! compaction replay vs the span-at-a-time path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sgcn_formats::{LineRun, RunCompactor, Span};
use sgcn_mem::{
    Cache, CacheConfig, CacheEngine, Dram, DramConfig, ListCache, MemorySystem, Traffic,
};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("sequential_probe", |b| {
        let mut cache = Cache::new(CacheConfig::default());
        b.iter(|| {
            for i in 0..10_000u64 {
                cache.access(i * 64 % (1 << 20));
            }
        })
    });
    g.bench_function("random_probe", |b| {
        let mut cache = Cache::new(CacheConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let addrs: Vec<u64> = (0..10_000)
            .map(|_| rng.gen_range(0..(1u64 << 24)))
            .collect();
        b.iter(|| {
            for &a in &addrs {
                cache.access(a);
            }
        })
    });
    g.bench_function("random_probe_list_reference", |b| {
        let mut cache = ListCache::new(CacheConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let addrs: Vec<u64> = (0..10_000)
            .map(|_| rng.gen_range(0..(1u64 << 24)))
            .collect();
        b.iter(|| {
            for &a in &addrs {
                cache.access(a);
            }
        })
    });
    g.finish();
}

/// The tentpole's batched span path vs the preserved naive per-line path:
/// identical counters, different cost.
fn bench_spans(c: &mut Criterion) {
    let mut g = c.benchmark_group("span_reads");
    // 10k spans of 384 B (a 96-column f32 slice) with feature-sweep-like
    // reuse: a hot window revisited plus a cold streaming tail.
    let mut rng = SmallRng::seed_from_u64(7);
    let spans: Vec<u64> = (0..10_000)
        .map(|i| {
            if i % 3 == 0 {
                rng.gen_range(0u64..1 << 16)
            } else {
                rng.gen_range(0u64..1 << 23)
            }
        })
        .collect();
    g.throughput(Throughput::Bytes(10_000 * 384));
    g.bench_function("fast_flat_engine", |b| {
        let mut mem = MemorySystem::with_engine(
            CacheConfig::with_capacity_kib(64),
            DramConfig::hbm2(),
            CacheEngine::Flat,
        );
        b.iter(|| {
            let mut counts = sgcn_mem::SpanCounts::default();
            for &a in &spans {
                counts.add(mem.read_span(a, 384, Traffic::FeatureRead));
            }
            counts
        })
    });
    g.bench_function("naive_list_engine", |b| {
        let mut mem = MemorySystem::with_engine(
            CacheConfig::with_capacity_kib(64),
            DramConfig::hbm2(),
            CacheEngine::List,
        );
        b.iter(|| {
            let mut counts = sgcn_mem::SpanCounts::default();
            for &a in &spans {
                counts.add(mem.read_span(a, 384, Traffic::FeatureRead));
            }
            counts
        })
    });
    g.finish();
}

/// The tentpole's line-granular compaction: replaying a BEICSR-shaped
/// span stream (bitmap head + adjacent value window per row, sharing a
/// seam line) through `access_lines` as pre-compacted runs vs issuing
/// each span through `read_span`. Both produce bit-identical counters;
/// the run path pays one batched probe/DRAM walk per run.
fn bench_line_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("line_run_replay");
    // 5k "row reads", each two spans: a 12 B bitmap head followed
    // byte-adjacently by a ~200 B value window (they share a seam line).
    let mut rng = SmallRng::seed_from_u64(21);
    let rows: Vec<u64> = (0..5_000)
        .map(|_| rng.gen_range(0u64..1 << 14) * 512)
        .collect();
    let spans: Vec<[Span; 2]> = rows
        .iter()
        .map(|&base| [Span::new(base, 12), Span::new(base + 12, 200)])
        .collect();
    let mem = || {
        MemorySystem::with_engine(
            CacheConfig::with_capacity_kib(64),
            DramConfig::hbm2(),
            CacheEngine::Flat,
        )
    };
    g.throughput(Throughput::Elements(5_000));
    g.bench_function("span_at_a_time", |b| {
        let mut m = mem();
        b.iter(|| {
            let mut counts = sgcn_mem::SpanCounts::default();
            for pair in &spans {
                for &s in pair {
                    counts.add(m.read_span(s.offset, u64::from(s.bytes), Traffic::FeatureRead));
                }
            }
            counts
        })
    });
    g.bench_function("compact_then_replay", |b| {
        let mut m = mem();
        b.iter(|| {
            let mut counts = sgcn_mem::SpanCounts::default();
            for pair in &spans {
                let mut compactor = RunCompactor::reads(64);
                let mut runs: [LineRun; 2] = [LineRun::default(); 2];
                let mut n = 0usize;
                for &s in pair {
                    compactor.push(s, &mut |r| {
                        runs[n] = r;
                        n += 1;
                    });
                }
                compactor.finish(&mut |r| {
                    runs[n] = r;
                    n += 1;
                });
                for &r in &runs[..n] {
                    counts.add(m.access_lines(0, r, Traffic::FeatureRead));
                }
            }
            counts
        })
    });
    g.bench_function("precompacted_replay", |b| {
        // The aggregation sweep's memoized steady state: runs compacted
        // once, replayed many times.
        let runs: Vec<LineRun> = spans
            .iter()
            .map(|pair| {
                let mut out = LineRun::default();
                let mut compactor = RunCompactor::reads(64);
                for &s in pair {
                    compactor.push(s, &mut |r| out = r);
                }
                compactor.finish(&mut |r| out = r);
                out
            })
            .collect();
        let mut m = mem();
        b.iter(|| {
            let mut counts = sgcn_mem::SpanCounts::default();
            for &r in &runs {
                counts.add(m.access_lines(0, r, Traffic::FeatureRead));
            }
            counts
        })
    });
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("streaming_bursts", |b| {
        let mut dram = Dram::new(DramConfig::hbm2());
        b.iter(|| {
            for i in 0..10_000u64 {
                dram.access(i * 64, false);
            }
            dram.elapsed_cycles()
        })
    });
    g.bench_function("streaming_burst_runs", |b| {
        // The batched walk behind uncached streams and miss runs —
        // bit-identical clocks/counters to per-burst `access`.
        let mut dram = Dram::new(DramConfig::hbm2());
        b.iter(|| {
            for chunk in 0..10u64 {
                dram.access_run(chunk * 64_000, 1_000, 64, false);
            }
            dram.elapsed_cycles()
        })
    });
    g.finish();
}

fn bench_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("memory_system");
    g.throughput(Throughput::Bytes(10_000 * 256));
    g.bench_function("read_256B_requests", |b| {
        let mut mem = MemorySystem::new(CacheConfig::default(), DramConfig::hbm2());
        let mut rng = SmallRng::seed_from_u64(2);
        let addrs: Vec<u64> = (0..10_000)
            .map(|_| rng.gen_range(0..(1u64 << 26)))
            .collect();
        b.iter(|| {
            for &a in &addrs {
                mem.read(a, 256, Traffic::FeatureRead);
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_spans,
    bench_line_runs,
    bench_dram,
    bench_system
);
criterion_main!(benches);
