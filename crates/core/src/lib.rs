//! # SGCN — Exploiting Compressed-Sparse Features in Deep GCN Accelerators
//!
//! A full model of the SGCN accelerator (HPCA 2023) and the five baseline
//! accelerators it is evaluated against, on a shared cache + HBM memory
//! substrate. The three contributions of the paper map to:
//!
//! * **BEICSR** — [`sgcn_formats::Beicsr`] (bitmap-index embedded in-place
//!   CSR feature format),
//! * **Microarchitecture** — [`sgcn_engines`] (sparse aggregator, prefix
//!   sum, post-combination compressor) driven by the simulator in
//!   [`accel`],
//! * **Sparsity-aware cooperation** — [`cooperation`] (interleaved-strip
//!   engine scheduling producing nested reuse windows).
//!
//! [`experiments`] contains one driver per paper table/figure; the
//! `sgcn-bench` crate's binaries print them. [`serving`] goes beyond the
//! paper: GraphSAGE-sampled per-request subgraph inference with latency
//! percentile / throughput aggregation (the `serve_sim` harness), and
//! [`serving::queueing`] puts the accelerator behind live traffic — a
//! seeded open-loop arrival process, N engines with warm caches, and
//! pluggable co-scheduling policies (the `queue_sim` harness).
//!
//! # Quickstart
//!
//! ```
//! use sgcn::{accel::AccelModel, config::HwConfig, workload::Workload};
//! use sgcn_graph::datasets::{DatasetId, SynthScale};
//! use sgcn_model::NetworkConfig;
//!
//! let wl = Workload::build(
//!     DatasetId::Cora,
//!     SynthScale::tiny(),
//!     NetworkConfig::deep_residual(4, 64),
//!     7,
//! );
//! let hw = HwConfig::default();
//! let sgcn = AccelModel::sgcn().simulate(&wl, &hw);
//! let gcnax = AccelModel::gcnax().simulate(&wl, &hw);
//! assert!(sgcn.dram_bytes() < gcnax.dram_bytes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accel;
pub mod config;
pub mod cooperation;
pub mod experiments;
pub mod metrics;
pub mod report;
pub mod serving;
pub mod workload;

pub use accel::AccelModel;
pub use config::HwConfig;
pub use metrics::SimReport;
pub use serving::queueing::{QueueConfig, QueueOutcome, QueueSummary, SchedPolicy};
pub use serving::{Request, ServeSummary, ServingConfig, ServingContext};
pub use workload::Workload;
