//! Property-based tests on the storage formats: every format must
//! round-trip arbitrary matrices, and BEICSR's structural invariants
//! (in-place offsets, alignment, bitmap consistency) must hold for all
//! shapes and sparsity patterns.

use proptest::prelude::*;
use sgcn_formats::{
    Beicsr, BeicsrConfig, BlockedEllpack, BsrFeatures, ColRange, CooFeatures, CsrFeatures,
    DenseMatrix, FeatureFormat, CACHELINE_BYTES,
};

/// Strategy: a small dense matrix with a mix of zeros and non-zeros.
fn matrix_strategy() -> impl Strategy<Value = DenseMatrix> {
    (1usize..12, 1usize..40).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            prop_oneof![3 => Just(0.0f32), 2 => -10.0f32..10.0],
            rows * cols,
        )
        .prop_map(move |data| {
            // Avoid -0.0 (compares equal to 0.0 but is not bit-identical,
            // and the formats canonicalize it away as a zero).
            let data = data.into_iter().map(|v| if v == 0.0 { 0.0 } else { v }).collect();
            DenseMatrix::from_vec(rows, cols, data)
        })
    })
}

proptest! {
    #[test]
    fn csr_roundtrip(m in matrix_strategy()) {
        let f = CsrFeatures::encode(&m);
        for r in 0..m.rows() {
            prop_assert_eq!(f.decode_row(r), m.row(r));
        }
    }

    #[test]
    fn coo_roundtrip(m in matrix_strategy()) {
        let f = CooFeatures::encode(&m);
        for r in 0..m.rows() {
            prop_assert_eq!(f.decode_row(r), m.row(r));
        }
    }

    #[test]
    fn bsr_roundtrip(m in matrix_strategy()) {
        let f = BsrFeatures::encode(&m);
        for r in 0..m.rows() {
            prop_assert_eq!(f.decode_row(r), m.row(r));
        }
    }

    #[test]
    fn ellpack_roundtrip(m in matrix_strategy()) {
        let f = BlockedEllpack::encode(&m);
        for r in 0..m.rows() {
            prop_assert_eq!(f.decode_row(r), m.row(r));
        }
    }

    #[test]
    fn beicsr_roundtrip_all_configs(m in matrix_strategy(), slice in 1usize..20) {
        for cfg in [BeicsrConfig::non_sliced(), BeicsrConfig::sliced(slice), BeicsrConfig::default()] {
            let f = Beicsr::encode(&m, cfg);
            for r in 0..m.rows() {
                prop_assert_eq!(f.decode_row(r), m.row(r));
            }
        }
    }

    #[test]
    fn beicsr_slots_are_aligned_and_disjoint(m in matrix_strategy(), slice in 1usize..20) {
        let f = Beicsr::encode(&m, BeicsrConfig::sliced(slice));
        let mut prev_end = 0u64;
        for r in 0..m.rows() {
            for s in 0..f.num_slices() {
                let off = f.slot_offset(r, s);
                prop_assert_eq!(off % CACHELINE_BYTES, 0, "slot ({}, {}) unaligned", r, s);
                prop_assert!(off >= prev_end || off == 0 && prev_end == 0);
                let span = f.slot_read_span(r, s);
                prop_assert!(span.end() <= off + f.slot_bytes());
                prev_end = off + f.slot_bytes();
            }
        }
        prop_assert_eq!(f.capacity_bytes(), prev_end);
    }

    #[test]
    fn beicsr_nnz_consistent_with_bitmap(m in matrix_strategy()) {
        let f = Beicsr::encode(&m, BeicsrConfig::sliced(8));
        for r in 0..m.rows() {
            for s in 0..f.num_slices() {
                prop_assert_eq!(f.slot_nnz(r, s), f.slot_bitmap(r, s).count_ones());
                prop_assert_eq!(f.slot_values(r, s).len(), f.slot_nnz(r, s));
                // Packed values are exactly the non-zeros in order.
                let start = s * f.slice_elems();
                let end = (start + f.slice_elems()).min(m.cols());
                let expect: Vec<f32> = m.row(r)[start..end]
                    .iter()
                    .copied()
                    .filter(|&v| v != 0.0)
                    .collect();
                prop_assert_eq!(f.slot_values(r, s), &expect[..]);
            }
        }
    }

    #[test]
    fn slice_spans_subset_of_row_spans_bytes(m in matrix_strategy()) {
        // Reading a window never costs more raw bytes than the whole row
        // plus one bitmap re-read per covering slice.
        let f = Beicsr::encode(&m, BeicsrConfig::sliced(8));
        let cols = m.cols();
        for r in 0..m.rows() {
            let full: u64 = f.row_spans(r).iter().map(|s| u64::from(s.bytes)).sum();
            let half: u64 = f
                .slice_spans(r, ColRange::new(0, cols / 2))
                .iter()
                .map(|s| u64::from(s.bytes))
                .sum();
            prop_assert!(half <= full + f.bitmap_bytes() * f.num_slices() as u64);
        }
    }

    #[test]
    fn capacity_is_at_least_payload(m in matrix_strategy()) {
        // Every format must reserve at least the bytes of its non-zeros.
        let payload = m.count_nonzeros() as u64 * 4;
        let formats: Vec<Box<dyn FeatureFormat>> = vec![
            Box::new(CsrFeatures::encode(&m)),
            Box::new(CooFeatures::encode(&m)),
            Box::new(BsrFeatures::encode(&m)),
            Box::new(Beicsr::encode(&m, BeicsrConfig::default())),
        ];
        for f in formats {
            prop_assert!(
                f.capacity_bytes() >= payload,
                "{} capacity {} < payload {}",
                f.format_name(),
                f.capacity_bytes(),
                payload
            );
        }
    }

    #[test]
    fn write_spans_equal_read_footprint_for_beicsr(m in matrix_strategy()) {
        let f = Beicsr::encode(&m, BeicsrConfig::default());
        for r in 0..m.rows() {
            prop_assert_eq!(f.write_spans(r), f.row_spans(r));
        }
    }
}
