//! Blocked ELLPACK features.
//!
//! ELLPACK pads every (block-)row to the maximum number of stored blocks in
//! the matrix so rows have uniform width — friendly to SIMD hardware, but at
//! unstructured ~50% sparsity the padding makes it strictly worse than BSR:
//! the densest block-row dictates everyone's storage. This reproduces the
//! "Blocked Ellpack" bar of the paper's Fig. 3.

use crate::layout::{Span, ELEM_BYTES};
use crate::traits::{ColRange, FeatureFormat};
use crate::DenseMatrix;

/// Sentinel block-column index marking a padded slot.
const PAD: u32 = u32::MAX;

/// Feature matrix in blocked ELLPACK with `BR×BC` blocks and uniform row
/// width `K` (max stored blocks over all block-rows).
///
/// Layout: block-row-major array of `K` slots, each slot = 4 B block-column
/// index + `BR·BC·4` B dense payload.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BlockedEllpack {
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
    k: usize,
    /// `block_rows * k` slot indices (PAD for padding).
    slot_cols: Vec<u32>,
    /// `block_rows * k * br * bc` values.
    slot_vals: Vec<f32>,
}

impl BlockedEllpack {
    /// Encodes with 2×2 blocks.
    pub fn encode(dense: &DenseMatrix) -> Self {
        Self::encode_with_blocks(dense, 2, 2)
    }

    /// Encodes with `br×bc` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `br` or `bc` is zero.
    pub fn encode_with_blocks(dense: &DenseMatrix, br: usize, bc: usize) -> Self {
        assert!(br > 0 && bc > 0, "block dimensions must be non-zero");
        let rows = dense.rows();
        let cols = dense.cols();
        let block_rows = rows.div_ceil(br);
        let block_cols_n = cols.div_ceil(bc);

        // First pass: collect non-empty blocks per block-row.
        let mut per_row: Vec<Vec<(u32, Vec<f32>)>> = Vec::with_capacity(block_rows);
        for bri in 0..block_rows {
            let mut blocks = Vec::new();
            for bci in 0..block_cols_n {
                let mut block = vec![0.0f32; br * bc];
                let mut any = false;
                for dr in 0..br {
                    let r = bri * br + dr;
                    if r >= rows {
                        continue;
                    }
                    for dc in 0..bc {
                        let c = bci * bc + dc;
                        if c >= cols {
                            continue;
                        }
                        let v = dense.get(r, c);
                        if v != 0.0 {
                            any = true;
                        }
                        block[dr * bc + dc] = v;
                    }
                }
                if any {
                    blocks.push((bci as u32, block));
                }
            }
            per_row.push(blocks);
        }
        let k = per_row.iter().map(Vec::len).max().unwrap_or(0);

        let mut slot_cols = vec![PAD; block_rows * k];
        let mut slot_vals = vec![0.0f32; block_rows * k * br * bc];
        for (bri, blocks) in per_row.iter().enumerate() {
            for (slot, (bci, block)) in blocks.iter().enumerate() {
                slot_cols[bri * k + slot] = *bci;
                let base = (bri * k + slot) * br * bc;
                slot_vals[base..base + br * bc].copy_from_slice(block);
            }
        }
        BlockedEllpack {
            rows,
            cols,
            br,
            bc,
            k,
            slot_cols,
            slot_vals,
        }
    }

    /// Uniform slot count per block-row.
    pub fn slots_per_block_row(&self) -> usize {
        self.k
    }

    fn slot_bytes(&self) -> u64 {
        4 + (self.br * self.bc) as u64 * ELEM_BYTES
    }

    fn block_row_of(&self, row: usize) -> usize {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        row / self.br
    }
}

impl FeatureFormat for BlockedEllpack {
    fn format_name(&self) -> &'static str {
        "Blocked Ellpack"
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn capacity_bytes(&self) -> u64 {
        (self.rows.div_ceil(self.br) * self.k) as u64 * self.slot_bytes()
    }

    // The allocating span methods collect from the visitors below, so the
    // span arithmetic has a single source of truth.
    fn row_spans(&self, row: usize) -> Vec<Span> {
        let mut spans = Vec::with_capacity(1);
        self.for_each_row_span(row, &mut |s| spans.push(s));
        spans
    }

    fn slice_spans(&self, row: usize, range: ColRange) -> Vec<Span> {
        let mut spans = Vec::with_capacity(1);
        self.for_each_slice_span(row, range, &mut |s| spans.push(s));
        spans
    }

    fn write_spans(&self, row: usize) -> Vec<Span> {
        self.row_spans(row)
    }

    fn for_each_row_span(&self, row: usize, f: &mut dyn FnMut(Span)) {
        // Uniform width: the whole K-slot block-row is fetched. No row
        // pointer is needed — that is ELLPACK's one saving.
        let bri = self.block_row_of(row);
        let bytes = self.k as u64 * self.slot_bytes();
        if bytes == 0 {
            return;
        }
        f(Span::new(bri as u64 * bytes, bytes as u32));
    }

    fn for_each_slice_span(&self, row: usize, _range: ColRange, f: &mut dyn FnMut(Span)) {
        // Slots are not column-sorted after padding; the hardware scans the
        // fixed-width row. Same cost as a full-row read.
        self.for_each_row_span(row, f);
    }

    fn for_each_write_span(&self, row: usize, f: &mut dyn FnMut(Span)) {
        self.for_each_row_span(row, f);
    }

    fn decode_row(&self, row: usize) -> Vec<f32> {
        let bri = self.block_row_of(row);
        let dr = row % self.br;
        let mut out = vec![0.0; self.cols];
        for slot in 0..self.k {
            let bci = self.slot_cols[bri * self.k + slot];
            if bci == PAD {
                continue;
            }
            let base = (bri * self.k + slot) * self.br * self.bc;
            for dc in 0..self.bc {
                let c = bci as usize * self.bc + dc;
                if c < self.cols {
                    out[c] = self.slot_vals[base + dr * self.bc + dc];
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (DenseMatrix, BlockedEllpack) {
        let mut m = DenseMatrix::zeros(4, 8);
        m.set(0, 0, 1.0);
        m.set(0, 3, 2.0);
        m.set(0, 6, 3.0); // block row 0: 3 blocks
        m.set(2, 5, 4.0); // block row 1: 1 block
        (m.clone(), BlockedEllpack::encode(&m))
    }

    #[test]
    fn roundtrip() {
        let (m, ell) = sample();
        for r in 0..m.rows() {
            assert_eq!(ell.decode_row(r), m.row(r), "row {r}");
        }
    }

    #[test]
    fn padded_to_max_row() {
        let (_, ell) = sample();
        assert_eq!(ell.slots_per_block_row(), 3);
        // Block row 1 has one real block but pays for 3.
        let spans = ell.row_spans(2);
        assert_eq!(spans[0].bytes as u64, 3 * (4 + 16));
    }

    #[test]
    fn uniform_row_cost() {
        let (_, ell) = sample();
        let b0: u64 = ell.row_spans(0).iter().map(|s| u64::from(s.bytes)).sum();
        let b2: u64 = ell.row_spans(2).iter().map(|s| u64::from(s.bytes)).sum();
        assert_eq!(b0, b2, "ELLPACK rows cost the same regardless of fill");
    }

    #[test]
    fn empty_matrix_has_zero_slots() {
        let m = DenseMatrix::zeros(4, 4);
        let ell = BlockedEllpack::encode(&m);
        assert_eq!(ell.slots_per_block_row(), 0);
        assert_eq!(ell.capacity_bytes(), 0);
        assert!(ell.row_spans(0).is_empty());
        assert_eq!(ell.decode_row(3), vec![0.0; 4]);
    }

    #[test]
    fn padded_row_costs_more_than_bsr_under_skew() {
        use crate::BsrFeatures;
        use crate::FeatureFormat as _;
        let (m, ell) = sample();
        let bsr = BsrFeatures::encode(&m);
        // Row 2's block-row holds one real block; ELLPACK pads it to 3 and
        // pays the padded traffic, BSR reads just the stored block.
        let ell_raw: u64 = ell.row_spans(2).iter().map(|s| u64::from(s.bytes)).sum();
        let bsr_raw: u64 = bsr.row_spans(2).iter().map(|s| u64::from(s.bytes)).sum();
        assert!(ell_raw > bsr_raw, "ellpack {ell_raw} vs bsr {bsr_raw}");
    }
}
