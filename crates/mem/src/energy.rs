//! Per-event energy model.
//!
//! Substitutes the paper's Synopsys DC + CACTI 6.5 flow (§VI-A) with
//! per-event constants at a ~32 nm-class node, drawn from the accelerator
//! literature (Horowitz ISSCC'14 energy table and CACTI-class SRAM
//! numbers). The paper's Fig. 13 separates energy into compute, cache and
//! DRAM components; this model produces the same three-way breakdown from
//! event counts.

/// Energy cost constants (picojoules per event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One 32-bit fixed-point MAC.
    pub pj_per_mac: f64,
    /// One 64 B access to the global SRAM cache.
    pub pj_per_cache_line: f64,
    /// One byte moved to/from DRAM (HBM2-class ≈ 4 pJ/bit).
    pub pj_per_dram_byte: f64,
    /// Static / leakage + clocking power in watts, charged per cycle.
    pub static_watts: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            pj_per_mac: 1.0,
            pj_per_cache_line: 100.0,
            pj_per_dram_byte: 32.0,
            static_watts: 0.8,
        }
    }
}

/// Energy totals in picojoules, split the way the paper's Fig. 13 plots
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Compute (MAC) energy.
    pub compute_pj: f64,
    /// On-chip cache energy.
    pub cache_pj: f64,
    /// Off-chip DRAM energy.
    pub dram_pj: f64,
    /// Static energy over the execution.
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.cache_pj + self.dram_pj + self.static_pj
    }

    /// Total in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() / 1e9
    }
}

impl EnergyModel {
    /// Computes the breakdown from event counts.
    ///
    /// `cycles` is the execution time at 1 GHz (1 cycle = 1 ns), used for
    /// the static component.
    pub fn breakdown(
        &self,
        macs: u64,
        cache_line_accesses: u64,
        dram_bytes: u64,
        cycles: u64,
    ) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: macs as f64 * self.pj_per_mac,
            cache_pj: cache_line_accesses as f64 * self.pj_per_cache_line,
            dram_pj: dram_bytes as f64 * self.pj_per_dram_byte,
            // 1 W × 1 ns = 1e-9 J = 1000 pJ per cycle per watt.
            static_pj: self.static_watts * cycles as f64 * 1000.0,
        }
    }

    /// Average power in watts over `cycles` at 1 GHz.
    pub fn average_watts(&self, breakdown: &EnergyBreakdown, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        breakdown.total_pj() / (cycles as f64 * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_is_linear_in_events() {
        let m = EnergyModel::default();
        let b1 = m.breakdown(1000, 100, 4096, 0);
        let b2 = m.breakdown(2000, 200, 8192, 0);
        assert!((b2.compute_pj - 2.0 * b1.compute_pj).abs() < 1e-9);
        assert!((b2.cache_pj - 2.0 * b1.cache_pj).abs() < 1e-9);
        assert!((b2.dram_pj - 2.0 * b1.dram_pj).abs() < 1e-9);
    }

    #[test]
    fn dram_dominates_for_memory_bound_run() {
        // The paper: "much of the energy consumption comes from memory
        // accesses" — sanity-check the constants give that shape for a
        // memory-bound profile (1 MAC per feature element, every element
        // from DRAM).
        let m = EnergyModel::default();
        let elems = 1_000_000u64;
        let b = m.breakdown(elems, elems / 16, elems * 4, 0);
        assert!(b.dram_pj > b.compute_pj * 10.0);
        assert!(b.dram_pj > b.cache_pj);
    }

    #[test]
    fn static_energy_scales_with_time() {
        let m = EnergyModel::default();
        let b = m.breakdown(0, 0, 0, 1_000_000);
        // 0.8 W × 1 ms = 0.8 mJ.
        assert!((b.total_mj() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn average_watts() {
        let m = EnergyModel::default();
        let b = m.breakdown(0, 0, 1_000_000, 1_000_000);
        // 32 pJ/B × 1e6 B = 32 µJ over 1 ms → 0.032 W dynamic + 0.8 static.
        let w = m.average_watts(&b, 1_000_000);
        assert!((w - 0.832).abs() < 1e-6, "{w}");
    }

    #[test]
    fn zero_cycles_power_is_zero() {
        let m = EnergyModel::default();
        let b = m.breakdown(10, 10, 10, 0);
        assert_eq!(m.average_watts(&b, 0), 0.0);
    }
}
