//! Property-based tests on the engine models: the prefix-sum network must
//! equal the bitmap's software rank for every pattern, sparse aggregation
//! must match a dense reference for arbitrary inputs, the compressor must
//! be idempotent under ReLU, and the pipeline model must respect its
//! theoretical bounds.

use proptest::prelude::*;
use sgcn_engines::{
    two_stage_pipeline, Compressor, PrefixSumUnit, SparseAggregator, SystolicArray,
};
use sgcn_formats::{Beicsr, BeicsrConfig, Bitmap, DenseMatrix, FeatureFormat as _};

fn row_strategy(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(
        prop_oneof![1 => Just(0.0f32), 1 => -4.0f32..4.0],
        1..max_len,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|x| if x == 0.0 { 0.0 } else { x })
            .collect()
    })
}

proptest! {
    #[test]
    fn prefix_sum_equals_bitmap_rank(row in row_strategy(200)) {
        let bm = Bitmap::from_values(&row);
        let unit = PrefixSumUnit::new(row.len());
        let scan = unit.scan(&bm);
        for (i, &got) in scan.iter().enumerate() {
            prop_assert_eq!(got as usize, bm.rank(i), "position {}", i);
        }
    }

    #[test]
    fn sparse_aggregation_matches_dense(
        row in row_strategy(150),
        weight in -2.0f32..2.0,
        init in -1.0f32..1.0,
    ) {
        let cols = row.len();
        let m = DenseMatrix::from_vec(1, cols, row.clone());
        let b = Beicsr::encode(&m, BeicsrConfig::sliced(32));
        let agg = SparseAggregator::default();
        let mut acc = vec![init; cols];
        agg.aggregate_row(&mut acc, &b, 0, weight);
        for (c, (&got, &x)) in acc.iter().zip(&row).enumerate() {
            let want = init + weight * x;
            prop_assert!((got - want).abs() < 1e-4, "col {}: {} vs {}", c, got, want);
        }
    }

    #[test]
    fn compressor_is_idempotent_under_relu(row in row_strategy(150)) {
        // Compressing already-ReLU'd data must reproduce it exactly.
        let cols = row.len();
        let relu: Vec<f32> = row.iter().map(|&v| v.max(0.0)).collect();
        let comp = Compressor::new();
        let mut out1 = Beicsr::with_shape(1, cols, BeicsrConfig::default());
        comp.relu_compress_row(&row, &mut out1, 0);
        let mut out2 = Beicsr::with_shape(1, cols, BeicsrConfig::default());
        comp.relu_compress_row(&relu, &mut out2, 0);
        prop_assert_eq!(out1.decode_row(0), out2.decode_row(0));
        prop_assert_eq!(out1.decode_row(0), relu);
    }

    #[test]
    fn compressor_counts_are_consistent(row in row_strategy(150)) {
        let cols = row.len();
        let comp = Compressor::new();
        let mut out = Beicsr::with_shape(1, cols, BeicsrConfig::default());
        let stats = comp.relu_compress_row(&row, &mut out, 0);
        prop_assert_eq!(stats.nonzeros + stats.zeros, cols as u64);
        prop_assert_eq!(stats.cycles, cols as u64);
        prop_assert_eq!(stats.nonzeros, out.total_nnz());
    }

    #[test]
    fn pipeline_bounds(items in proptest::collection::vec((0u64..1000, 0u64..1000), 0..40)) {
        let total = two_stage_pipeline(&items);
        let s0: u64 = items.iter().map(|i| i.0).sum();
        let s1: u64 = items.iter().map(|i| i.1).sum();
        prop_assert!(total >= s0.max(s1), "pipeline below bottleneck bound");
        prop_assert!(total <= s0 + s1, "pipeline above serial bound");
    }

    #[test]
    fn systolic_cycles_monotone_in_each_dim(m in 1usize..64, k in 1usize..128, n in 1usize..64) {
        let sa = SystolicArray::new(sgcn_engines::SystolicConfig::default());
        let base = sa.gemm_cycles(m, k, n);
        prop_assert!(sa.gemm_cycles(m + 1, k, n) >= base);
        prop_assert!(sa.gemm_cycles(m, k + 1, n) >= base);
        prop_assert!(sa.gemm_cycles(m, k, n + 1) >= base);
        // And the functional GeMM matches a naive reference on small
        // shapes.
        if m <= 4 && k <= 4 && n <= 4 {
            let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.5 - 1.0).collect();
            let b: Vec<f32> = (0..k * n).map(|i| 1.0 - i as f32 * 0.25).collect();
            let out = SystolicArray::gemm(&a, &b, &vec![0.0; m * n], m, k, n);
            for i in 0..m {
                for j in 0..n {
                    let want: f32 = (0..k).map(|p| a[i * k + p] * b[p * n + j]).sum();
                    prop_assert!((out[i * n + j] - want).abs() < 1e-4);
                }
            }
        }
    }
}
