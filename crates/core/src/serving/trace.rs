//! Arrival-trace record/replay: serialize the arrival timeline of any
//! queueing run to a deterministic JSON trace and replay it bit-exactly.
//!
//! Every traffic model in [`super::traffic`] generates its timeline from
//! `(seed, index, params)`; the closed loop feeds back from completions
//! inside the serial event loop. Either way, one run produces one
//! concrete sequence of arrival instants — and that sequence, not the
//! generator, is what a failure drill needs to pin: replaying the
//! recorded timeline through a different fleet/policy/fault
//! configuration answers "what would *this* fleet have done under *that*
//! morning's traffic". [`ArrivalTrace`] is that recording:
//!
//! * captured from a [`super::queueing::QueueOutcome`] (every offered
//!   request's arrival instant, in stream order — completed, shed and
//!   failed alike);
//! * rendered to JSON with the same fixed-format discipline as
//!   `BENCH_queue.json` (so traces are diffable and committable);
//! * parsed back without any JSON dependency (the format is our own);
//! * replayed through [`TraceArrivals`] — an [`ArrivalModel`] whose
//!   timeline *is* the recording — yielding a bit-identical
//!   [`super::queueing::QueueSummary`] when the rest of the
//!   configuration is unchanged. This is the regression seam for
//!   failure drills and the future seam for real production logs.

use std::fmt::Write as _;

use crate::serving::traffic::ArrivalModel;

/// A recorded arrival timeline: the traffic label it came from (kept so
/// a replayed run renders the identical summary) and the absolute
/// arrival instant of every offered request, in stream order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalTrace {
    /// Label of the traffic model that generated the timeline (e.g.
    /// `bursty`, `closed:6`). Replay reports this label, not `trace`.
    pub traffic: String,
    /// Absolute arrival time (cycles) per request slot, non-decreasing.
    pub times: Vec<u64>,
}

impl ArrivalTrace {
    /// Builds a trace, validating monotonicity.
    ///
    /// # Panics
    ///
    /// Panics if the times are not non-decreasing (a decreasing
    /// timeline cannot have come out of any arrival source).
    pub fn new(traffic: impl Into<String>, times: Vec<u64>) -> Self {
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "arrival trace times must be non-decreasing"
        );
        ArrivalTrace {
            traffic: traffic.into(),
            times,
        }
    }

    /// Offered request count.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the trace records no arrivals.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Deterministic JSON rendering (fixed field order, 8 times per
    /// line) — diffable, committable, byte-identical across thread
    /// counts because the recorded timeline is.
    pub fn to_json(&self) -> String {
        let traffic = self.traffic.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = String::with_capacity(64 + 12 * self.times.len());
        out.push_str("{\n  \"trace\": \"sgcn-arrivals\",\n  \"version\": 1,\n");
        let _ = writeln!(out, "  \"traffic\": \"{traffic}\",");
        let _ = writeln!(out, "  \"requests\": {},", self.times.len());
        out.push_str("  \"times\": [");
        for (i, t) in self.times.iter().enumerate() {
            if i % 8 == 0 {
                out.push_str("\n    ");
            } else {
                out.push(' ');
            }
            let _ = write!(out, "{t}");
            if i + 1 < self.times.len() {
                out.push(',');
            }
        }
        if self.times.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }

    /// Parses a trace rendered by [`Self::to_json`]. `None` when the
    /// text is not a version-1 `sgcn-arrivals` trace, the request count
    /// disagrees with the timeline, or the times decrease. The parser
    /// is hand-rolled against our own fixed format (no JSON dependency)
    /// but whitespace-tolerant, so hand-edited traces load too.
    pub fn parse(text: &str) -> Option<ArrivalTrace> {
        if string_field(text, "trace")? != "sgcn-arrivals" {
            return None;
        }
        if number_field(text, "version")? != 1 {
            return None;
        }
        let traffic = string_field(text, "traffic")?;
        let requests = number_field(text, "requests")?;
        let times = array_field(text, "times")?;
        if times.len() as u64 != requests {
            return None;
        }
        if !times.windows(2).all(|w| w[0] <= w[1]) {
            return None;
        }
        Some(ArrivalTrace { traffic, times })
    }

    /// The replay model over this trace.
    pub fn arrivals(&self) -> TraceArrivals {
        TraceArrivals {
            times: self.times.clone(),
        }
    }

    /// Ingests a plain timestamp-per-line production log into an
    /// arrival trace. One finite, non-decreasing timestamp per line (any
    /// unit — seconds, millis, whatever the log emits); blank lines and
    /// `#` comments are skipped. The timeline is normalized to start at
    /// 0 and **rescaled** so its mean inter-arrival gap equals
    /// `target_mean_gap_cycles` — the seam that lets one real morning's
    /// burstiness drive a simulated fleet at any offered load. Logs with
    /// fewer than two distinct instants carry no rate information and
    /// ingest as all-zero arrival times (an instantaneous burst).
    ///
    /// # Errors
    ///
    /// A malformed line (non-numeric, non-finite, or decreasing vs its
    /// predecessor) is a hard error naming the 1-based line number —
    /// real logs are ingested verbatim or not at all, never silently
    /// patched.
    pub fn from_timestamp_log(
        text: &str,
        target_mean_gap_cycles: f64,
    ) -> Result<ArrivalTrace, String> {
        assert!(
            target_mean_gap_cycles.is_finite() && target_mean_gap_cycles >= 0.0,
            "target mean gap must be finite and non-negative, got {target_mean_gap_cycles}"
        );
        let mut stamps: Vec<f64> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let stamp: f64 = line
                .parse()
                .map_err(|_| format!("line {}: {line:?} is not a timestamp", lineno + 1))?;
            if !stamp.is_finite() {
                return Err(format!(
                    "line {}: non-finite timestamp {line:?}",
                    lineno + 1
                ));
            }
            if let Some(&prev) = stamps.last() {
                if stamp < prev {
                    return Err(format!(
                        "line {}: timestamp {stamp} decreases below {prev} — arrival logs must be sorted",
                        lineno + 1
                    ));
                }
            }
            stamps.push(stamp);
        }
        let times = match (stamps.first(), stamps.last()) {
            (Some(&first), Some(&last)) if last > first => {
                // Observed mean gap over n-1 intervals; scale it onto
                // the requested one. Rounding each instant (not each
                // gap) keeps the rescaled timeline non-decreasing.
                let scale = target_mean_gap_cycles * (stamps.len() - 1) as f64 / (last - first);
                stamps
                    .iter()
                    .map(|&s| ((s - first) * scale).round() as u64)
                    .collect()
            }
            _ => vec![0; stamps.len()],
        };
        Ok(ArrivalTrace::new(format!("log:{}", times.len()), times))
    }

    /// [`Self::from_timestamp_log`] over a file path — the
    /// `SGCN_LOG_INGEST` seam.
    ///
    /// # Panics
    ///
    /// A missing/unreadable path or a malformed log is a hard error
    /// describing the expected format (the same no-silent-fallback
    /// convention as the dispatch knobs): one finite, non-decreasing
    /// timestamp per line, blank lines and `#` comments ignored.
    pub fn from_timestamp_file(path: &str, target_mean_gap_cycles: f64) -> ArrivalTrace {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            panic!(
                "cannot read timestamp log {path:?}: {e} — expected a plain timestamp log: \
                 {TIMESTAMP_LOG_FORMAT}"
            )
        });
        ArrivalTrace::from_timestamp_log(&text, target_mean_gap_cycles).unwrap_or_else(|e| {
            panic!(
                "malformed timestamp log {path:?}: {e} — expected a plain timestamp log: \
                 {TIMESTAMP_LOG_FORMAT}"
            )
        })
    }
}

/// The one-line contract of a `SGCN_LOG_INGEST` timestamp log, quoted
/// verbatim by both [`ArrivalTrace::from_timestamp_file`]'s hard errors
/// and the knob reference (`docs/KNOBS.md`) — a single constant so the
/// error message and the documentation cannot drift apart (a unit test
/// pins the exact wording).
pub const TIMESTAMP_LOG_FORMAT: &str = "one finite, non-decreasing timestamp per line \
     (any unit), blank lines and '#' comments ignored";

/// Extracts the string value of `"key": "value"`, unescaping the two
/// escapes [`ArrivalTrace::to_json`] emits.
fn string_field(text: &str, key: &str) -> Option<String> {
    let rest = field_value(text, key)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
}

/// Extracts the numeric value of `"key": N`.
fn number_field(text: &str, key: &str) -> Option<u64> {
    let rest = field_value(text, key)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// Extracts the `u64` array value of `"key": [...]`.
fn array_field(text: &str, key: &str) -> Option<Vec<u64>> {
    let rest = field_value(text, key)?;
    let rest = rest.strip_prefix('[')?;
    let body = &rest[..rest.find(']')?];
    let mut out = Vec::new();
    for item in body.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(item.parse().ok()?);
    }
    Some(out)
}

/// The text immediately after `"key":` (whitespace skipped).
fn field_value<'t>(text: &'t str, key: &str) -> Option<&'t str> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let rest = rest.strip_prefix(':')?;
    Some(rest.trim_start())
}

/// An [`ArrivalModel`] that replays a recorded timeline verbatim. Gaps
/// are the recorded first differences, so `timeline(n)` reproduces the
/// recording exactly for `n ≤` the recorded length (and saturates at
/// the last recorded instant beyond it — a replay never invents
/// arrivals the recording does not contain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceArrivals {
    times: Vec<u64>,
}

impl ArrivalModel for TraceArrivals {
    fn gap_cycles(&self, index: usize) -> u64 {
        match index {
            0 => self.times.first().copied().unwrap_or(0),
            i if i < self.times.len() => self.times[i] - self.times[i - 1],
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_is_exact() {
        let trace = ArrivalTrace::new("bursty", (0..20).map(|i| i * 37).collect());
        let json = trace.to_json();
        let back = ArrivalTrace::parse(&json).expect("parses");
        assert_eq!(back, trace);
        assert_eq!(back.to_json(), json, "render is canonical");
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = ArrivalTrace::new("exponential", Vec::new());
        let back = ArrivalTrace::parse(&trace.to_json()).expect("parses");
        assert_eq!(back, trace);
        assert!(back.is_empty());
    }

    #[test]
    fn traffic_label_escapes_survive() {
        let trace = ArrivalTrace::new("odd \"label\" \\ here", vec![5, 9]);
        let back = ArrivalTrace::parse(&trace.to_json()).expect("parses");
        assert_eq!(back.traffic, "odd \"label\" \\ here");
    }

    #[test]
    fn parse_rejects_malformed_traces() {
        let good = ArrivalTrace::new("exponential", vec![1, 2, 3]).to_json();
        assert!(ArrivalTrace::parse(&good).is_some());
        for bad in [
            "{}",
            "not json at all",
            // Wrong magic.
            &good.replace("sgcn-arrivals", "other-trace"),
            // Wrong version.
            &good.replace("\"version\": 1", "\"version\": 2"),
            // Count/timeline mismatch.
            &good.replace("\"requests\": 3", "\"requests\": 4"),
            // Decreasing times.
            &good.replace("1, 2, 3", "3, 2, 1"),
            // Non-numeric entry.
            &good.replace("1, 2, 3", "1, x, 3"),
        ] {
            assert_eq!(ArrivalTrace::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_times_panic() {
        let _ = ArrivalTrace::new("exponential", vec![5, 3]);
    }

    #[test]
    fn replay_model_reproduces_the_recording() {
        let times = vec![4u64, 4, 9, 30, 31];
        let trace = ArrivalTrace::new("diurnal", times.clone());
        let model = trace.arrivals();
        assert_eq!(model.timeline(5), times);
        assert_eq!(model.timeline(3), times[..3]);
        // Beyond the recording the timeline saturates (no invented
        // arrivals).
        assert_eq!(model.timeline(7), vec![4, 4, 9, 30, 31, 31, 31]);
    }

    #[test]
    fn timestamp_log_ingests_normalizes_and_rescales() {
        // Seconds-unit log with comments/blanks: gaps 1, 3, 0, 2 (mean
        // 1.5 s). Rescaling to a 3000-cycle mean gap doubles into
        // cycles per second = 2000.
        let log = "# morning burst\n10.0\n11.0\n\n14.0\n14.0\n16.0\n";
        let trace = ArrivalTrace::from_timestamp_log(log, 3000.0).expect("ingests");
        assert_eq!(trace.times, vec![0, 2000, 8000, 8000, 12000]);
        assert_eq!(trace.traffic, "log:5");
        // The rescaled mean gap hits the target exactly.
        assert_eq!(trace.times.last().unwrap() / (trace.len() as u64 - 1), 3000);
        // Replays through the standard seam.
        assert_eq!(trace.arrivals().timeline(5), trace.times);
    }

    #[test]
    fn timestamp_log_hard_errors_name_the_line() {
        let unsorted = ArrivalTrace::from_timestamp_log("5.0\n4.0\n", 1000.0);
        assert!(
            unsorted.as_ref().unwrap_err().contains("line 2"),
            "{unsorted:?}"
        );
        assert!(unsorted.unwrap_err().contains("must be sorted"));
        let garbage = ArrivalTrace::from_timestamp_log("1.0\nbogus\n", 1000.0);
        assert!(garbage.unwrap_err().contains("line 2"));
        let nonfinite = ArrivalTrace::from_timestamp_log("1.0\ninf\n3.0\n", 1000.0);
        assert!(nonfinite.unwrap_err().contains("non-finite"));
    }

    #[test]
    fn degenerate_timestamp_logs_ingest_as_bursts() {
        // Empty and single-line logs carry no rate information.
        assert!(ArrivalTrace::from_timestamp_log("", 1000.0)
            .expect("empty ok")
            .is_empty());
        assert_eq!(
            ArrivalTrace::from_timestamp_log("42.0\n", 1000.0)
                .expect("single ok")
                .times,
            vec![0]
        );
        // All-identical stamps: an instantaneous burst, all zeros.
        assert_eq!(
            ArrivalTrace::from_timestamp_log("7.0\n7.0\n7.0\n", 1000.0)
                .expect("flat ok")
                .times,
            vec![0, 0, 0]
        );
    }

    #[test]
    #[should_panic(expected = "expected a plain timestamp log")]
    fn missing_timestamp_file_is_a_hard_error() {
        let _ = ArrivalTrace::from_timestamp_file("/nonexistent/arrivals.log", 1000.0);
    }

    #[test]
    fn timestamp_log_format_wording_is_pinned() {
        // The knob reference (docs/KNOBS.md) quotes this sentence
        // verbatim for SGCN_LOG_INGEST; changing the wording here means
        // updating the reference in the same commit.
        assert_eq!(
            TIMESTAMP_LOG_FORMAT,
            "one finite, non-decreasing timestamp per line (any unit), \
             blank lines and '#' comments ignored"
        );
    }

    #[test]
    fn whitespace_tolerant_parse() {
        let text = "{ \"trace\": \"sgcn-arrivals\", \"version\": 1,\n  \"traffic\" : \"closed:6\" , \"requests\": 2, \"times\": [ 7 , 11 ] }";
        let back = ArrivalTrace::parse(text).expect("parses");
        assert_eq!(back.traffic, "closed:6");
        assert_eq!(back.times, vec![7, 11]);
    }
}
