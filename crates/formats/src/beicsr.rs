//! **BEICSR** — Bitmap-index Embedded In-place CSR, the SGCN paper's
//! compressed feature format (§V-A, §V-B).
//!
//! Three design choices, each mapped to a mechanism here:
//!
//! 1. **Embedded bitmap index** — instead of one 32-bit column index per
//!    non-zero, a bitmap (1 bit per element) is placed *at the head of the
//!    same array* as the packed non-zero values. At 50% sparsity and 32-bit
//!    elements the index overhead is `n / 16n` = 6.25%. Because the bitmap
//!    rides in the same cachelines as the values it indexes, the
//!    bitmap-then-values access pattern of aggregation touches no extra
//!    lines.
//! 2. **In-place compression** — each row (or slice) is stored at the fixed
//!    offset it would occupy *uncompressed*: `offset = id × slot_bytes`.
//!    Capacity is not saved, but (a) reads stay cacheline-aligned, (b) rows
//!    can be written in parallel without serializing on variable lengths,
//!    and (c) no indirection (row-pointer) array is needed.
//! 3. **Slicing support** — for tiled dataflows the bitmap is partitioned
//!    per unit slice of `C` elements (default `C = 96`), each slice slot
//!    aligned to the burst boundary, so a column window is read without the
//!    unaligned-access penalty a monolithic row bitmap would cause (§V-B).

use crate::bitmap::Bitmap;
use crate::layout::{align_up, Span, CACHELINE_BYTES, ELEM_BYTES};
use crate::traits::{ColRange, FeatureFormat};
use crate::DenseMatrix;

/// Configuration for [`Beicsr`] encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BeicsrConfig {
    slice_elems: Option<usize>,
}

impl BeicsrConfig {
    /// The paper's empirically chosen default unit-slice width (§V-B):
    /// 96 elements = 384 B of single-precision features per slice.
    pub const DEFAULT_SLICE_ELEMS: usize = 96;

    /// Non-sliced BEICSR (§V-A): one bitmap for the whole row, embedded at
    /// the row head. Used by the paper's ablation (Fig. 12, "Non-sliced").
    pub fn non_sliced() -> Self {
        BeicsrConfig { slice_elems: None }
    }

    /// Sliced BEICSR with unit slices of `slice_elems` columns (§V-B).
    ///
    /// # Panics
    ///
    /// Panics if `slice_elems` is zero.
    pub fn sliced(slice_elems: usize) -> Self {
        assert!(slice_elems > 0, "slice width must be non-zero");
        BeicsrConfig {
            slice_elems: Some(slice_elems),
        }
    }

    /// The unit-slice width this config resolves to for a matrix of `cols`
    /// columns.
    pub fn resolve_slice_elems(&self, cols: usize) -> usize {
        match self.slice_elems {
            Some(c) => c,
            None => cols.max(1),
        }
    }

    /// Whether this is the sliced variant.
    pub fn is_sliced(&self) -> bool {
        self.slice_elems.is_some()
    }
}

impl Default for BeicsrConfig {
    /// Sliced, with the paper's default `C = 96`.
    fn default() -> Self {
        BeicsrConfig::sliced(Self::DEFAULT_SLICE_ELEMS)
    }
}

/// A feature matrix stored in BEICSR.
#[derive(Debug, Clone, PartialEq)]
pub struct Beicsr {
    rows: usize,
    cols: usize,
    sliced: bool,
    slice_elems: usize,
    nslices: usize,
    bitmap_bytes: u64,
    slot_bytes: u64,
    /// Per (row, slice) bitmap, row-major.
    bitmaps: Vec<Bitmap>,
    /// Per (row, slice) packed non-zero values; slot `i`'s values occupy
    /// `values[i*slice_elems .. i*slice_elems + nnz[i]]`.
    values: Vec<f32>,
    /// Per (row, slice) non-zero count.
    nnz: Vec<u32>,
}

impl Beicsr {
    /// Encodes a dense matrix.
    pub fn encode(dense: &DenseMatrix, config: BeicsrConfig) -> Self {
        let mut me = Self::with_shape(dense.rows(), dense.cols(), config);
        for r in 0..dense.rows() {
            me.set_row_from_dense(r, dense.row_slice(r));
        }
        me
    }

    /// The original per-bit encoder, kept verbatim as the executable
    /// reference: a fresh [`Bitmap`] is allocated per slot and populated
    /// bit by bit. Produces a value equal to [`Beicsr::encode`]; the
    /// `SGCN_NAIVE=1` perf baseline and the encoder-equivalence tests
    /// drive it.
    pub fn encode_reference(dense: &DenseMatrix, config: BeicsrConfig) -> Self {
        let mut me = Self::with_shape(dense.rows(), dense.cols(), config);
        for row in 0..dense.rows() {
            let data = dense.row_slice(row);
            for s in 0..me.nslices {
                let start = s * me.slice_elems;
                let end = (start + me.slice_elems).min(me.cols);
                let window = &data[start..end];
                let slot = row * me.nslices + s;
                let mut bm = Bitmap::new(window.len());
                let mut count = 0usize;
                let vbase = slot * me.slice_elems;
                for (i, &v) in window.iter().enumerate() {
                    if v != 0.0 {
                        bm.set(i, true);
                        me.values[vbase + count] = v;
                        count += 1;
                    }
                }
                me.bitmaps[slot] = bm;
                me.nnz[slot] = count as u32;
            }
        }
        me
    }

    /// Creates an all-zero BEICSR matrix of the given shape — the layer
    /// output buffer the compressor unit writes into.
    pub fn with_shape(rows: usize, cols: usize, config: BeicsrConfig) -> Self {
        let slice_elems = config.resolve_slice_elems(cols);
        let nslices = cols.div_ceil(slice_elems).max(1);
        let bitmap_bytes = (slice_elems as u64).div_ceil(8);
        // In-place reservation: bitmap + a dense slice of values, rounded to
        // the burst/cacheline boundary so every slot starts aligned.
        let slot_bytes = align_up(
            bitmap_bytes + slice_elems as u64 * ELEM_BYTES,
            CACHELINE_BYTES,
        );
        let slots = rows * nslices;
        Beicsr {
            rows,
            cols,
            sliced: config.is_sliced(),
            slice_elems,
            nslices,
            bitmap_bytes,
            slot_bytes,
            bitmaps: (0..slots)
                .map(|i| {
                    let s = i % nslices;
                    Bitmap::new(Self::slice_width_for(cols, slice_elems, s))
                })
                .collect(),
            values: vec![0.0; slots * slice_elems],
            nnz: vec![0; slots],
        }
    }

    fn slice_width_for(cols: usize, slice_elems: usize, s: usize) -> usize {
        let start = s * slice_elems;
        slice_elems.min(cols.saturating_sub(start))
    }

    /// Overwrites `row` from dense contents — the operation the paper's
    /// post-combination compressor performs (§V-E), done in place.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `data.len() != cols`.
    pub fn set_row_from_dense(&mut self, row: usize, data: &[f32]) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        assert_eq!(
            data.len(),
            self.cols,
            "row data must have {} columns",
            self.cols
        );
        for s in 0..self.nslices {
            let start = s * self.slice_elems;
            let end = (start + self.slice_elems).min(self.cols);
            let window = &data[start..end];
            let slot = row * self.nslices + s;
            let mut count = 0usize;
            let vbase = slot * self.slice_elems;
            for &v in window {
                if v != 0.0 {
                    self.values[vbase + count] = v;
                    count += 1;
                }
            }
            // Word-at-a-time bitmap rebuild into the existing slot — no
            // per-slot allocation, no per-bit read-modify-write.
            self.bitmaps[slot].fill_from_values(window);
            self.nnz[slot] = count as u32;
        }
    }

    /// Number of unit slices per row (1 for non-sliced).
    pub fn num_slices(&self) -> usize {
        self.nslices
    }

    /// Unit-slice width in elements.
    pub fn slice_elems(&self) -> usize {
        self.slice_elems
    }

    /// Whether this is the sliced variant.
    pub fn is_sliced(&self) -> bool {
        self.sliced
    }

    /// Reserved bytes per slice slot (bitmap + dense value capacity, aligned).
    pub fn slot_bytes(&self) -> u64 {
        self.slot_bytes
    }

    /// Bytes of bitmap at the head of each slot.
    pub fn bitmap_bytes(&self) -> u64 {
        self.bitmap_bytes
    }

    /// Total non-zeros stored.
    pub fn total_nnz(&self) -> u64 {
        self.nnz.iter().map(|&n| u64::from(n)).sum()
    }

    /// Non-zeros in slice `s` of `row`.
    pub fn slot_nnz(&self, row: usize, s: usize) -> usize {
        self.nnz[self.slot_index(row, s)] as usize
    }

    /// The bitmap of slice `s` of `row`.
    pub fn slot_bitmap(&self, row: usize, s: usize) -> &Bitmap {
        &self.bitmaps[self.slot_index(row, s)]
    }

    /// The packed non-zero values of slice `s` of `row`.
    pub fn slot_values(&self, row: usize, s: usize) -> &[f32] {
        let slot = self.slot_index(row, s);
        let base = slot * self.slice_elems;
        &self.values[base..base + self.nnz[slot] as usize]
    }

    /// Physical offset of slice `s` of `row` — a pure multiplication, the
    /// in-place property that removes the indirection array (§V-A).
    pub fn slot_offset(&self, row: usize, s: usize) -> u64 {
        self.slot_index(row, s) as u64 * self.slot_bytes
    }

    /// The span actually transferred when reading slice `s` of `row`:
    /// bitmap head plus the packed non-zeros, starting at the aligned slot
    /// offset. Empty slices still read the bitmap (the aggregator cannot
    /// know a slice is empty without it).
    pub fn slot_read_span(&self, row: usize, s: usize) -> Span {
        let slot = self.slot_index(row, s);
        let bytes = self.bitmap_bytes + u64::from(self.nnz[slot]) * ELEM_BYTES;
        Span::new(self.slot_offset(row, s), bytes as u32)
    }

    /// Unit-slice indices overlapping a column range.
    pub fn slices_covering(&self, range: ColRange) -> std::ops::Range<usize> {
        if range.is_empty() {
            return 0..0;
        }
        let first = (range.start / self.slice_elems).min(self.nslices.saturating_sub(1));
        let last = ((range.end - 1) / self.slice_elems).min(self.nslices.saturating_sub(1));
        first..last + 1
    }

    fn slot_index(&self, row: usize, s: usize) -> usize {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        assert!(s < self.nslices, "slice {s} out of range {}", self.nslices);
        row * self.nslices + s
    }
}

impl FeatureFormat for Beicsr {
    fn format_name(&self) -> &'static str {
        if self.sliced {
            "BEICSR"
        } else {
            "Non-sliced BEICSR"
        }
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn capacity_bytes(&self) -> u64 {
        (self.rows * self.nslices) as u64 * self.slot_bytes
    }

    // The allocating span methods collect from the visitors below, so the
    // span arithmetic has a single source of truth.
    fn row_spans(&self, row: usize) -> Vec<Span> {
        let mut spans = Vec::with_capacity(self.nslices);
        self.for_each_row_span(row, &mut |s| spans.push(s));
        spans
    }

    fn slice_spans(&self, row: usize, range: ColRange) -> Vec<Span> {
        let mut spans = Vec::with_capacity(2);
        self.for_each_slice_span(row, range, &mut |s| spans.push(s));
        spans
    }

    fn write_spans(&self, row: usize) -> Vec<Span> {
        // In-place write of bitmap + packed values per slice; identical
        // footprint to a full-row read at current occupancy.
        self.row_spans(row)
    }

    fn for_each_row_span(&self, row: usize, f: &mut dyn FnMut(Span)) {
        for s in 0..self.nslices {
            f(self.slot_read_span(row, s));
        }
    }

    fn for_each_slice_span(&self, row: usize, range: ColRange, f: &mut dyn FnMut(Span)) {
        let range = ColRange::new(range.start.min(self.cols), range.end.min(self.cols));
        if range.is_empty() {
            return;
        }
        if self.sliced {
            // Whole aligned unit slices covering the window.
            for s in self.slices_covering(range) {
                f(self.slot_read_span(row, s));
            }
        } else {
            // Monolithic bitmap: read the bitmap head, then the value
            // window located via rank(). The window start is *not*
            // aligned — the unaligned-access cost §V-B warns about falls
            // out of the span arithmetic when the cache rounds to
            // cachelines.
            let bm = self.slot_bitmap(row, 0);
            let lo = bm.rank(range.start.min(bm.len()));
            let hi = bm.rank(range.end.min(bm.len()));
            let base = self.slot_offset(row, 0);
            f(Span::new(base, self.bitmap_bytes as u32));
            if hi > lo {
                f(Span::new(
                    base + self.bitmap_bytes + lo as u64 * ELEM_BYTES,
                    ((hi - lo) as u64 * ELEM_BYTES) as u32,
                ));
            }
        }
    }

    fn for_each_write_span(&self, row: usize, f: &mut dyn FnMut(Span)) {
        self.for_each_row_span(row, f);
    }

    fn decode_row(&self, row: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for s in 0..self.nslices {
            let start = s * self.slice_elems;
            let vals = self.slot_values(row, s);
            for (k, i) in self.slot_bitmap(row, s).iter_ones().enumerate() {
                out[start + i] = vals[k];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_50pct(rows: usize, cols: usize) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r + c) % 2 == 0 {
                    m.set(r, c, (r * cols + c) as f32 + 1.0);
                }
            }
        }
        m
    }

    #[test]
    fn paper_example_bitmap_and_values() {
        // §V-A: (0, 0.3, 0.5, 0) → bitmap 0110'b, values (0.3, 0.5).
        let m = DenseMatrix::from_vec(1, 4, vec![0.0, 0.3, 0.5, 0.0]);
        let b = Beicsr::encode(&m, BeicsrConfig::non_sliced());
        let bm = b.slot_bitmap(0, 0);
        assert!(!bm.get(0) && bm.get(1) && bm.get(2) && !bm.get(3));
        assert_eq!(b.slot_values(0, 0), &[0.3, 0.5]);
    }

    #[test]
    fn roundtrip_sliced_and_non_sliced() {
        let m = dense_50pct(7, 250);
        for cfg in [
            BeicsrConfig::non_sliced(),
            BeicsrConfig::default(),
            BeicsrConfig::sliced(32),
        ] {
            let b = Beicsr::encode(&m, cfg);
            for r in 0..m.rows() {
                assert_eq!(b.decode_row(r), m.row(r), "{cfg:?} row {r}");
            }
        }
    }

    #[test]
    fn index_overhead_is_6_25_pct_at_50pct_sparsity() {
        // §V-A: width n → bitmap n bits; values 16n bytes at 50% sparsity;
        // overhead n/8 ÷ 2n·… = 6.25% of the non-zero payload.
        let m = dense_50pct(4, 256);
        let b = Beicsr::encode(&m, BeicsrConfig::non_sliced());
        let bitmap = b.bitmap_bytes() as f64;
        let payload = (b.slot_nnz(0, 0) as u64 * ELEM_BYTES) as f64;
        assert!((bitmap / payload - 0.0625).abs() < 1e-9);
    }

    #[test]
    fn read_traffic_beats_dense_at_50pct() {
        let m = dense_50pct(8, 256);
        let b = Beicsr::encode(&m, BeicsrConfig::default());
        let dense_bytes: u64 = (0..8).map(|r| m.row_read_bytes(r)).sum();
        let beicsr_bytes: u64 = (0..8).map(|r| b.row_read_bytes(r)).sum();
        assert!(
            beicsr_bytes < dense_bytes * 7 / 10,
            "beicsr {beicsr_bytes} vs dense {dense_bytes}"
        );
    }

    #[test]
    fn slots_are_cacheline_aligned() {
        let b = Beicsr::with_shape(5, 256, BeicsrConfig::default());
        for r in 0..5 {
            for s in 0..b.num_slices() {
                assert_eq!(b.slot_offset(r, s) % CACHELINE_BYTES, 0);
            }
        }
    }

    #[test]
    fn default_slice_geometry_matches_paper() {
        // C = 96 → 384 B of dense values; at ~50% sparsity the read span is
        // 12 B bitmap + ~48 values ≈ 2–3 cachelines (§V-B).
        let m = dense_50pct(2, 96);
        let b = Beicsr::encode(&m, BeicsrConfig::default());
        assert_eq!(b.num_slices(), 1);
        assert_eq!(b.bitmap_bytes(), 12);
        let span = b.slot_read_span(0, 0);
        assert!(span.cachelines() <= 4, "{} lines", span.cachelines());
        assert!(span.cachelines() >= 3);
    }

    #[test]
    fn in_place_offsets_are_pure_multiplication() {
        let b = Beicsr::with_shape(10, 256, BeicsrConfig::sliced(96));
        assert_eq!(b.num_slices(), 3);
        for r in 0..10 {
            for s in 0..3 {
                assert_eq!(b.slot_offset(r, s), ((r * 3 + s) as u64) * b.slot_bytes());
            }
        }
    }

    #[test]
    fn sliced_window_reads_only_covering_slots() {
        let m = dense_50pct(3, 288);
        let b = Beicsr::encode(&m, BeicsrConfig::sliced(96));
        let spans = b.slice_spans(1, ColRange::new(96, 192));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].offset, b.slot_offset(1, 1));
        // Partially-overlapping windows pull both slices.
        let spans = b.slice_spans(1, ColRange::new(90, 100));
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn non_sliced_window_is_unaligned() {
        let m = dense_50pct(1, 256);
        let b = Beicsr::encode(&m, BeicsrConfig::non_sliced());
        let spans = b.slice_spans(0, ColRange::new(128, 192));
        // Bitmap head + a value window that starts mid-row.
        assert_eq!(spans.len(), 2);
        assert!(!spans[1].offset.is_multiple_of(CACHELINE_BYTES));
    }

    #[test]
    fn empty_slice_reads_just_bitmap() {
        let m = DenseMatrix::zeros(2, 96);
        let b = Beicsr::encode(&m, BeicsrConfig::default());
        let span = b.slot_read_span(1, 0);
        assert_eq!(u64::from(span.bytes), b.bitmap_bytes());
        assert_eq!(span.cachelines(), 1);
    }

    #[test]
    fn capacity_is_not_reduced_in_place() {
        // In-place compression reserves the dense footprint (plus bitmap,
        // rounded up): no capacity saving, by design (§V-A).
        let m = dense_50pct(16, 256);
        let b = Beicsr::encode(&m, BeicsrConfig::default());
        assert!(b.capacity_bytes() >= m.capacity_bytes());
    }

    #[test]
    fn set_row_overwrites_in_place() {
        let mut b = Beicsr::with_shape(2, 8, BeicsrConfig::non_sliced());
        b.set_row_from_dense(0, &[1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 3.0]);
        assert_eq!(b.slot_nnz(0, 0), 3);
        b.set_row_from_dense(0, &[0.0; 8]);
        assert_eq!(b.slot_nnz(0, 0), 0);
        assert_eq!(b.decode_row(0), vec![0.0; 8]);
    }

    #[test]
    fn ragged_final_slice() {
        let m = dense_50pct(2, 100);
        let b = Beicsr::encode(&m, BeicsrConfig::sliced(96));
        assert_eq!(b.num_slices(), 2);
        assert_eq!(b.slot_bitmap(0, 1).len(), 4);
        assert_eq!(b.decode_row(0), m.row(0));
    }

    #[test]
    fn total_nnz_matches_dense() {
        let m = dense_50pct(9, 130);
        let b = Beicsr::encode(&m, BeicsrConfig::default());
        assert_eq!(b.total_nnz() as usize, m.count_nonzeros());
    }
}
