//! Fig. 11: performance of HyGCN / AWB-GCN / EnGN / I-GCN / SGCN
//! normalized to GCNAX across the nine datasets.

use sgcn::experiments::fig11_performance;
use sgcn_bench::{banner, experiment_config, selected_datasets};

fn main() {
    banner("Fig 11: accelerator performance");
    let cfg = experiment_config();
    let grid = fig11_performance(&cfg, &selected_datasets());
    println!("{grid}");
    println!(
        "Paper shape: SGCN wins on every dataset — 1.66× over GCNAX, ~2.7× over\n\
         HyGCN in geometric mean; all baselines sit at or below the GCNAX line."
    );
}
