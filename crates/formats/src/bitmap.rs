//! Bitmap indices for BEICSR.
//!
//! BEICSR replaces CSR's per-non-zero column indices with a single bit per
//! element (§V-A): bit *i* is set iff element *i* of the (row-)slice is
//! non-zero. At the ~50% sparsity of deep-GCN intermediate features this
//! costs `n` bits instead of CSR's `32·n/2` bits — the 6.25% overhead the
//! paper derives.
//!
//! The hardware reads bitmaps through a parallel prefix-sum unit
//! (`sgcn-engines::prefix_sum`); this module provides the functional
//! bit-level operations that unit and the software encoder share.

use std::fmt;

/// A fixed-width bitmap index over the elements of one feature slice.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bitmap {
    len: usize,
    words: Vec<u64>,
}

impl Bitmap {
    /// Creates an all-zero bitmap over `len` elements.
    pub fn new(len: usize) -> Self {
        Bitmap {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Builds a bitmap from the non-zero pattern of `values`, assembling
    /// one 64-bit word at a time (no per-bit bounds checks or
    /// read-modify-write of the word array).
    pub fn from_values(values: &[f32]) -> Self {
        let mut bm = Bitmap::new(values.len());
        bm.fill_from_values(values);
        bm
    }

    /// Overwrites the bitmap in place from the non-zero pattern of
    /// `values` — the allocation-free form of [`Bitmap::from_values`]
    /// used by the compressor when re-encoding into an existing slot.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.len()`.
    pub fn fill_from_values(&mut self, values: &[f32]) {
        assert_eq!(
            values.len(),
            self.len,
            "value count must match bitmap length"
        );
        for (word, chunk) in self.words.iter_mut().zip(values.chunks(64)) {
            let mut w = 0u64;
            for (b, &v) in chunk.iter().enumerate() {
                w |= u64::from(v != 0.0) << b;
            }
            *word = w;
        }
    }

    /// Number of elements covered by the bitmap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes needed to store this bitmap in memory (rounded up to whole
    /// bytes, as laid out at the head of a BEICSR slice).
    pub fn storage_bytes(&self) -> u64 {
        (self.len as u64).div_ceil(8)
    }

    /// Sets bit `idx` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let (w, b) = (idx / 64, idx % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Returns bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Number of set bits (non-zero elements).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits strictly before `idx` — the "reversed index" the
    /// paper's prefix-sum unit computes to locate a non-zero value inside
    /// the packed value array (§V-D step 2').
    ///
    /// # Panics
    ///
    /// Panics if `idx > len`.
    pub fn rank(&self, idx: usize) -> usize {
        assert!(
            idx <= self.len,
            "rank index {idx} out of range {}",
            self.len
        );
        let (full, rem) = (idx / 64, idx % 64);
        let mut count: usize = self.words[..full]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        if rem > 0 {
            count += (self.words[full] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        count
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The packed 64-bit words backing the bitmap, least-significant bit
    /// first. Bits at positions `>= len` are always zero, so word-level
    /// consumers (population counts, intersections) need no masking.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of positions set in **both** bitmaps — a word-at-a-time
    /// `popcount(self & other)`. This is the O(words) primitive behind
    /// shard-residency and cache-affinity queries: intersecting a
    /// request's vertex set with a shard's residency index costs
    /// `len/64` AND+popcount steps instead of a per-vertex probe.
    ///
    /// # Panics
    ///
    /// Panics if the bitmaps cover different lengths.
    pub fn and_count(&self, other: &Bitmap) -> u64 {
        assert_eq!(
            self.len, other.len,
            "and_count requires equal-length bitmaps"
        );
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| u64::from((a & b).count_ones()))
            .sum()
    }

    /// The exclusive prefix-sum over bits, as produced by the hardware
    /// prefix-sum unit: `out[i]` = number of ones before position `i`.
    /// Walks the packed words directly instead of probing bit by bit.
    pub fn prefix_sums(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        let mut acc = 0u32;
        for (wi, &word) in self.words.iter().enumerate() {
            let bits = (self.len - wi * 64).min(64);
            for b in 0..bits {
                out.push(acc);
                acc += (word >> b) as u32 & 1;
            }
        }
        out
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap({} bits:", self.len)?;
        for i in 0..self.len.min(64) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 64 {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

/// Iterator over set-bit positions, returned by [`Bitmap::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * 64 + bit;
                // Guard against stray bits beyond `len` (none are ever set by
                // the public API, but stay defensive).
                if idx < self.bitmap.len {
                    return Some(idx);
                }
                return None;
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut bm = Bitmap::new(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            bm.set(i, true);
            assert!(bm.get(i));
        }
        bm.set(64, false);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 7);
    }

    #[test]
    fn from_values_matches_nonzero_pattern() {
        let bm = Bitmap::from_values(&[0.0, 0.3, 0.5, 0.0]);
        assert!(!bm.get(0));
        assert!(bm.get(1));
        assert!(bm.get(2));
        assert!(!bm.get(3));
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn rank_counts_strictly_before() {
        let bm = Bitmap::from_values(&[1.0, 0.0, 1.0, 1.0]);
        assert_eq!(bm.rank(0), 0);
        assert_eq!(bm.rank(1), 1);
        assert_eq!(bm.rank(2), 1);
        assert_eq!(bm.rank(3), 2);
        assert_eq!(bm.rank(4), 3);
    }

    #[test]
    fn rank_across_word_boundary() {
        let mut bm = Bitmap::new(200);
        for i in (0..200).step_by(3) {
            bm.set(i, true);
        }
        for idx in [0, 1, 63, 64, 65, 128, 199, 200] {
            let expect = (0..idx).filter(|i| i % 3 == 0).count();
            assert_eq!(bm.rank(idx), expect, "rank({idx})");
        }
    }

    #[test]
    fn iter_ones_matches_get() {
        let mut bm = Bitmap::new(150);
        let ones = [0usize, 5, 63, 64, 99, 149];
        for &i in &ones {
            bm.set(i, true);
        }
        let collected: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(collected, ones);
    }

    #[test]
    fn prefix_sums_are_exclusive() {
        let bm = Bitmap::from_values(&[1.0, 1.0, 0.0, 1.0]);
        assert_eq!(bm.prefix_sums(), vec![0, 1, 2, 2]);
    }

    #[test]
    fn storage_bytes_rounds_up() {
        assert_eq!(Bitmap::new(1).storage_bytes(), 1);
        assert_eq!(Bitmap::new(8).storage_bytes(), 1);
        assert_eq!(Bitmap::new(9).storage_bytes(), 2);
        assert_eq!(Bitmap::new(96).storage_bytes(), 12);
        assert_eq!(Bitmap::new(256).storage_bytes(), 32);
    }

    #[test]
    fn empty_bitmap() {
        let bm = Bitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
        assert_eq!(bm.iter_ones().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let bm = Bitmap::new(4);
        let _ = bm.get(4);
    }

    #[test]
    fn words_expose_packed_bits() {
        let mut bm = Bitmap::new(130);
        bm.set(0, true);
        bm.set(64, true);
        bm.set(129, true);
        assert_eq!(bm.words(), &[1, 1, 2]);
    }

    #[test]
    fn and_count_matches_per_bit_intersection() {
        let mut a = Bitmap::new(200);
        let mut b = Bitmap::new(200);
        for i in (0..200).step_by(3) {
            a.set(i, true);
        }
        for i in (0..200).step_by(5) {
            b.set(i, true);
        }
        let expect = (0..200).filter(|i| i % 3 == 0 && i % 5 == 0).count() as u64;
        assert_eq!(a.and_count(&b), expect);
        assert_eq!(b.and_count(&a), expect);
        assert_eq!(a.and_count(&a), a.count_ones() as u64);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn and_count_length_mismatch_panics() {
        let _ = Bitmap::new(4).and_count(&Bitmap::new(5));
    }
}
