//! Ablation variants of BEICSR isolating its two structural design
//! choices (§V-A):
//!
//! * [`SeparateBitmapCsr`] — same bitmap index and packed values, but the
//!   bitmaps live in a *separate* index array instead of being embedded at
//!   the head of each row. The paper argues embedding wins because "the
//!   accesses to the bit vector index are almost always followed by the
//!   non-zero values": a separate array costs one extra (usually
//!   unshared) cacheline per row access.
//! * [`PackedBeicsr`] — embedded bitmaps, but rows are stored
//!   back-to-back at their *compressed* length with a row-pointer
//!   indirection array instead of in place. Capacity shrinks, but row
//!   starts lose cacheline alignment, an indirection array must be read
//!   per access, and parallel writes would serialize (the paper's §V-A
//!   "in-place" argument).
//!
//! Neither variant is part of SGCN proper; they exist so the design
//! claims can be measured (see `ablation_beicsr_design` in `sgcn-bench`).

use crate::bitmap::Bitmap;
use crate::layout::{align_up, Span, CACHELINE_BYTES, ELEM_BYTES};
use crate::traits::{ColRange, FeatureFormat};
use crate::DenseMatrix;

/// BEICSR with the bitmap index split into a separate array (ablation of
/// the "embedded" choice).
#[derive(Debug, Clone, PartialEq)]
pub struct SeparateBitmapCsr {
    rows: usize,
    cols: usize,
    bitmap_bytes_per_row: u64,
    /// Reserved per-row value capacity (in place, like BEICSR).
    slot_bytes: u64,
    bitmaps: Vec<Bitmap>,
    values: Vec<f32>,
    nnz: Vec<u32>,
}

impl SeparateBitmapCsr {
    /// Encodes a dense matrix.
    pub fn encode(dense: &DenseMatrix) -> Self {
        let rows = dense.rows();
        let cols = dense.cols();
        let bitmap_bytes_per_row = (cols as u64).div_ceil(8);
        let slot_bytes = align_up(cols as u64 * ELEM_BYTES, CACHELINE_BYTES);
        let mut bitmaps = Vec::with_capacity(rows);
        let mut values = vec![0.0f32; rows * cols];
        let mut nnz = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = dense.row_slice(r);
            let bm = Bitmap::from_values(row);
            let mut count = 0usize;
            for &v in row {
                if v != 0.0 {
                    values[r * cols + count] = v;
                    count += 1;
                }
            }
            nnz.push(count as u32);
            bitmaps.push(bm);
        }
        SeparateBitmapCsr {
            rows,
            cols,
            bitmap_bytes_per_row,
            slot_bytes,
            bitmaps,
            values,
            nnz,
        }
    }

    /// The bitmap-index region lives at offset 0; one bitmap per row,
    /// packed (this is exactly the layout the paper argues against: a
    /// row's index and its values land on unrelated cachelines).
    fn bitmap_offset(&self, row: usize) -> u64 {
        row as u64 * self.bitmap_bytes_per_row
    }

    fn values_base(&self) -> u64 {
        align_up(
            self.rows as u64 * self.bitmap_bytes_per_row,
            CACHELINE_BYTES,
        )
    }

    fn value_offset(&self, row: usize) -> u64 {
        self.values_base() + row as u64 * self.slot_bytes
    }
}

impl FeatureFormat for SeparateBitmapCsr {
    fn format_name(&self) -> &'static str {
        "Separate-bitmap CSR"
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn capacity_bytes(&self) -> u64 {
        self.values_base() + self.rows as u64 * self.slot_bytes
    }

    // The allocating span methods collect from the visitors below, so the
    // span arithmetic has a single source of truth.
    fn row_spans(&self, row: usize) -> Vec<Span> {
        let mut spans = Vec::with_capacity(2);
        self.for_each_row_span(row, &mut |s| spans.push(s));
        spans
    }

    fn slice_spans(&self, row: usize, range: ColRange) -> Vec<Span> {
        let mut spans = Vec::with_capacity(2);
        self.for_each_slice_span(row, range, &mut |s| spans.push(s));
        spans
    }

    fn write_spans(&self, row: usize) -> Vec<Span> {
        self.row_spans(row)
    }

    fn for_each_row_span(&self, row: usize, f: &mut dyn FnMut(Span)) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        f(Span::new(
            self.bitmap_offset(row),
            self.bitmap_bytes_per_row as u32,
        ));
        let nnz = u64::from(self.nnz[row]);
        if nnz > 0 {
            f(Span::new(self.value_offset(row), (nnz * ELEM_BYTES) as u32));
        }
    }

    fn for_each_slice_span(&self, row: usize, range: ColRange, f: &mut dyn FnMut(Span)) {
        let range = range.clamp_to(self.cols);
        if range.is_empty() {
            return;
        }
        let bm = &self.bitmaps[row];
        let lo = bm.rank(range.start);
        let hi = bm.rank(range.end);
        f(Span::new(
            self.bitmap_offset(row),
            self.bitmap_bytes_per_row as u32,
        ));
        if hi > lo {
            f(Span::new(
                self.value_offset(row) + lo as u64 * ELEM_BYTES,
                ((hi - lo) as u64 * ELEM_BYTES) as u32,
            ));
        }
    }

    fn for_each_write_span(&self, row: usize, f: &mut dyn FnMut(Span)) {
        self.for_each_row_span(row, f);
    }

    fn decode_row(&self, row: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for (k, i) in self.bitmaps[row].iter_ones().enumerate() {
            out[i] = self.values[row * self.cols + k];
        }
        out
    }
}

/// BEICSR with packed (variable-length) rows plus a row-pointer array
/// (ablation of the "in-place" choice).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedBeicsr {
    rows: usize,
    cols: usize,
    bitmap_bytes_per_row: u64,
    /// Byte offset of each row's compressed record (bitmap + values),
    /// packed back-to-back with no alignment.
    row_offsets: Vec<u64>,
    bitmaps: Vec<Bitmap>,
    values: Vec<f32>,
    value_starts: Vec<u32>,
}

impl PackedBeicsr {
    /// Encodes a dense matrix.
    pub fn encode(dense: &DenseMatrix) -> Self {
        let rows = dense.rows();
        let cols = dense.cols();
        let bitmap_bytes_per_row = (cols as u64).div_ceil(8);
        let mut row_offsets = Vec::with_capacity(rows + 1);
        let mut bitmaps = Vec::with_capacity(rows);
        let mut values = Vec::new();
        let mut value_starts = Vec::with_capacity(rows);
        let mut offset = 0u64;
        for r in 0..rows {
            let row = dense.row_slice(r);
            let bm = Bitmap::from_values(row);
            row_offsets.push(offset);
            value_starts.push(values.len() as u32);
            let nnz = bm.count_ones() as u64;
            offset += bitmap_bytes_per_row + nnz * ELEM_BYTES;
            values.extend(row.iter().copied().filter(|&v| v != 0.0));
            bitmaps.push(bm);
        }
        row_offsets.push(offset);
        PackedBeicsr {
            rows,
            cols,
            bitmap_bytes_per_row,
            row_offsets,
            bitmaps,
            values,
            value_starts,
        }
    }

    /// The row-pointer (indirection) array lives after the packed data.
    fn indirection_base(&self) -> u64 {
        align_up(self.row_offsets[self.rows], CACHELINE_BYTES)
    }

    fn record_bytes(&self, row: usize) -> u64 {
        self.row_offsets[row + 1] - self.row_offsets[row]
    }
}

impl FeatureFormat for PackedBeicsr {
    fn format_name(&self) -> &'static str {
        "Packed BEICSR"
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn capacity_bytes(&self) -> u64 {
        // Packed data + the indirection array — the capacity win the
        // paper forgoes.
        self.indirection_base() + (self.rows as u64 + 1) * 8
    }

    // The allocating span methods collect from the visitors below, so the
    // span arithmetic has a single source of truth.
    fn row_spans(&self, row: usize) -> Vec<Span> {
        let mut spans = Vec::with_capacity(2);
        self.for_each_row_span(row, &mut |s| spans.push(s));
        spans
    }

    fn slice_spans(&self, row: usize, range: ColRange) -> Vec<Span> {
        let mut spans = Vec::with_capacity(3);
        self.for_each_slice_span(row, range, &mut |s| spans.push(s));
        spans
    }

    fn write_spans(&self, row: usize) -> Vec<Span> {
        // Writing a packed row requires knowing every predecessor's length
        // — this is the serialization the paper rejects; traffic-wise the
        // record plus the updated row pointer is charged.
        self.row_spans(row)
    }

    fn for_each_row_span(&self, row: usize, f: &mut dyn FnMut(Span)) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        // Indirection lookup first (two row pointers), then the unaligned
        // packed record.
        f(Span::new(self.indirection_base() + row as u64 * 8, 16));
        f(Span::new(
            self.row_offsets[row],
            self.record_bytes(row) as u32,
        ));
    }

    fn for_each_slice_span(&self, row: usize, range: ColRange, f: &mut dyn FnMut(Span)) {
        let range = range.clamp_to(self.cols);
        if range.is_empty() {
            return;
        }
        let bm = &self.bitmaps[row];
        let lo = bm.rank(range.start);
        let hi = bm.rank(range.end);
        let base = self.row_offsets[row];
        f(Span::new(self.indirection_base() + row as u64 * 8, 16));
        f(Span::new(base, self.bitmap_bytes_per_row as u32));
        if hi > lo {
            f(Span::new(
                base + self.bitmap_bytes_per_row + lo as u64 * ELEM_BYTES,
                ((hi - lo) as u64 * ELEM_BYTES) as u32,
            ));
        }
    }

    fn for_each_write_span(&self, row: usize, f: &mut dyn FnMut(Span)) {
        self.for_each_row_span(row, f);
    }

    fn decode_row(&self, row: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        let start = self.value_starts[row] as usize;
        for (k, i) in self.bitmaps[row].iter_ones().enumerate() {
            out[i] = self.values[start + k];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Beicsr, BeicsrConfig};

    fn sample(rows: usize, cols: usize) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r * 31 + c * 7) % 2 == 0 {
                    m.set(r, c, (r * cols + c) as f32 + 0.5);
                }
            }
        }
        m
    }

    #[test]
    fn separate_bitmap_roundtrip() {
        let m = sample(6, 100);
        let f = SeparateBitmapCsr::encode(&m);
        for r in 0..6 {
            assert_eq!(f.decode_row(r), m.row(r), "row {r}");
        }
    }

    #[test]
    fn packed_roundtrip() {
        let m = sample(6, 100);
        let f = PackedBeicsr::encode(&m);
        for r in 0..6 {
            assert_eq!(f.decode_row(r), m.row(r), "row {r}");
        }
    }

    /// Irregular per-row density (≈44%, varying) so record sizes don't sit
    /// exactly on cacheline boundaries.
    fn sample_irregular(rows: usize, cols: usize) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r * 31 + c * 7 + r * c) % 9 < 4 {
                    m.set(r, c, (r + c) as f32 + 0.25);
                }
            }
        }
        m
    }

    #[test]
    fn separate_bitmap_costs_an_extra_line_per_row() {
        // The embedded layout touches fewer cachelines per random row
        // access than the separate-index layout — the §V-A locality claim.
        let m = sample_irregular(64, 256);
        let embedded = Beicsr::encode(&m, BeicsrConfig::non_sliced());
        let separate = SeparateBitmapCsr::encode(&m);
        let lines = |spans: Vec<Span>| spans.iter().map(Span::cachelines).sum::<u64>();
        let mut emb = 0u64;
        let mut sep = 0u64;
        for r in 0..64 {
            emb += lines(embedded.row_spans(r));
            sep += lines(separate.row_spans(r));
        }
        assert!(sep > emb, "separate {sep} lines vs embedded {emb}");
    }

    #[test]
    fn packed_saves_capacity_but_misaligns() {
        let m = sample_irregular(64, 256);
        let in_place = Beicsr::encode(&m, BeicsrConfig::non_sliced());
        let packed = PackedBeicsr::encode(&m);
        // Packed genuinely saves capacity…
        assert!(packed.capacity_bytes() < in_place.capacity_bytes());
        // …but most rows start unaligned,
        let misaligned = (0..64)
            .filter(|&r| packed.row_spans(r)[1].offset % CACHELINE_BYTES != 0)
            .count();
        assert!(misaligned > 32, "only {misaligned} rows misaligned");
        // and random row reads cost at least as many cachelines
        // (indirection + straddling).
        let lines = |spans: Vec<Span>| spans.iter().map(Span::cachelines).sum::<u64>();
        let mut ip = 0u64;
        let mut pk = 0u64;
        for r in 0..64 {
            ip += lines(in_place.row_spans(r));
            pk += lines(packed.row_spans(r));
        }
        assert!(pk > ip, "packed {pk} lines vs in-place {ip}");
    }

    #[test]
    fn packed_offsets_are_contiguous() {
        let m = sample(8, 64);
        let f = PackedBeicsr::encode(&m);
        for r in 0..8 {
            let spans = f.row_spans(r);
            assert_eq!(u64::from(spans[1].bytes), f.record_bytes(r));
        }
        // Records tile the packed region exactly.
        let total: u64 = (0..8).map(|r| f.record_bytes(r)).sum();
        assert_eq!(total, f.row_offsets[8]);
    }

    #[test]
    fn slice_windows_match_between_variants() {
        let m = sample(4, 128);
        let sep = SeparateBitmapCsr::encode(&m);
        let pk = PackedBeicsr::encode(&m);
        let emb = Beicsr::encode(&m, BeicsrConfig::non_sliced());
        for r in 0..4 {
            let range = ColRange::new(32, 96);
            // All three fetch the same number of value bytes for a window.
            let val_bytes = |spans: Vec<Span>| u64::from(spans.last().unwrap().bytes);
            let e = val_bytes(emb.slice_spans(r, range));
            let s = val_bytes(sep.slice_spans(r, range));
            let p = val_bytes(pk.slice_spans(r, range));
            assert_eq!(e, s, "row {r}");
            assert_eq!(e, p, "row {r}");
        }
    }

    #[test]
    fn empty_matrix_variants() {
        let m = DenseMatrix::zeros(3, 32);
        let sep = SeparateBitmapCsr::encode(&m);
        let pk = PackedBeicsr::encode(&m);
        assert_eq!(sep.decode_row(2), vec![0.0; 32]);
        assert_eq!(pk.decode_row(2), vec![0.0; 32]);
        // Packed rows still carry their bitmaps.
        assert_eq!(pk.record_bytes(0), 4);
    }
}
