//! The [`Strategy`] trait and combinators.

use crate::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from
    /// it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(S0 0);
tuple_strategy!(S0 0, S1 1);
tuple_strategy!(S0 0, S1 1, S2 2);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);

/// Object-safe strategy, for heterogeneous unions.
pub trait DynStrategy<V> {
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Weighted union of strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn DynStrategy<V>>)>,
    total: u32,
}

impl<V> Union<V> {
    /// Builds a union from weighted arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn DynStrategy<V>>)>) -> Self {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate_dyn(rng);
            }
            pick -= w;
        }
        unreachable!("weights covered above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn combinators_compose() {
        let mut rng = test_rng(1, 0);
        let s = (1usize..5).prop_map(|n| n * 10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
        let fm = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u64..10, n));
        for _ in 0..100 {
            let v = fm.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = test_rng(2, 0);
        let u = crate::prop_oneof![3 => Just(0u32), 1 => Just(1u32)];
        let ones: usize = (0..4000).map(|_| u.generate(&mut rng) as usize).sum();
        let rate = ones as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate}");
    }
}
