//! Property-based tests on the memory system, cooperation scheduling and
//! graph substrate invariants.

use proptest::prelude::*;
use sgcn::cooperation::{conventional_split, merge_round_robin, sac_split, tile_order};
use sgcn_graph::builder::{GraphBuilder, Normalization};
use sgcn_graph::reorder::islandize;
use sgcn_graph::VertexRange;
use sgcn_mem::{Cache, CacheConfig, MemorySystem, Traffic};

proptest! {
    #[test]
    fn cache_second_pass_hits_when_fitting(lines in 1usize..32) {
        // Any working set within capacity fully hits on the second pass.
        let mut cache = Cache::new(CacheConfig { capacity_bytes: 4096, ways: 4, line_bytes: 64, ..CacheConfig::default() });
        let addrs: Vec<u64> = (0..lines as u64).map(|i| i * 64).collect();
        for &a in &addrs { cache.access(a); }
        for &a in &addrs {
            prop_assert!(cache.access(a), "line {a} should hit");
        }
    }

    #[test]
    fn cache_hits_plus_misses_equals_accesses(addrs in proptest::collection::vec(0u64..100_000, 1..300)) {
        let mut cache = Cache::new(CacheConfig { capacity_bytes: 4096, ways: 4, line_bytes: 64, ..CacheConfig::default() });
        for &a in &addrs { cache.access(a); }
        let s = cache.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert!(s.hit_rate() <= 1.0);
    }

    #[test]
    fn memory_system_conserves_bytes(reqs in proptest::collection::vec((0u64..1_000_000, 1u64..512), 1..100)) {
        // Requested bytes (cacheline-granular) ≥ DRAM bytes for reads, and
        // every write byte reaches DRAM.
        let mut mem = MemorySystem::new(CacheConfig::default(), sgcn_mem::DramConfig::hbm2());
        for &(addr, bytes) in &reqs {
            mem.read(addr, bytes, Traffic::FeatureRead);
            mem.write(addr + (1 << 30), bytes, Traffic::FeatureWrite);
        }
        let r = mem.report();
        let fr = r.traffic(Traffic::FeatureRead);
        let fw = r.traffic(Traffic::FeatureWrite);
        prop_assert!(fr.dram_bytes <= fr.bytes_requested);
        prop_assert_eq!(fw.dram_bytes, fw.bytes_requested);
        prop_assert_eq!(r.dram.bytes_read, fr.dram_bytes);
        prop_assert_eq!(r.dram.bytes_written, fw.dram_bytes);
    }

    #[test]
    fn tile_order_is_a_permutation(start in 0usize..50, len in 1usize..300, engines in 1usize..12, strip in 1usize..40, sac in proptest::bool::ANY) {
        let range = VertexRange::new(start, start + len);
        let mut order = tile_order(range, engines, sac, strip);
        prop_assert_eq!(order.len(), len);
        order.sort_unstable();
        let expect: Vec<u32> = (start as u32..(start + len) as u32).collect();
        prop_assert_eq!(order, expect);
    }

    #[test]
    fn split_schedules_are_disjoint_and_complete(len in 1usize..200, engines in 1usize..10, strip in 1usize..20) {
        let range = VertexRange::new(0, len);
        for schedules in [conventional_split(range, engines), sac_split(range, engines, strip)] {
            let merged = merge_round_robin(&schedules);
            let mut sorted = merged.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), len, "rows covered exactly once");
        }
    }

    #[test]
    fn islandize_preserves_graph_structure(n in 2usize..60, edges in proptest::collection::vec((0usize..60, 0usize..60), 0..120)) {
        let edges: Vec<(usize, usize)> = edges.into_iter()
            .map(|(a, b)| (a % n, b % n))
            .filter(|(a, b)| a != b)
            .collect();
        let g = GraphBuilder::new(n).undirected_edges(edges).build(Normalization::Symmetric);
        let p = islandize(&g);
        let g2 = p.apply(&g);
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        prop_assert_eq!(g2.num_vertices(), g.num_vertices());
        // Edge multiset preserved under the permutation.
        for v in 0..n {
            let nv = p.new_of(v);
            let mut old_n: Vec<usize> = g.neighbors(v).iter().map(|&s| p.new_of(s as usize)).collect();
            old_n.sort_unstable();
            let new_n: Vec<usize> = g2.neighbors(nv).iter().map(|&s| s as usize).collect();
            prop_assert_eq!(old_n, new_n, "vertex {} neighborhood", v);
        }
    }

    #[test]
    fn normalized_rows_sum_to_one_row_mean(n in 2usize..40, edges in proptest::collection::vec((0usize..40, 0usize..40), 1..80)) {
        let edges: Vec<(usize, usize)> = edges.into_iter()
            .map(|(a, b)| (a % n, b % n))
            .filter(|(a, b)| a != b)
            .collect();
        let g = GraphBuilder::new(n).undirected_edges(edges).build(Normalization::RowMean);
        for v in 0..n {
            let sum: f32 = g.edge_weights(v).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5, "row {} sums to {}", v, sum);
        }
    }
}
