//! The shared dataflow simulator.
//!
//! Executes an [`AccelModel`] over a [`Workload`] on the common substrate:
//! every feature access the dataflow implies is materialized as byte spans
//! (via the storage format) and driven through the cache + HBM model; MAC
//! work is charged to the SIMD aggregation lanes and the systolic
//! combination arrays; aggregation and combination overlap through a
//! two-stage pipeline across destination tiles; each layer's latency is
//! the maximum of its pipelined compute time and its DRAM service time
//! (the paper's aggregation phase is "extremely memory intensive", §IV).

use std::collections::HashSet;
use std::sync::Arc;

use sgcn_engines::{two_stage_pipeline, SystolicArray};
use sgcn_formats::{Beicsr, ColRange, CsrFeatures, DenseMatrix, FeatureFormat, LineRun, Span};
use sgcn_graph::reorder::{islandize, top_degree_vertices};
use sgcn_graph::{CsrGraph, Tiling};
use sgcn_mem::CacheEngine;
use sgcn_mem::{EnergyModel, MemorySystem, Traffic};

use crate::accel::{AccelModel, FeatureStorage, PhaseOrder, ReorderPolicy, TilingPolicy};
use crate::config::HwConfig;
use crate::cooperation::tile_order;
use crate::metrics::SimReport;
use crate::workload::{CachedFormat, FormatKey, Workload};

/// Region stride in the simulated physical address space: regions can
/// never collide.
const REGION: u64 = 1 << 36;
const TOPOLOGY_BASE: u64 = 0;
const FEATURE_A_BASE: u64 = REGION;
const FEATURE_B_BASE: u64 = 2 * REGION;
const WEIGHT_BASE: u64 = 3 * REGION;
const PARTIAL_BASE: u64 = 4 * REGION;
const INPUT_BASE: u64 = 5 * REGION;
const SCRATCH_BASE: u64 = 6 * REGION;

/// Destination-tile height (rows buffered on chip for combination).
const DST_TILE_ROWS: usize = 1024;

/// Chunk size used to pipeline the column-product path.
const COLUMN_CHUNK: usize = 256;

/// Dense bit-set over vertex ids — constant-time membership for the
/// DAVC pinned/loaded sets (`HashSet`'s per-lookup hashing dominated the
/// EnGN aggregation sweep).
struct VertexSet {
    words: Vec<u64>,
    count: usize,
}

impl VertexSet {
    fn new(vertices: usize) -> Self {
        VertexSet {
            words: vec![0; vertices.div_ceil(64)],
            count: 0,
        }
    }

    #[inline]
    fn contains(&self, v: u32) -> bool {
        (self.words[v as usize / 64] >> (v % 64)) & 1 == 1
    }

    /// Inserts `v`; returns `true` if it was newly added.
    fn insert(&mut self, v: u32) -> bool {
        let (w, b) = (v as usize / 64, v % 64);
        let fresh = (self.words[w] >> b) & 1 == 0;
        self.words[w] |= 1 << b;
        self.count += fresh as usize;
        fresh
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates the contained vertex ids in ascending order.
    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| (word >> b) & 1 == 1)
                .map(move |b| (w * 64 + b) as u32)
        })
    }
}

/// `ceil(work / lanes)` with the divide precomputed to a shift when the
/// lane count is a power of two — this runs once per (edge, slice).
/// Deliberately separate from `sgcn_mem`'s crate-private `FastDiv`: that
/// helper is floor div/rem over `u64` addresses, this is ceiling
/// division over `usize` work counts.
#[derive(Clone, Copy)]
struct LaneDiv {
    lanes: usize,
    shift: Option<u32>,
}

impl LaneDiv {
    fn new(lanes: usize) -> Self {
        LaneDiv {
            lanes,
            shift: lanes.is_power_of_two().then(|| lanes.trailing_zeros()),
        }
    }

    #[inline]
    fn div_ceil(self, work: usize) -> usize {
        match self.shift {
            Some(s) => (work + self.lanes - 1) >> s,
            None => work.div_ceil(self.lanes),
        }
    }
}

struct LayerTally {
    agg_cycles: u64,
    comb_cycles: u64,
    macs: u64,
    compute_cycles: u64,
}

pub(crate) fn run(model: &AccelModel, workload: &Workload, hw: &HwConfig) -> SimReport {
    run_inner(model, workload, hw, None)
}

fn run_inner(
    model: &AccelModel,
    workload: &Workload,
    hw: &HwConfig,
    format_override: Option<sgcn_formats::FormatKind>,
) -> SimReport {
    let t0 = std::time::Instant::now();
    let report = run_untimed(model, workload, hw, format_override);
    crate::metrics::timing::add_simulate_nanos(t0.elapsed().as_nanos() as u64);
    report
}

fn run_untimed(
    model: &AccelModel,
    workload: &Workload,
    hw: &HwConfig,
    format_override: Option<sgcn_formats::FormatKind>,
) -> SimReport {
    // I-GCN's islandization renumbers vertices before execution.
    let reordered;
    let graph: &CsrGraph = match model.reorder {
        ReorderPolicy::None => workload.graph(),
        ReorderPolicy::Islandize => {
            reordered = islandize(workload.graph()).apply(workload.graph());
            &reordered
        }
    };

    // EnGN's degree-aware vertex cache carves a fraction of the cache for
    // pinned high-degree vertices.
    let mut cache_cfg = hw.cache;
    let width = workload.network.width;
    let mut pinned = VertexSet::new(graph.num_vertices());
    if model.davc_fraction > 0.0 {
        let set_bytes = cache_cfg.ways as u64 * cache_cfg.line_bytes;
        let keep = ((cache_cfg.capacity_bytes as f64 * (1.0 - model.davc_fraction)) as u64
            / set_bytes)
            .max(1)
            * set_bytes;
        let davc_bytes = cache_cfg.capacity_bytes - keep;
        cache_cfg.capacity_bytes = keep;
        let rows = (davc_bytes / (width as u64 * 4)).max(1) as usize;
        for v in top_degree_vertices(graph, rows) {
            pinned.insert(v);
        }
    }

    let mut mem = MemorySystem::with_engine(cache_cfg, hw.dram, hw.cache_engine);
    let systolic = SystolicArray::new(hw.systolic);
    let energy_model = EnergyModel::default();

    let layers = workload.network.layers;
    let mut total_cycles = 0u64;
    let mut agg_cycles_total = 0u64;
    let mut comb_cycles_total = 0u64;
    let mut macs_total = 0u64;
    let mut davc_hits = 0u64;
    let mut mem_cycles_total = 0u64;
    let mut layer_reports = Vec::with_capacity(layers);

    // Fast path: encode each boundary matrix once up front — layer `l`'s
    // output matrix *is* layer `l + 1`'s input, and the storage encoding
    // is a pure function of (matrix, format), so the seed's per-layer
    // re-encode did every intermediate encode twice. Naive mode keeps the
    // seed behaviour (per-layer `encode_reference`) as the perf baseline.
    let boundary_formats: Vec<LayerFormat> = if hw.is_naive() {
        Vec::new()
    } else {
        (1..=layers)
            .map(|b| boundary_format(model, workload, b, format_override, false))
            .collect()
    };

    for l in 0..layers {
        let x_in = workload.trace.layer_features(l);
        let x_out = workload.trace.layer_features(l + 1);
        let in_base = if l == 0 {
            INPUT_BASE
        } else if l % 2 == 1 {
            FEATURE_A_BASE
        } else {
            FEATURE_B_BASE
        };
        let out_base = if l % 2 == 0 {
            FEATURE_A_BASE
        } else {
            FEATURE_B_BASE
        };

        let mem_before = mem.elapsed_dram_cycles();
        let tally = simulate_layer(
            model,
            workload,
            hw,
            graph,
            &systolic,
            &mut mem,
            &pinned,
            &mut davc_hits,
            l,
            x_in,
            x_out,
            in_base,
            out_base,
            format_override,
            &boundary_formats,
        );
        let mem_delta = mem.elapsed_dram_cycles() - mem_before;

        total_cycles += tally.compute_cycles.max(mem_delta);
        agg_cycles_total += tally.agg_cycles;
        comb_cycles_total += tally.comb_cycles;
        macs_total += tally.macs;
        mem_cycles_total += mem_delta;
        layer_reports.push(crate::metrics::LayerReport {
            layer: l,
            cycles: tally.compute_cycles.max(mem_delta),
            compute_cycles: tally.compute_cycles,
            mem_cycles: mem_delta,
            agg_cycles: tally.agg_cycles,
            comb_cycles: tally.comb_cycles,
            macs: tally.macs,
        });
    }

    let report = mem.report();
    let cache_accesses = report.cache.accesses() + davc_hits;
    let energy = energy_model.breakdown(
        macs_total,
        cache_accesses,
        report.dram_total_bytes(),
        total_cycles,
    );

    // Peak-power estimate: platform constant calibrated per accelerator to
    // the paper's synthesis numbers (see AccelModel::tdp_factor docs).
    let engines = (hw.aggregation_engines + hw.combination_engines) as f64;
    let tdp_watts = model.tdp_factor
        * (2.0 + 0.2 * engines + 0.8 * (hw.cache.capacity_bytes as f64 / (512.0 * 1024.0)) + 1.0);

    SimReport {
        accelerator: model.name,
        workload: workload.dataset.spec.abbrev.to_string(),
        cycles: total_cycles,
        agg_cycles: agg_cycles_total,
        comb_cycles: comb_cycles_total,
        mem_cycles: mem_cycles_total,
        macs: macs_total,
        mem: report,
        energy,
        tdp_watts,
        layers: layer_reports,
    }
}

/// Per-layer feature storage built from the trace. Encoded variants are
/// `Arc`-shared with the workload's [`crate::workload::FormatCache`] on
/// the fast path (encodings are pure, so sharing is invisible in the
/// counters); the naive baseline owns fresh per-layer encodings.
enum LayerFormat<'a> {
    Dense(&'a DenseMatrix),
    Beicsr(Arc<Beicsr>),
    Csr(Arc<CsrFeatures>),
    /// An arbitrary baseline format for the Fig. 3 / Fig. 19 format study.
    /// The accelerator datapath is unchanged (dense compute); only the
    /// storage/traffic differs — the paper's "naïvely supporting sparse
    /// features" scenario (§II-B).
    Generic(Arc<dyn FeatureFormat + Send + Sync>),
}

impl LayerFormat<'_> {
    fn as_format(&self) -> &dyn FeatureFormat {
        match self {
            LayerFormat::Dense(m) => *m,
            LayerFormat::Beicsr(b) => b.as_ref(),
            LayerFormat::Csr(c) => c.as_ref(),
            LayerFormat::Generic(f) => f.as_ref(),
        }
    }

    /// Aggregation lane work for columns `range` of `row`: non-zeros for
    /// sparse formats (the sparse aggregator multiplies only non-zeros,
    /// §V-D), full width for dense.
    fn lane_work(&self, row: usize, range: ColRange) -> usize {
        match self {
            LayerFormat::Dense(_) | LayerFormat::Generic(_) => range.len(),
            LayerFormat::Beicsr(b) => {
                // Non-zeros inside the window only: the prefix-sum unit
                // locates the window in the packed values; slots fully
                // covered contribute their slot nnz, partially covered
                // slots are counted via bitmap rank.
                let se = b.slice_elems();
                b.slices_covering(range)
                    .map(|s| {
                        let lo = range.start.saturating_sub(s * se);
                        let bm = b.slot_bitmap(row, s);
                        let hi = (range.end - s * se).min(bm.len());
                        if lo == 0 && hi == bm.len() {
                            b.slot_nnz(row, s)
                        } else {
                            bm.rank(hi) - bm.rank(lo.min(bm.len()))
                        }
                    })
                    .sum()
            }
            LayerFormat::Csr(c) => {
                let cols = c.row_cols(row);
                let lo = cols.partition_point(|&x| (x as usize) < range.start);
                let hi = cols.partition_point(|&x| (x as usize) < range.end);
                hi - lo
            }
        }
    }
}

/// Per-slice aggregation-work plan, hoisted out of the edge loop. The
/// column window is fixed for a whole slice pass, so the slot-coverage
/// arithmetic of [`LayerFormat::lane_work`] (slice divisions, partial-
/// vs-full window classification) is resolved once per (tile, slice);
/// each edge then pays only a per-row lookup. Fast path only — naive
/// mode replays the seed's per-edge recomputation. Produces the exact
/// values `lane_work` would.
enum SlicePlan<'f> {
    /// Dense compute: every edge works the full window.
    Fixed(usize),
    /// Sliced BEICSR whose window exactly covers slots `s0..s1`: the work
    /// is the sum of the precounted slot non-zeros.
    BeicsrFull { b: &'f Beicsr, s0: usize, s1: usize },
    /// Nothing to hoist (CSR searches, partial BEICSR windows): delegate
    /// to [`LayerFormat::lane_work`] per edge, exactly as before.
    Fallback {
        fmt: &'f LayerFormat<'f>,
        range: ColRange,
    },
}

impl<'f> SlicePlan<'f> {
    fn new(fmt: &'f LayerFormat<'f>, range: ColRange) -> Self {
        match fmt {
            LayerFormat::Dense(_) | LayerFormat::Generic(_) => SlicePlan::Fixed(range.len()),
            LayerFormat::Csr(_) => SlicePlan::Fallback { fmt, range },
            LayerFormat::Beicsr(arc) => {
                let b: &'f Beicsr = arc.as_ref();
                let se = b.slice_elems();
                let slots = b.slices_covering(range);
                // Bitmap lengths are a function of the slot alone, so the
                // full-coverage test is row-independent: the window must
                // start on the first slot's boundary and reach the last
                // slot's end.
                let full = b.rows() > 0
                    && !slots.is_empty()
                    && range.start <= slots.start * se
                    && range.end
                        >= slots.end.saturating_sub(1) * se + b.slot_bitmap(0, slots.end - 1).len();
                if full {
                    SlicePlan::BeicsrFull {
                        b,
                        s0: slots.start,
                        s1: slots.end,
                    }
                } else {
                    SlicePlan::Fallback { fmt, range }
                }
            }
        }
    }

    #[inline]
    fn lane_work(&self, row: usize) -> usize {
        match self {
            SlicePlan::Fixed(w) => *w,
            SlicePlan::BeicsrFull { b, s0, s1 } => (*s0..*s1).map(|s| b.slot_nnz(row, s)).sum(),
            SlicePlan::Fallback { fmt, range } => fmt.lane_work(row, *range),
        }
    }
}

/// Encodes a trace matrix in a study format.
fn encode_kind(
    kind: sgcn_formats::FormatKind,
    m: &DenseMatrix,
) -> Arc<dyn FeatureFormat + Send + Sync> {
    use sgcn_formats::{
        BeicsrConfig, BlockedEllpack, BsrFeatures, CooFeatures, FormatKind, PackedBeicsr,
        SeparateBitmapCsr,
    };
    match kind {
        FormatKind::Dense => Arc::new(m.clone()),
        FormatKind::Csr => Arc::new(CsrFeatures::encode(m)),
        FormatKind::Coo => Arc::new(CooFeatures::encode(m)),
        FormatKind::Bsr => Arc::new(BsrFeatures::encode(m)),
        FormatKind::BlockedEllpack => Arc::new(BlockedEllpack::encode(m)),
        FormatKind::BeicsrNonSliced => Arc::new(Beicsr::encode(m, BeicsrConfig::non_sliced())),
        FormatKind::Beicsr => Arc::new(Beicsr::encode(m, BeicsrConfig::default())),
        FormatKind::SeparateBitmap => Arc::new(SeparateBitmapCsr::encode(m)),
        FormatKind::PackedBeicsr => Arc::new(PackedBeicsr::encode(m)),
    }
}

/// Runs the Fig. 3 format study: a GCNAX-class tiled accelerator whose
/// intermediate features are stored in `kind`. Compute is dense (the
/// datapath does not exploit the format); only traffic changes.
pub fn run_format_study(
    kind: sgcn_formats::FormatKind,
    workload: &Workload,
    hw: &HwConfig,
) -> SimReport {
    let mut model = AccelModel::gcnax();
    model.name = kind.label();
    run_with_format_override(&model, workload, hw, Some(kind))
}

/// Pre-encodes one boundary matrix in a study format into the workload's
/// shared [`FormatCache`], so later per-class × per-format simulations
/// (and their parallel `prepare_matrix` callers) hit the cache instead
/// of re-encoding. Dense borrows the trace matrix directly and never
/// needs caching; callers skip it.
pub(crate) fn precache_boundary_kind(
    workload: &Workload,
    b: usize,
    kind: sgcn_formats::FormatKind,
) {
    debug_assert!(!matches!(kind, sgcn_formats::FormatKind::Dense));
    let x = workload.trace.layer_features(b);
    workload
        .format_cache
        .get_or_build(FormatKey::Kind(b, kind), || {
            CachedFormat::Generic(encode_kind(kind, x))
        });
}

pub(crate) fn run_with_format_override(
    model: &AccelModel,
    workload: &Workload,
    hw: &HwConfig,
    format_override: Option<sgcn_formats::FormatKind>,
) -> SimReport {
    run_inner(model, workload, hw, format_override)
}

/// Builds the storage format of a boundary matrix — the matrix at trace
/// index `b`, stored as layer `b - 1`'s output and read back as layer
/// `b`'s input. A pure function of `(model storage / override, matrix)`,
/// so the fast path encodes each boundary once and shares it through the
/// workload's [`FormatCache`] across simulations (hardware sweeps revisit
/// the same boundaries under many configs); the naive baseline rebuilds
/// per layer with the seed's per-bit encoder.
fn boundary_format<'a>(
    model: &AccelModel,
    workload: &'a Workload,
    b: usize,
    format_override: Option<sgcn_formats::FormatKind>,
    naive: bool,
) -> LayerFormat<'a> {
    let x = workload.trace.layer_features(b);
    if let Some(kind) = format_override {
        // The Dense study format is the trace matrix itself: borrow it
        // through the native dense path (identical spans and — the study
        // computes densely for every format — identical lane work)
        // instead of boxing a clone behind dynamic dispatch.
        if matches!(kind, sgcn_formats::FormatKind::Dense) {
            return LayerFormat::Dense(x);
        }
        if naive {
            return LayerFormat::Generic(encode_kind(kind, x));
        }
        let cached = workload
            .format_cache
            .get_or_build(FormatKey::Kind(b, kind), || {
                CachedFormat::Generic(encode_kind(kind, x))
            });
        let CachedFormat::Generic(f) = cached else {
            unreachable!("Kind key stores Generic");
        };
        return LayerFormat::Generic(f);
    }
    match model.storage {
        FeatureStorage::Dense => LayerFormat::Dense(x),
        FeatureStorage::Beicsr(cfg) => {
            if naive {
                return LayerFormat::Beicsr(Arc::new(Beicsr::encode_reference(x, cfg)));
            }
            let cached = workload
                .format_cache
                .get_or_build(FormatKey::Beicsr(b, cfg), || {
                    CachedFormat::Beicsr(Arc::new(Beicsr::encode(x, cfg)))
                });
            let CachedFormat::Beicsr(f) = cached else {
                unreachable!("Beicsr key stores Beicsr");
            };
            LayerFormat::Beicsr(f)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn simulate_layer(
    model: &AccelModel,
    workload: &Workload,
    hw: &HwConfig,
    graph: &CsrGraph,
    systolic: &SystolicArray,
    mem: &mut MemorySystem,
    pinned: &VertexSet,
    davc_hits: &mut u64,
    layer: usize,
    x_in: &DenseMatrix,
    x_out: &DenseMatrix,
    in_base: u64,
    out_base: u64,
    format_override: Option<sgcn_formats::FormatKind>,
    boundary_formats: &[LayerFormat<'_>],
) -> LayerTally {
    let w_in = x_in.cols();
    let w_out = x_out.cols();
    let naive = hw.is_naive();

    // Weights stream once per layer (they fit on chip / in cache).
    mem.read(
        WEIGHT_BASE + (layer as u64) * REGION / 64,
        (w_in * w_out * 4) as u64,
        Traffic::Weight,
    );

    // Storage formats for this layer's input and output. Boundary
    // matrices come precomputed on the fast path (see `run_inner`); the
    // layer-0 input is special-cased below.
    // §V-F/§VII-B: the first-layer combination moves onto the sparse
    // aggregator only when the input is *extremely* sparse (one-hot-style,
    // NELL's 99.9%) — otherwise the systolic array's far higher peak wins.
    // The trace already measured each matrix's sparsity at synthesis; the
    // fast path reads it back while naive replays the seed's full rescan.
    let sparse_input_layer = layer == 0
        && model.sparse_first_layer
        && (if naive {
            x_in.sparsity()
        } else {
            workload.trace.sparsity(layer)
        }) > 0.98;
    let in_holder;
    let in_fmt: &LayerFormat<'_> = if sparse_input_layer {
        in_holder = LayerFormat::Csr(if naive {
            Arc::new(CsrFeatures::encode(x_in))
        } else {
            let cached = workload
                .format_cache
                .get_or_build(FormatKey::Csr(layer), || {
                    CachedFormat::Csr(Arc::new(CsrFeatures::encode(x_in)))
                });
            let CachedFormat::Csr(f) = cached else {
                unreachable!("Csr key stores Csr");
            };
            f
        });
        &in_holder
    } else if layer == 0
        || (format_override.is_none() && matches!(model.storage, FeatureStorage::Dense))
    {
        // Input features arrive from the dataset in dense form for the
        // baselines (they do not compress features), and dense storage
        // borrows the trace matrix directly — no encode to share.
        in_holder = LayerFormat::Dense(x_in);
        &in_holder
    } else if naive {
        in_holder = boundary_format(model, workload, layer, format_override, true);
        &in_holder
    } else {
        &boundary_formats[layer - 1]
    };
    let out_holder;
    let out_fmt: &LayerFormat<'_> = if naive {
        out_holder = boundary_format(model, workload, layer + 1, format_override, true);
        &out_holder
    } else {
        &boundary_formats[layer]
    };

    // Layer-0 runs combination first on every design that performs
    // inter-layer optimization; HyGCN (agg-first, untiled) is the paper's
    // counterexample and keeps its order.
    let agg_first_untiled =
        matches!(model.order, PhaseOrder::AggFirst) && matches!(model.tiling, TilingPolicy::None);
    let order = if layer == 0 && !agg_first_untiled {
        PhaseOrder::CombFirst
    } else {
        model.order
    };

    if model.column_product {
        return column_product_layer(
            model, workload, hw, graph, systolic, mem, layer, in_fmt, x_in, w_in, w_out, in_base,
            out_base,
        );
    }

    match order {
        PhaseOrder::AggFirst => agg_first_layer(
            model, workload, hw, graph, systolic, mem, pinned, davc_hits, in_fmt, out_fmt, x_in,
            w_in, w_out, in_base, out_base,
        ),
        PhaseOrder::CombFirst => comb_first_layer(
            model,
            workload,
            hw,
            graph,
            systolic,
            mem,
            pinned,
            davc_hits,
            in_fmt,
            out_fmt,
            x_in,
            layer,
            w_in,
            w_out,
            in_base,
            out_base,
            sparse_input_layer,
        ),
    }
}

/// AWB-GCN's on-chip partial-sum accumulation banks, modelled with
/// whichever cache implementation the run selects (both are
/// stats-identical; `List` keeps the naive baseline faithful end to end).
enum PsumBanks {
    Flat(sgcn_mem::Cache),
    List(sgcn_mem::ListCache),
}

impl PsumBanks {
    /// Probes the `lines` 64-byte lines of one partial row at `addr`;
    /// lines that spill (miss the banks) fetch and write back through
    /// `mem`. The flat banks batch the probe walk ([`Cache::probe_run`])
    /// when their line size matches the seed's fixed 64-byte stride *and*
    /// the row base is 64-byte aligned (an unaligned base would change
    /// which memory bytes the spill touches); otherwise the seed loop
    /// replays per line. Both issue the identical mem-operation sequence
    /// (ascending lines, read then write per spilled line).
    #[inline]
    fn scatter_row(&mut self, addr: u64, lines: u64, mem: &mut MemorySystem) {
        let spill = |mem: &mut MemorySystem, line_addr: u64| {
            mem.read_uncached(line_addr, 64, Traffic::PartialSum);
            mem.write(line_addr, 64, Traffic::PartialSum);
        };
        match self {
            PsumBanks::Flat(c) if c.config().line_bytes == 64 && addr.is_multiple_of(64) => {
                c.probe_run(addr / 64, lines, |miss_first, miss_count| {
                    for line in miss_first..miss_first + miss_count {
                        spill(mem, line * 64);
                    }
                });
            }
            _ => {
                for i in 0..lines {
                    let line_addr = addr + i * 64;
                    let hit = match self {
                        PsumBanks::Flat(c) => c.access(line_addr),
                        PsumBanks::List(c) => c.access(line_addr),
                    };
                    if !hit {
                        spill(mem, line_addr);
                    }
                }
            }
        }
    }
}

/// Source-tile height under the model's tiling policy.
fn src_tile_rows(model: &AccelModel, hw: &HwConfig, vertices: usize, slice_bytes: u64) -> usize {
    match model.tiling {
        TilingPolicy::None => vertices.max(1),
        TilingPolicy::CacheSized {
            occupancy,
            expected_density,
        } => {
            let budget = hw.cache.capacity_bytes as f64 * occupancy;
            let per_row = slice_bytes as f64 * expected_density.max(0.05);
            ((budget / per_row) as usize).clamp(64, vertices.max(64))
        }
    }
}

/// Column-slice width of the aggregation sweep.
fn slice_width(model: &AccelModel, w: usize) -> usize {
    match model.tiling {
        // Untiled designs sweep whole rows.
        TilingPolicy::None => w.max(1),
        // Tiled dataflows (GCNAX-class) slice the feature matrix in
        // fixed-width column passes regardless of the storage format —
        // this is exactly where non-sliced BEICSR pays for its monolithic
        // bitmap: each pass re-reads the row-head bitmap and fetches an
        // unaligned value window (§V-B). Sliced BEICSR matches its unit
        // slice to the dataflow's.
        TilingPolicy::CacheSized { .. } => match model.storage {
            FeatureStorage::Beicsr(cfg) if cfg.is_sliced() => {
                cfg.resolve_slice_elems(w).min(w.max(1))
            }
            _ => 96.min(w.max(1)),
        },
    }
}

/// Inline run capacity of a [`RowSliceMemo`] entry — every native format
/// emits at most three runs per slice window (BEICSR slots coalesce,
/// CSR is index span + value window, BSR is pointer + index + block
/// window); pathological emitters fall back to the visitor.
const MEMO_RUNS: usize = 3;

/// One row's memoized slice read: its compacted line runs plus its lane
/// work, both pure in `(format, row, window)`. See the `run_memo`
/// construction in [`aggregation_sweep`].
#[derive(Clone, Copy, Default)]
struct RowSliceMemo {
    /// Pass stamp (`0` = never filled).
    gen: u64,
    /// Aggregation lane work of the window.
    work: u32,
    /// Valid runs, or `u8::MAX` when the row overflowed the inline array.
    nruns: u8,
    runs: [LineRun; MEMO_RUNS],
}

impl RowSliceMemo {
    /// Computes the entry for `row` under `range`, stamping it with `gen`.
    fn fill(
        &mut self,
        gen: u64,
        fmt: &LayerFormat<'_>,
        row: usize,
        range: ColRange,
        line_bytes: u64,
        plan: &SlicePlan<'_>,
    ) {
        self.gen = gen;
        self.work = plan.lane_work(row) as u32;
        let mut n = 0u8;
        let mut overflow = false;
        fmt.as_format()
            .for_each_slice_run(row, range, line_bytes, &mut |run| {
                if (n as usize) < MEMO_RUNS {
                    self.runs[n as usize] = run;
                    n += 1;
                } else {
                    overflow = true;
                }
            });
        self.nruns = if overflow { u8::MAX } else { n };
    }

    /// Replays the memoized read through the memory system (falling back
    /// to the visitor when the runs overflowed the inline array).
    fn replay(
        &self,
        mem: &mut MemorySystem,
        fmt: &LayerFormat<'_>,
        row: usize,
        range: ColRange,
        base: u64,
    ) {
        if self.nruns == u8::MAX {
            fmt.as_format()
                .for_each_slice_run(row, range, mem.line_bytes(), &mut |run| {
                    mem.access_lines(base, run, Traffic::FeatureRead);
                });
        } else {
            for run in &self.runs[..self.nruns as usize] {
                mem.access_lines(base, *run, Traffic::FeatureRead);
            }
        }
    }
}

/// The aggregation sweep shared by the row-product paths: returns
/// per-destination-tile SIMD cycles and total MACs.
#[allow(clippy::too_many_arguments)]
fn aggregation_sweep(
    model: &AccelModel,
    hw: &HwConfig,
    graph: &CsrGraph,
    mem: &mut MemorySystem,
    pinned: &VertexSet,
    davc_hits: &mut u64,
    fmt: &LayerFormat<'_>,
    feature_base: u64,
    width: usize,
    variant: sgcn_model::GcnVariant,
) -> (Vec<u64>, u64, u64) {
    let vertices = graph.num_vertices();
    let slice_w = slice_width(model, width);
    // GraphSAGE samples at most `sample` neighbors per vertex (§VI-C):
    // per (dst, tile) we keep a proportional prefix of the in-range
    // neighbor list.
    let sample_cap = match variant {
        sgcn_model::GcnVariant::GraphSage { sample } => Some(sample + 1),
        _ => None,
    };
    let slice_bytes = (slice_w * 4) as u64 + (slice_w as u64).div_ceil(8);
    let src_rows = src_tile_rows(model, hw, vertices, slice_bytes);
    let tiling = Tiling::new(vertices, DST_TILE_ROWS.min(vertices.max(1)), src_rows);
    let nslices = width.div_ceil(slice_w);

    let naive = hw.is_naive();
    let has_pinned = !pinned.is_empty();
    let lane_div = LaneDiv::new(hw.simd_lanes);
    // The naive baseline replays the seed's hashed pinned-set membership
    // (a SipHash per (edge, slice), even when the set is empty).
    let hashed_pinned: HashSet<u32> = if naive {
        pinned.iter().collect()
    } else {
        HashSet::new()
    };
    let mut hashed_loaded: HashSet<u32> = HashSet::new();
    let mut per_tile_cycles: Vec<u64> = Vec::with_capacity(tiling.dst_tiles());
    let mut macs = 0u64;
    let mut lane_cycles_total = 0u64;
    let mut davc_loaded = VertexSet::new(vertices);
    let mut topo_offset = 0u64;
    // Per-destination neighbor windows, hoisted out of the slice loop and
    // reused across all `nslices` passes of one tile pair.
    let mut ordered_neighbors: Vec<&[u32]> = Vec::new();
    // Per-(tile, slice) memo of each source row's compacted line runs and
    // lane work: a row is re-read once per in-tile destination that names
    // it, and both quantities are pure in `(format, row, window)`, so the
    // first touch in a pass computes them and every repeat replays the
    // memo without re-deriving spans (or paying the format's dynamic
    // dispatch). Naive mode replays the seed's per-edge recomputation.
    // `gen` stamps entries so a new pass invalidates the table without
    // clearing it.
    let memo_runs = !naive;
    let mut run_memo: Vec<RowSliceMemo> = if memo_runs {
        vec![RowSliceMemo::default(); src_rows.min(vertices.max(1))]
    } else {
        Vec::new()
    };
    let mut run_gen: u64 = 0;

    for di in 0..tiling.dst_tiles() {
        let dst_range = tiling.dst_range(di);
        let order = tile_order(
            dst_range,
            hw.aggregation_engines,
            model.sac,
            model.strip_height,
        );
        // Fast path: source tiles sweep in ascending vertex order and
        // adjacency lists are sorted, so each destination's in-tile
        // window advances a cursor over its full neighbor list — O(deg)
        // amortized across all source tiles instead of two binary
        // searches per (dst, tile). Naive mode replays the seed's
        // per-(slice, dst) binary searches.
        let full_neighbors: Vec<&[u32]> = if naive {
            Vec::new()
        } else {
            order
                .iter()
                .map(|&dst| graph.neighbors(dst as usize))
                .collect()
        };
        let mut cursors: Vec<usize> = vec![0; if naive { 0 } else { order.len() }];
        let mut tile_lane_cycles = 0u64;
        for sj in 0..tiling.src_tiles() {
            let src_range = tiling.src_range(sj);
            // The neighbor window (and GraphSAGE's sampled prefix) is a
            // function of (dst, src tile) only. The fast path computes it
            // once per tile pair; naive mode replays the seed's
            // binary-search-per-(slice, dst) behaviour for the harness
            // baseline — both visit the identical window.
            let window = |dst: u32| -> &[u32] {
                let (neigh, _) = graph.neighbors_in(dst as usize, src_range);
                match sample_cap {
                    Some(cap) => {
                        let deg = graph.degree(dst as usize).max(1);
                        let keep = if deg <= cap {
                            neigh.len()
                        } else {
                            (neigh.len() * cap).div_ceil(deg).min(neigh.len())
                        };
                        &neigh[..keep]
                    }
                    None => neigh,
                }
            };
            ordered_neighbors.clear();
            if !naive {
                ordered_neighbors.extend((0..order.len()).map(|k| {
                    let full = full_neighbors[k];
                    let lo = cursors[k];
                    let mut hi = lo;
                    while hi < full.len() && (full[hi] as usize) < src_range.end {
                        hi += 1;
                    }
                    cursors[k] = hi;
                    let neigh = &full[lo..hi];
                    match sample_cap {
                        Some(cap) => {
                            let deg = full.len().max(1);
                            let keep = if deg <= cap {
                                neigh.len()
                            } else {
                                (neigh.len() * cap).div_ceil(deg).min(neigh.len())
                            };
                            &neigh[..keep]
                        }
                        None => neigh,
                    }
                }));
            }

            // Topology subtile streams once per tile pair. Without
            // sampling the windows already hold the full in-range
            // neighbor lists (`order` permutes `dst_range`), so the fast
            // path sums their lengths instead of re-searching the CSR.
            let tile_edges: usize = if !naive && sample_cap.is_none() {
                ordered_neighbors.iter().map(|n| n.len()).sum()
            } else {
                dst_range
                    .iter()
                    .map(|v| graph.neighbors_in(v, src_range).0.len())
                    .sum()
            };
            let topo_bytes = tile_edges as u64 * 8 + dst_range.len() as u64 * 4;
            mem.read_uncached(TOPOLOGY_BASE + topo_offset, topo_bytes, Traffic::Topology);
            topo_offset += topo_bytes.div_ceil(64) * 64;

            for s in 0..nslices {
                let range = ColRange::new(s * slice_w, ((s + 1) * slice_w).min(width));
                // The window's slot-coverage arithmetic is edge-invariant:
                // resolve it once per slice pass (naive recomputes per
                // edge, seed-faithfully).
                let plan = (!naive).then(|| SlicePlan::new(fmt, range));
                run_gen += 1;
                let line_bytes = mem.line_bytes();
                for (k, &dst) in order.iter().enumerate() {
                    let neigh = if naive {
                        window(dst)
                    } else {
                        ordered_neighbors[k]
                    };
                    for &src in neigh {
                        let memo = if memo_runs {
                            let e = &mut run_memo[src as usize - src_range.start];
                            if e.gen != run_gen {
                                e.fill(
                                    run_gen,
                                    fmt,
                                    src as usize,
                                    range,
                                    line_bytes,
                                    plan.as_ref().expect("fast path has a plan"),
                                );
                            }
                            Some(&*e)
                        } else {
                            None
                        };
                        let work = match (&memo, &plan) {
                            (Some(e), _) => e.work as usize,
                            (None, Some(p)) => p.lane_work(src as usize),
                            (None, None) => fmt.lane_work(src as usize, range),
                        };
                        macs += work as u64;
                        let lanes = if naive {
                            work.div_ceil(hw.simd_lanes)
                        } else {
                            lane_div.div_ceil(work)
                        };
                        tile_lane_cycles += (lanes as u64).max(1);
                        let is_pinned = if naive {
                            hashed_pinned.contains(&src)
                        } else {
                            has_pinned && pinned.contains(src)
                        };
                        if is_pinned {
                            *davc_hits += 1;
                            let fresh = if naive {
                                hashed_loaded.insert(src)
                            } else {
                                davc_loaded.insert(src)
                            };
                            if !fresh {
                                continue;
                            }
                        }
                        match memo {
                            Some(e) => e.replay(mem, fmt, src as usize, range, feature_base),
                            None => read_slice_spans(
                                mem,
                                fmt.as_format(),
                                src as usize,
                                range,
                                feature_base,
                                Traffic::FeatureRead,
                                naive,
                            ),
                        }
                    }
                }
            }
        }
        lane_cycles_total += tile_lane_cycles;
        per_tile_cycles.push(tile_lane_cycles / hw.aggregation_engines as u64);
    }
    (
        per_tile_cycles,
        lane_cycles_total / hw.aggregation_engines as u64,
        macs,
    )
}

fn read_span(mem: &mut MemorySystem, base: u64, span: Span, kind: Traffic) {
    mem.read_span(base + span.offset, u64::from(span.bytes), kind);
}

fn write_span(mem: &mut MemorySystem, base: u64, span: Span, kind: Traffic) {
    mem.write_span(base + span.offset, u64::from(span.bytes), kind);
}

/// Reads a column window of `row` through the memory system.
///
/// The fast path replays the format's pre-coalesced line runs
/// ([`FeatureFormat::for_each_slice_run`] → [`MemorySystem::access_lines`]:
/// one batched probe/DRAM walk per run of consecutive lines); naive mode
/// replays the original allocating `slice_spans` + per-span `read` path so
/// the perf harness has a faithful baseline. Compaction is exact by
/// construction (see `sgcn_formats::runs`), so every counter matches bit
/// for bit.
#[inline]
fn read_slice_spans(
    mem: &mut MemorySystem,
    fmt: &dyn FeatureFormat,
    row: usize,
    range: ColRange,
    base: u64,
    kind: Traffic,
    naive: bool,
) {
    if naive {
        for span in fmt.slice_spans(row, range) {
            read_span(mem, base, span, kind);
        }
    } else {
        fmt.for_each_slice_run(row, range, mem.line_bytes(), &mut |run| {
            mem.access_lines(base, run, kind);
        });
    }
}

/// Reads a full row (see [`read_slice_spans`] for the naive/fast split).
#[inline]
fn read_row_spans(
    mem: &mut MemorySystem,
    fmt: &dyn FeatureFormat,
    row: usize,
    base: u64,
    kind: Traffic,
    naive: bool,
) {
    if naive {
        for span in fmt.row_spans(row) {
            read_span(mem, base, span, kind);
        }
    } else {
        fmt.for_each_row_run(row, mem.line_bytes(), &mut |run| {
            mem.access_lines(base, run, kind);
        });
    }
}

/// Writes a row back (see [`read_slice_spans`] for the naive/fast split;
/// write runs merge only contiguous spans, keeping the streamed DRAM
/// burst order intact).
#[inline]
fn write_row_spans(
    mem: &mut MemorySystem,
    fmt: &dyn FeatureFormat,
    row: usize,
    base: u64,
    kind: Traffic,
    naive: bool,
) {
    if naive {
        for span in fmt.write_spans(row) {
            write_span(mem, base, span, kind);
        }
    } else {
        fmt.for_each_write_run(row, mem.line_bytes(), &mut |run| {
            mem.write_lines(base, run, kind);
        });
    }
}

/// Aggregation-first layer (GCNAX intermediate layers, HyGCN, SGCN):
/// `H = Ã·X` per destination tile feeds the systolic `H·W` directly; the
/// activated output is written back (compressed for SGCN).
#[allow(clippy::too_many_arguments)]
fn agg_first_layer(
    model: &AccelModel,
    workload: &Workload,
    hw: &HwConfig,
    graph: &CsrGraph,
    systolic: &SystolicArray,
    mem: &mut MemorySystem,
    pinned: &VertexSet,
    davc_hits: &mut u64,
    in_fmt: &LayerFormat<'_>,
    out_fmt: &LayerFormat<'_>,
    x_in: &DenseMatrix,
    w_in: usize,
    w_out: usize,
    in_base: u64,
    out_base: u64,
) -> LayerTally {
    let _ = workload;
    let (per_tile_agg, agg_cycles, mut macs) = aggregation_sweep(
        model,
        hw,
        graph,
        mem,
        pinned,
        davc_hits,
        in_fmt,
        in_base,
        w_in,
        workload.network.variant,
    );
    let _ = x_in;

    // Combination + output write per destination tile.
    let vertices = graph.num_vertices();
    let tiles = per_tile_agg.len().max(1);
    let rows_per_tile = vertices.div_ceil(tiles);
    let mut pairs = Vec::with_capacity(tiles);
    let mut comb_cycles = 0u64;
    for (ti, &agg) in per_tile_agg.iter().enumerate() {
        let rows = rows_per_tile.min(vertices - (ti * rows_per_tile).min(vertices));
        let comb = systolic.gemm_cycles(rows, w_in, w_out) / hw.combination_engines as u64;
        macs += SystolicArray::gemm_macs(rows, w_in, w_out);
        comb_cycles += comb;
        pairs.push((agg, comb));
        for r in ti * rows_per_tile..(ti * rows_per_tile + rows).min(vertices) {
            write_row_spans(
                mem,
                out_fmt.as_format(),
                r,
                out_base,
                Traffic::FeatureWrite,
                hw.is_naive(),
            );
        }
    }
    LayerTally {
        agg_cycles,
        comb_cycles,
        macs,
        compute_cycles: two_stage_pipeline(&pairs),
    }
}

/// Combination-first layer (EnGN, I-GCN, and everyone's input layer):
/// `Y = X·W` streams the inputs once, `Ã·Y` aggregates the scratch matrix.
#[allow(clippy::too_many_arguments)]
fn comb_first_layer(
    model: &AccelModel,
    workload: &Workload,
    hw: &HwConfig,
    graph: &CsrGraph,
    systolic: &SystolicArray,
    mem: &mut MemorySystem,
    pinned: &VertexSet,
    davc_hits: &mut u64,
    in_fmt: &LayerFormat<'_>,
    out_fmt: &LayerFormat<'_>,
    x_in: &DenseMatrix,
    layer: usize,
    w_in: usize,
    w_out: usize,
    in_base: u64,
    out_base: u64,
    sparse_input: bool,
) -> LayerTally {
    let vertices = graph.num_vertices();
    let naive = hw.is_naive();
    let mut macs = 0u64;
    let mut comb_cycles = 0u64;

    // Combination pass: stream X rows once, write Y (dense, width w_out)
    // to scratch.
    let y = DenseMatrix::zeros(vertices, w_out);
    for r in 0..vertices {
        read_row_spans(
            mem,
            in_fmt.as_format(),
            r,
            in_base,
            Traffic::FeatureRead,
            naive,
        );
    }
    if sparse_input {
        // SGCN's §V-F option: the first-layer combination runs on the
        // sparse aggregator over CSR input — work ∝ input non-zeros.
        let nnz = x_in.count_nonzeros() as u64;
        macs += nnz * w_out as u64;
        comb_cycles +=
            (nnz * w_out as u64) / (hw.simd_lanes as u64 * hw.aggregation_engines as u64).max(1);
    } else {
        let dense_macs = SystolicArray::gemm_macs(vertices, w_in, w_out);
        let mut cycles =
            systolic.gemm_cycles(vertices, w_in, w_out) / hw.combination_engines as u64;
        if model.comb_zero_skip {
            // The trace pre-measured this matrix's sparsity; the naive
            // baseline replays the seed's full rescan.
            let sparsity = if naive {
                x_in.sparsity()
            } else {
                workload.trace.sparsity(layer)
            };
            let density = (1.0 - sparsity).clamp(0.02, 1.0);
            cycles = (cycles as f64 * density) as u64;
            macs += (dense_macs as f64 * density) as u64;
        } else {
            macs += dense_macs;
        }
        comb_cycles += cycles;
    }
    for r in 0..vertices {
        write_row_spans(mem, &y, r, SCRATCH_BASE, Traffic::FeatureWrite, naive);
    }

    // Aggregation pass over the dense scratch Y.
    let y_fmt = LayerFormat::Dense(&y);
    let (_, agg_cycles, agg_macs) = aggregation_sweep(
        model,
        hw,
        graph,
        mem,
        pinned,
        davc_hits,
        &y_fmt,
        SCRATCH_BASE,
        w_out,
        workload.network.variant,
    );
    macs += agg_macs;

    // Activated output written back in the accelerator's storage format.
    for r in 0..vertices {
        write_row_spans(
            mem,
            out_fmt.as_format(),
            r,
            out_base,
            Traffic::FeatureWrite,
            naive,
        );
    }
    let _ = workload;

    LayerTally {
        agg_cycles,
        comb_cycles,
        macs,
        compute_cycles: two_stage_pipeline(&[(comb_cycles, agg_cycles)]),
    }
}

/// AWB-GCN's column-product layer: `Y = X·W` (zero-skipped), then for each
/// source vertex its Y row scatters into every destination's partial sum —
/// reads each input once, but partial-sum spills dominate traffic
/// (Fig. 14).
#[allow(clippy::too_many_arguments)]
fn column_product_layer(
    model: &AccelModel,
    workload: &Workload,
    hw: &HwConfig,
    graph: &CsrGraph,
    systolic: &SystolicArray,
    mem: &mut MemorySystem,
    layer: usize,
    in_fmt: &LayerFormat<'_>,
    x_in: &DenseMatrix,
    w_in: usize,
    w_out: usize,
    in_base: u64,
    out_base: u64,
) -> LayerTally {
    let vertices = graph.num_vertices();
    let row_bytes = (w_out * 4) as u64;
    let mut macs = 0u64;

    // Topology streams once.
    mem.read_uncached(
        TOPOLOGY_BASE,
        workload.topology_bytes_per_layer(),
        Traffic::Topology,
    );

    // Combination: stream inputs once (dense storage — AWB keeps features
    // dense, §VI-B), zero-skipped compute.
    let naive = hw.is_naive();
    for r in 0..vertices {
        read_row_spans(
            mem,
            in_fmt.as_format(),
            r,
            in_base,
            Traffic::FeatureRead,
            naive,
        );
    }
    // The trace pre-measured this matrix's sparsity; the naive baseline
    // replays the seed's full rescan.
    let sparsity = if naive {
        x_in.sparsity()
    } else {
        workload.trace.sparsity(layer)
    };
    let density = (1.0 - sparsity).clamp(0.02, 1.0);
    let dense_macs = SystolicArray::gemm_macs(vertices, w_in, w_out);
    let comb_cycles = if model.comb_zero_skip {
        macs += (dense_macs as f64 * density) as u64;
        (systolic.gemm_cycles(vertices, w_in, w_out) as f64 * density) as u64
            / hw.combination_engines as u64
    } else {
        macs += dense_macs;
        systolic.gemm_cycles(vertices, w_in, w_out) / hw.combination_engines as u64
    };

    // Column-product aggregation over chunks of source vertices; each
    // chunk's combination output feeds scatter-accumulation, so the two
    // stages pipeline. Partial rows live in AWB-GCN's distributed on-chip
    // accumulation banks (its task-queue PEs hold psums locally) — sized
    // well above the shared cache — and spill to DRAM only on overflow.
    let psum_config = sgcn_mem::CacheConfig {
        capacity_bytes: hw.cache.capacity_bytes * 16,
        ..hw.cache
    };
    let mut psum_banks = match hw.cache_engine {
        CacheEngine::Flat => PsumBanks::Flat(sgcn_mem::Cache::new(psum_config)),
        CacheEngine::List => PsumBanks::List(sgcn_mem::ListCache::new(psum_config)),
    };
    let lane_cycles_per_row = (LaneDiv::new(hw.simd_lanes).div_ceil(w_out) as u64).max(1);
    let mut lane_cycles = 0u64;
    let mut pairs: Vec<(u64, u64)> = Vec::new();
    let chunks = vertices.div_ceil(COLUMN_CHUNK).max(1);
    let comb_per_chunk = comb_cycles / chunks as u64;
    let mut chunk_lane = 0u64;
    for src in 0..vertices {
        // The freshly combined Y row is produced on chip; scatter it into
        // every destination's partial row (spilled lines fetch and
        // eventually write back).
        for &dst in graph.neighbors(src) {
            let addr = PARTIAL_BASE + dst as u64 * row_bytes;
            psum_banks.scatter_row(addr, row_bytes.div_ceil(64), mem);
            macs += w_out as u64;
            chunk_lane += lane_cycles_per_row;
        }
        if (src + 1) % COLUMN_CHUNK == 0 || src + 1 == vertices {
            lane_cycles += chunk_lane;
            pairs.push((comb_per_chunk, chunk_lane / hw.aggregation_engines as u64));
            chunk_lane = 0;
        }
    }
    let agg_cycles = lane_cycles / hw.aggregation_engines as u64;

    // Final activated output (dense) — the partial rows become X^(l+1).
    for r in 0..vertices {
        mem.write(
            out_base + r as u64 * row_bytes,
            row_bytes,
            Traffic::FeatureWrite,
        );
    }

    LayerTally {
        agg_cycles,
        comb_cycles,
        macs,
        compute_cycles: two_stage_pipeline(&pairs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AccelModel;
    use sgcn_graph::datasets::{DatasetId, SynthScale};
    use sgcn_model::NetworkConfig;

    fn tiny_workload(id: DatasetId) -> Workload {
        Workload::build(
            id,
            SynthScale::tiny(),
            NetworkConfig::deep_residual(4, 64),
            11,
        )
    }

    #[test]
    fn sgcn_moves_less_feature_traffic_than_gcnax() {
        let wl = tiny_workload(DatasetId::PubMed);
        let hw = HwConfig::default();
        let sgcn = AccelModel::sgcn().simulate(&wl, &hw);
        let gcnax = AccelModel::gcnax().simulate(&wl, &hw);
        assert!(
            sgcn.dram_bytes_for(Traffic::FeatureRead) < gcnax.dram_bytes_for(Traffic::FeatureRead),
            "sgcn {} vs gcnax {}",
            sgcn.dram_bytes_for(Traffic::FeatureRead),
            gcnax.dram_bytes_for(Traffic::FeatureRead)
        );
        assert!(
            sgcn.dram_bytes_for(Traffic::FeatureWrite)
                < gcnax.dram_bytes_for(Traffic::FeatureWrite)
        );
        assert!(sgcn.cycles < gcnax.cycles);
    }

    #[test]
    fn awb_partial_sums_dominate() {
        // The column-product's partial-sum working set (V × width) must
        // exceed the cache for the spills to show — the paper's regime on
        // the full-scale graphs. Shrink the cache accordingly.
        let wl = tiny_workload(DatasetId::Cora);
        let hw = HwConfig::default().with_cache_kib(32);
        let awb = AccelModel::awb_gcn().simulate(&wl, &hw);
        let partial = awb.dram_bytes_for(Traffic::PartialSum);
        let feat = awb.dram_bytes_for(Traffic::FeatureRead);
        assert!(partial > feat, "partial {partial} vs feature {feat}");
    }

    #[test]
    fn hygcn_feature_reads_dominate_untiled() {
        let wl = tiny_workload(DatasetId::Cora);
        let hygcn = AccelModel::hygcn().simulate(&wl, &HwConfig::default());
        let gcnax = AccelModel::gcnax().simulate(&wl, &HwConfig::default());
        assert!(hygcn.cycles >= gcnax.cycles, "HyGCN should not beat GCNAX");
    }

    #[test]
    fn graphsage_sampling_cuts_aggregation_traffic() {
        use sgcn_model::{GcnVariant, NetworkConfig};
        let hw = HwConfig::default().with_cache_kib(16);
        let gcn = Workload::build(
            DatasetId::Reddit,
            SynthScale::tiny(),
            NetworkConfig::deep_residual(4, 64),
            11,
        );
        let sage = Workload::build(
            DatasetId::Reddit,
            SynthScale::tiny(),
            NetworkConfig::deep_residual(4, 64).with_variant(GcnVariant::GraphSage { sample: 2 }),
            11,
        );
        let r_gcn = AccelModel::gcnax().simulate(&gcn, &hw);
        let r_sage = AccelModel::gcnax().simulate(&sage, &hw);
        // Cache dedup absorbs much of the traffic saving (distinct rows
        // are still touched once per pass), but access counts, aggregation
        // work and topology bytes all shrink with the sampled edge set.
        assert!(
            r_sage.mem.traffic(Traffic::FeatureRead).bytes_requested
                < r_gcn.mem.traffic(Traffic::FeatureRead).bytes_requested * 7 / 10,
            "sage requested {} vs gcn {}",
            r_sage.mem.traffic(Traffic::FeatureRead).bytes_requested,
            r_gcn.mem.traffic(Traffic::FeatureRead).bytes_requested
        );
        // Combination MACs (V·W²) dominate and are unaffected; the
        // aggregation side shrinks with the sampled edge set.
        assert!(
            r_sage.agg_cycles < r_gcn.agg_cycles * 7 / 10,
            "sage agg {} vs gcn {}",
            r_sage.agg_cycles,
            r_gcn.agg_cycles
        );
        assert!(r_sage.macs < r_gcn.macs);
    }

    #[test]
    fn reports_are_deterministic() {
        let wl = tiny_workload(DatasetId::Dblp);
        let hw = HwConfig::default();
        let a = AccelModel::sgcn().simulate(&wl, &hw);
        let b = AccelModel::sgcn().simulate(&wl, &hw);
        assert_eq!(a, b);
    }

    #[test]
    fn macs_are_positive_and_energy_consistent() {
        let wl = tiny_workload(DatasetId::Cora);
        let r = AccelModel::sgcn().simulate(&wl, &HwConfig::default());
        assert!(r.macs > 0);
        assert!(r.energy.total_pj() > 0.0);
        assert!(r.tdp_watts > 3.0 && r.tdp_watts < 12.0);
        assert!(r.cycles >= r.mem_cycles.min(r.agg_cycles));
    }

    #[test]
    fn layer_reports_sum_to_totals() {
        let wl = tiny_workload(DatasetId::PubMed);
        let r = AccelModel::sgcn().simulate(&wl, &HwConfig::default());
        assert_eq!(r.layers.len(), wl.network.layers);
        assert_eq!(r.layers.iter().map(|l| l.cycles).sum::<u64>(), r.cycles);
        assert_eq!(r.layers.iter().map(|l| l.macs).sum::<u64>(), r.macs);
        assert_eq!(
            r.layers.iter().map(|l| l.mem_cycles).sum::<u64>(),
            r.mem_cycles
        );
        // Layer indices are 0..L in order.
        for (i, l) in r.layers.iter().enumerate() {
            assert_eq!(l.layer, i);
        }
        // The fraction is well-defined.
        let f = r.memory_bound_fraction();
        assert!((0.0..=1.0).contains(&f));
    }
}
