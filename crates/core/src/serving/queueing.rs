//! Online queueing simulation: open-loop arrivals, N engines, pluggable
//! scheduling policies, warm-cache reuse across requests.
//!
//! [`super`] replays request *batches* offline — every request is ready
//! at time zero and latency is pure service time. A deployed accelerator
//! instead sits behind live traffic: requests arrive on their own clock,
//! queue when every engine is busy, and their end-to-end latency is
//! queueing delay plus service. This module models that pipeline as a
//! deterministic event-driven simulation:
//!
//! * [`ArrivalProcess`] — seeded exponential (Poisson) inter-arrival
//!   gaps in cycles. Each gap derives from `(seed, request index)` only,
//!   never from thread schedule or simulation state, so the timeline is
//!   bit-identical at any `SGCN_THREADS`.
//! * [`prepare`] — the parallel half: samples each request's
//!   neighborhood, builds its workload, and simulates its *cold* service
//!   time ([`SimReport`]) via `par_map` in stream order.
//! * [`simulate_queue`] — the serial event loop: requests are dispatched
//!   in arrival order to one of N engines per a [`SchedPolicy`]. Every
//!   engine owns a [`MemorySystem`] that stays **warm across requests**:
//!   the input-feature rows of each served request (addressed by their
//!   *global* vertex ids) are pulled through the engine's cache, so a
//!   later request sharing sampled neighborhoods hits resident lines.
//!   Warm hits shave the corresponding DRAM service time off the
//!   request's cold latency — the cold-vs-warm reuse measurement the
//!   roadmap calls for — and are reported per engine and in aggregate.
//! * [`QueueSummary`] — queueing-delay and end-to-end percentiles,
//!   utilization, makespan, warm-hit stats, rendered with the same
//!   fixed-precision deterministic JSON discipline as
//!   [`super::ServeSummary`] (no field ever renders `inf`/`NaN`; an
//!   empty stream yields the all-zero summary).
//!
//! # Determinism
//!
//! The only parallel stage is [`prepare`], which returns results in
//! stream order. The event loop is serial and consumes nothing but its
//! inputs, so `(context, stream, model, hw, QueueConfig)` fully
//! determines every record byte — `BENCH_queue.json` is identical across
//! `SGCN_THREADS=1,2,4` and across the fast/naive cache engines (both
//! cache implementations produce bit-identical hit streams).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sgcn_formats::LineRun;
use sgcn_mem::{CacheConfig, MemorySystem, SpanCounts, Traffic};
use sgcn_par::par_map;

use crate::accel::AccelModel;
use crate::config::HwConfig;
use crate::metrics::SimReport;
use crate::serving::{percentile, Request, ServingContext};

/// How the dispatcher picks an engine for the request at the head of the
/// queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedPolicy {
    /// FIFO queue dispatched round-robin: request `i` goes to engine
    /// `i mod N`. The oblivious baseline.
    FifoRoundRobin,
    /// The engine that frees up earliest (ties to the lowest id) — the
    /// classic load-balancing heuristic.
    LeastLoaded,
    /// Bounded-load warm-cache affinity: among engines whose backlog is
    /// within a slack window (two mean cold services) of the
    /// least-loaded one, peek each engine's resident feature lines for
    /// the request's sampled vertices and route to the engine holding
    /// the most (ties to the earliest-free, then lowest id). The window
    /// keeps a hot neighborhood from starving the fleet behind one
    /// engine while preserving reuse.
    CacheAffinity,
}

impl SchedPolicy {
    /// All policies in report order.
    pub const ALL: [SchedPolicy; 3] = [
        SchedPolicy::FifoRoundRobin,
        SchedPolicy::LeastLoaded,
        SchedPolicy::CacheAffinity,
    ];

    /// Display label (stable — appears in golden snapshots).
    pub fn label(&self) -> &'static str {
        match self {
            SchedPolicy::FifoRoundRobin => "fifo-rr",
            SchedPolicy::LeastLoaded => "least-loaded",
            SchedPolicy::CacheAffinity => "cache-affinity",
        }
    }

    /// Parses an `SGCN_POLICY`-style name; `None` for unknown names.
    pub fn parse(name: &str) -> Option<SchedPolicy> {
        match name.trim().to_ascii_lowercase().as_str() {
            "fifo" | "rr" | "fifo-rr" | "round-robin" => Some(SchedPolicy::FifoRoundRobin),
            "least" | "least-loaded" | "ll" => Some(SchedPolicy::LeastLoaded),
            "affinity" | "cache-affinity" | "warm" => Some(SchedPolicy::CacheAffinity),
            _ => None,
        }
    }
}

/// Knobs of one queueing run.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueConfig {
    /// Number of serving engines (each owns a warm [`MemorySystem`]).
    pub engines: usize,
    /// Dispatch policy.
    pub policy: SchedPolicy,
    /// Offered load ρ: the arrival rate as a fraction of the fleet's
    /// aggregate cold-service capacity (ρ = 1 saturates it; the mean
    /// inter-arrival gap is `mean_service / (engines × ρ)`).
    pub offered_load: f64,
    /// Arrival-process seed.
    pub seed: u64,
    /// Geometry of each engine's warm feature cache. Defaults to the
    /// platform's full 512 KB cache: serving engines keep input-feature
    /// rows resident across requests (unlike the scaled-down experiment
    /// caches, which model intermediate working sets).
    pub warm_cache: CacheConfig,
}

impl QueueConfig {
    /// A config with the default warm-cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if `engines == 0` or `offered_load` is not a positive
    /// finite number.
    pub fn new(engines: usize, policy: SchedPolicy, offered_load: f64, seed: u64) -> Self {
        assert!(engines > 0, "queueing needs at least one engine");
        assert!(
            offered_load.is_finite() && offered_load > 0.0,
            "offered load must be positive and finite, got {offered_load}"
        );
        QueueConfig {
            engines,
            policy,
            offered_load,
            seed,
            warm_cache: CacheConfig::default(),
        }
    }
}

/// Seeded open-loop exponential arrivals. Gap `i` is a pure function of
/// `(seed, i)` — a splitmix-style per-index RNG draws one uniform and
/// maps it through the exponential quantile — so the timeline never
/// depends on how the rest of the simulation is scheduled.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalProcess {
    seed: u64,
    mean_gap_cycles: f64,
}

impl ArrivalProcess {
    /// Creates the process.
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap_cycles` is negative or non-finite.
    pub fn new(seed: u64, mean_gap_cycles: f64) -> Self {
        assert!(
            mean_gap_cycles.is_finite() && mean_gap_cycles >= 0.0,
            "mean inter-arrival gap must be finite and non-negative, got {mean_gap_cycles}"
        );
        ArrivalProcess {
            seed,
            mean_gap_cycles,
        }
    }

    /// The gap (cycles) between request `index - 1` and `index` (the gap
    /// before request 0 is its absolute arrival time).
    pub fn gap_cycles(&self, index: usize) -> u64 {
        // splitmix64 finalizer over (seed, index): decorrelated streams
        // per index, identical regardless of evaluation order.
        let mut z = self
            .seed
            .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let mut rng = SmallRng::seed_from_u64(z ^ (z >> 31));
        let u: f64 = rng.gen_range(0.0..1.0);
        // Exponential quantile; u < 1 strictly, so ln is finite.
        (-self.mean_gap_cycles * (1.0 - u).ln()).round() as u64
    }

    /// Absolute arrival times (cycles) of `n` requests, non-decreasing.
    pub fn timeline(&self, n: usize) -> Vec<u64> {
        let mut t = 0u64;
        (0..n)
            .map(|i| {
                t = t.saturating_add(self.gap_cycles(i));
                t
            })
            .collect()
    }
}

/// A request with its model-level simulation done: the sampled global
/// vertex ids (the warm-cache working set) and the cold-cache service
/// report.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedRequest {
    /// The request.
    pub request: Request,
    /// Global (original dataset) ids of the sampled neighborhood — the
    /// input-feature rows the engine pulls through its warm cache.
    pub vertices: Vec<u32>,
    /// Cold service simulation of the request's workload.
    pub report: SimReport,
}

/// Samples, builds and simulates every request in parallel (stream
/// order) — the model-independent-of-policy half of a queueing run.
/// Prepare once, then [`simulate_queue`] any number of policy/load/engine
/// combinations over the same prepared stream.
///
/// Sampling, workload construction and the cold simulation are bit-pure
/// in the request's `seed_vertex` (never its stream position), so each
/// distinct vertex is simulated once and duplicates — the whole point of
/// a hotspot stream — clone the result.
pub fn prepare(
    ctx: &ServingContext,
    requests: &[Request],
    model: &AccelModel,
    hw: &HwConfig,
) -> Vec<PreparedRequest> {
    let mut distinct: Vec<u32> = requests.iter().map(|r| r.seed_vertex).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let per_vertex: Vec<(Vec<u32>, SimReport)> = par_map(distinct.clone(), |seed_vertex| {
        let probe = Request {
            index: 0,
            seed_vertex,
        };
        let sub = ctx.sample(&probe);
        let vertices = sub.vertices.clone();
        let wl = ctx.build_workload_from(&probe, sub);
        (vertices, model.simulate(&wl, hw))
    });
    requests
        .iter()
        .map(|req| {
            let at = distinct
                .binary_search(&req.seed_vertex)
                .expect("every stream vertex was prepared");
            let (vertices, report) = &per_vertex[at];
            PreparedRequest {
                request: *req,
                vertices: vertices.clone(),
                report: report.clone(),
            }
        })
        .collect()
}

/// One request's timeline through the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTiming {
    /// Stream position.
    pub index: usize,
    /// Engine that served it.
    pub engine: usize,
    /// Arrival time (cycles).
    pub arrival: u64,
    /// Service start (≥ arrival).
    pub start: u64,
    /// Service end.
    pub finish: u64,
    /// Warm-adjusted service time (`finish - start`).
    pub service_cycles: u64,
    /// Warm-cache filtering of the request's feature working set on its
    /// engine.
    pub warm: SpanCounts,
}

impl RequestTiming {
    /// Queueing delay (cycles spent waiting for an engine).
    pub fn wait_cycles(&self) -> u64 {
        self.start - self.arrival
    }

    /// End-to-end latency (wait + service).
    pub fn e2e_cycles(&self) -> u64 {
        self.finish - self.arrival
    }
}

/// Per-engine state: the warm memory hierarchy plus scheduling clocks.
struct Engine {
    mem: MemorySystem,
    next_free: u64,
    busy: u64,
    served: u64,
    warm: SpanCounts,
}

/// The full result of one queueing run.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueOutcome {
    /// Per-request timelines, in stream order.
    pub records: Vec<RequestTiming>,
    /// Busy cycles per engine.
    pub engine_busy: Vec<u64>,
    /// Requests served per engine.
    pub engine_served: Vec<u64>,
    /// Warm-cache counts per engine.
    pub engine_warm: Vec<SpanCounts>,
    /// The aggregate view.
    pub summary: QueueSummary,
}

/// Runs the serial event loop over a prepared stream.
///
/// `feature_row_bytes` is the byte size of one input-feature row (the
/// unit pulled through an engine's warm cache per sampled vertex);
/// [`run_queue`] derives it from the serving context.
pub fn simulate_queue(
    prepared: &[PreparedRequest],
    cfg: &QueueConfig,
    hw: &HwConfig,
    feature_row_bytes: u64,
) -> QueueOutcome {
    let n = prepared.len();
    // Arrival rate calibrated to the stream's own mean cold service time:
    // ρ = offered_load of the fleet's aggregate capacity.
    let mean_service = if n == 0 {
        0.0
    } else {
        prepared.iter().map(|p| p.report.cycles as f64).sum::<f64>() / n as f64
    };
    let mean_gap = mean_service / (cfg.engines as f64 * cfg.offered_load);
    let arrivals = ArrivalProcess::new(cfg.seed, mean_gap).timeline(n);

    let mut engines: Vec<Engine> = (0..cfg.engines)
        .map(|_| Engine {
            mem: MemorySystem::with_engine(cfg.warm_cache, hw.dram, hw.cache_engine),
            next_free: 0,
            busy: 0,
            served: 0,
            warm: SpanCounts::default(),
        })
        .collect();

    // Warm hits displace DRAM fetches; the shaved service time is the
    // avoided bytes at the device's effective bandwidth.
    let effective_bw = hw.dram.peak_bytes_per_cycle * hw.dram.efficiency;
    let line_bytes = cfg.warm_cache.line_bytes;
    // Rows are line-aligned in the warm-cache address space: padding the
    // stride to a line multiple keeps adjacent vertex ids from sharing a
    // boundary line, so a cold engine reports zero warm hits even when
    // the row size is not a multiple of the line size (the line count
    // per row is unchanged — an aligned row touches ⌈row/line⌉ lines
    // either way).
    let row_stride = feature_row_bytes.div_ceil(line_bytes) * line_bytes;
    // Affinity slack: the warm engine may run ahead of the least-loaded
    // one by at most two mean cold services before the policy falls back
    // to balancing (bounded-load affinity — pure greedy routing would
    // starve the rest of the fleet behind one hot engine).
    let affinity_slack = (2.0 * mean_service).ceil() as u64;

    let mut records = Vec::with_capacity(n);
    for (p, &arrival) in prepared.iter().zip(&arrivals) {
        let e = pick_engine(cfg.policy, &engines, p, arrival, row_stride, affinity_slack);
        let eng = &mut engines[e];
        // Fresh per-request counters on a warm hierarchy (contents and
        // open rows survive; see MemorySystem::reset_stats).
        eng.mem.reset_stats();
        // Feature rows are line-aligned (`row_stride` pads to a line
        // multiple), so each row is one pre-compacted line run — the
        // same batched replay the dataflow simulator uses
        // (`MemorySystem::access_lines`), bit-identical to the per-span
        // path.
        let lines_per_row = row_stride / line_bytes;
        let mut warm = SpanCounts::default();
        for &v in &p.vertices {
            warm.add(eng.mem.access_lines(
                0,
                LineRun::contiguous(u64::from(v) * lines_per_row, lines_per_row),
                Traffic::FeatureRead,
            ));
        }
        // Reuse can only displace feature-read DRAM traffic the cold run
        // actually paid for.
        let saved_bytes =
            (warm.hits * line_bytes).min(p.report.dram_bytes_for(Traffic::FeatureRead));
        let saved_cycles = if effective_bw > 0.0 {
            (saved_bytes as f64 / effective_bw).floor() as u64
        } else {
            0
        };
        let service = p.report.cycles.saturating_sub(saved_cycles).max(1);

        let start = arrival.max(eng.next_free);
        let finish = start + service;
        eng.next_free = finish;
        eng.busy += service;
        eng.served += 1;
        eng.warm.add(warm);
        records.push(RequestTiming {
            index: p.request.index,
            engine: e,
            arrival,
            start,
            finish,
            service_cycles: service,
            warm,
        });
    }

    let engine_busy: Vec<u64> = engines.iter().map(|e| e.busy).collect();
    let engine_served: Vec<u64> = engines.iter().map(|e| e.served).collect();
    let engine_warm: Vec<SpanCounts> = engines.iter().map(|e| e.warm).collect();
    let summary = QueueSummary::from_records(&records, &engine_busy, cfg);
    QueueOutcome {
        records,
        engine_busy,
        engine_served,
        engine_warm,
        summary,
    }
}

/// Convenience wrapper: [`prepare`] + [`simulate_queue`] in one call.
pub fn run_queue(
    ctx: &ServingContext,
    requests: &[Request],
    model: &AccelModel,
    hw: &HwConfig,
    cfg: &QueueConfig,
) -> QueueOutcome {
    let prepared = prepare(ctx, requests, model, hw);
    simulate_queue(&prepared, cfg, hw, feature_row_bytes(ctx))
}

/// Byte size of one input-feature row of the context's dataset (f32
/// elements) — the warm-cache unit per sampled vertex.
pub fn feature_row_bytes(ctx: &ServingContext) -> u64 {
    ctx.dataset.input_features as u64 * 4
}

fn pick_engine(
    policy: SchedPolicy,
    engines: &[Engine],
    p: &PreparedRequest,
    arrival: u64,
    row_stride: u64,
    affinity_slack: u64,
) -> usize {
    match policy {
        // Dispatch by the request's stream index (not loop position), so
        // the documented `i mod N` contract holds even when a caller
        // simulates a subset or reordering of a stream.
        SchedPolicy::FifoRoundRobin => p.request.index % engines.len(),
        SchedPolicy::LeastLoaded => engines
            .iter()
            .enumerate()
            .min_by_key(|(id, e)| (e.next_free, *id))
            .map(|(id, _)| id)
            .expect("at least one engine"),
        SchedPolicy::CacheAffinity => {
            // Bounded-load affinity: an engine's backlog is the work
            // queued beyond the request's arrival instant; only engines
            // within `affinity_slack` of the lightest backlog are
            // eligible (pure greedy routing would starve the fleet
            // behind one hot engine). Among those, a non-mutating
            // residency poll picks the most warm lines, ties to the
            // earliest-free then lowest id. The commit happens in the
            // event loop once the winner is chosen.
            let backlog = |e: &Engine| e.next_free.saturating_sub(arrival);
            let min_backlog = engines
                .iter()
                .map(backlog)
                .min()
                .expect("at least one engine");
            let limit = min_backlog.saturating_add(affinity_slack);
            let mut best = usize::MAX;
            let mut best_key = (0u64, 0u64); // (hits, -next_free) maximized
            for (id, eng) in engines.iter().enumerate() {
                if backlog(eng) > limit {
                    continue;
                }
                let hits: u64 = p
                    .vertices
                    .iter()
                    .map(|&v| {
                        eng.mem
                            .peek_span(u64::from(v) * row_stride, row_stride)
                            .hits
                    })
                    .sum();
                let key = (hits, u64::MAX - eng.next_free);
                if best == usize::MAX || key > best_key {
                    best_key = key;
                    best = id;
                }
            }
            best
        }
    }
}

/// Aggregate view of a queueing run: the SLO percentiles over queueing
/// delay and end-to-end latency, fleet utilization, and warm-cache reuse.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueSummary {
    /// Requests simulated.
    pub requests: usize,
    /// Engine count.
    pub engines: usize,
    /// Policy label.
    pub policy: &'static str,
    /// Offered load ρ.
    pub offered_load: f64,
    /// Last finish time (cycles); 0 for an empty stream.
    pub makespan_cycles: u64,
    /// Mean queueing delay.
    pub mean_wait_cycles: f64,
    /// Median queueing delay.
    pub p50_wait_cycles: u64,
    /// 95th-percentile queueing delay.
    pub p95_wait_cycles: u64,
    /// 99th-percentile queueing delay.
    pub p99_wait_cycles: u64,
    /// Worst queueing delay.
    pub max_wait_cycles: u64,
    /// Mean end-to-end latency.
    pub mean_e2e_cycles: f64,
    /// Median end-to-end latency.
    pub p50_e2e_cycles: u64,
    /// 95th-percentile end-to-end latency.
    pub p95_e2e_cycles: u64,
    /// 99th-percentile end-to-end latency.
    pub p99_e2e_cycles: u64,
    /// Worst end-to-end latency.
    pub max_e2e_cycles: u64,
    /// Requests per second at 1 GHz over the makespan (0 when empty).
    pub throughput_rps: f64,
    /// Mean fleet utilization: busy cycles / (engines × makespan), in
    /// `[0, 1]` (0 when empty).
    pub utilization: f64,
    /// Feature lines pulled through warm caches.
    pub warm_lines: u64,
    /// Lines already resident (reuse across requests).
    pub warm_hits: u64,
    /// `warm_hits / warm_lines` (0 when no lines).
    pub warm_hit_rate: f64,
}

impl QueueSummary {
    /// Aggregates a run. An empty stream yields the all-zero summary —
    /// every ratio has a zero-denominator guard, so no field is ever
    /// `inf`/`NaN`.
    pub fn from_records(records: &[RequestTiming], engine_busy: &[u64], cfg: &QueueConfig) -> Self {
        let n = records.len();
        let mut waits: Vec<u64> = records.iter().map(|r| r.wait_cycles()).collect();
        let mut e2es: Vec<u64> = records.iter().map(|r| r.e2e_cycles()).collect();
        waits.sort_unstable();
        e2es.sort_unstable();
        let makespan = records.iter().map(|r| r.finish).max().unwrap_or(0);
        let busy: u64 = engine_busy.iter().sum();
        let mut warm = SpanCounts::default();
        for r in records {
            warm.add(r.warm);
        }
        let div = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
        QueueSummary {
            requests: n,
            engines: cfg.engines,
            policy: cfg.policy.label(),
            offered_load: cfg.offered_load,
            makespan_cycles: makespan,
            mean_wait_cycles: div(waits.iter().sum::<u64>() as f64, n as f64),
            p50_wait_cycles: percentile(&waits, 50),
            p95_wait_cycles: percentile(&waits, 95),
            p99_wait_cycles: percentile(&waits, 99),
            max_wait_cycles: waits.last().copied().unwrap_or(0),
            mean_e2e_cycles: div(e2es.iter().sum::<u64>() as f64, n as f64),
            p50_e2e_cycles: percentile(&e2es, 50),
            p95_e2e_cycles: percentile(&e2es, 95),
            p99_e2e_cycles: percentile(&e2es, 99),
            max_e2e_cycles: e2es.last().copied().unwrap_or(0),
            throughput_rps: div(n as f64 * 1e9, makespan as f64),
            utilization: div(busy as f64, cfg.engines as f64 * makespan as f64),
            warm_lines: warm.lines,
            warm_hits: warm.hits,
            warm_hit_rate: div(warm.hits as f64, warm.lines as f64),
        }
    }

    /// Deterministic JSON rendering (fixed field order, fixed float
    /// precision) — the `BENCH_queue.json` payload, byte-identical across
    /// thread counts by construction. The label is escaped.
    pub fn to_json(&self, label: &str) -> String {
        let label = label.replace('\\', "\\\\").replace('"', "\\\"");
        format!(
            "{{\n  \"bench\": \"queue_sim\",\n  \"workload\": \"{label}\",\n  \"requests\": {},\n  \"engines\": {},\n  \"policy\": \"{}\",\n  \"offered_load\": {:.3},\n  \"makespan_cycles\": {},\n  \"p50_wait_cycles\": {},\n  \"p95_wait_cycles\": {},\n  \"p99_wait_cycles\": {},\n  \"max_wait_cycles\": {},\n  \"mean_wait_cycles\": {:.3},\n  \"p50_e2e_cycles\": {},\n  \"p95_e2e_cycles\": {},\n  \"p99_e2e_cycles\": {},\n  \"max_e2e_cycles\": {},\n  \"mean_e2e_cycles\": {:.3},\n  \"throughput_rps\": {:.3},\n  \"utilization\": {:.6},\n  \"warm_lines\": {},\n  \"warm_hits\": {},\n  \"warm_hit_rate\": {:.6}\n}}\n",
            self.requests,
            self.engines,
            self.policy,
            self.offered_load,
            self.makespan_cycles,
            self.p50_wait_cycles,
            self.p95_wait_cycles,
            self.p99_wait_cycles,
            self.max_wait_cycles,
            self.mean_wait_cycles,
            self.p50_e2e_cycles,
            self.p95_e2e_cycles,
            self.p99_e2e_cycles,
            self.max_e2e_cycles,
            self.mean_e2e_cycles,
            self.throughput_rps,
            self.utilization,
            self.warm_lines,
            self.warm_hits,
            self.warm_hit_rate,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::{ServingConfig, ServingContext};
    use sgcn_graph::datasets::{DatasetId, SynthScale};
    use sgcn_graph::sampling::Fanouts;

    fn tiny_ctx() -> ServingContext {
        ServingContext::new(ServingConfig {
            dataset: DatasetId::Cora,
            scale: SynthScale::tiny(),
            fanouts: Fanouts::new(vec![6, 3]),
            width: 64,
            seed: 7,
        })
    }

    fn qcfg(engines: usize, policy: SchedPolicy) -> QueueConfig {
        QueueConfig::new(engines, policy, 0.8, 7)
    }

    #[test]
    fn arrival_gaps_are_index_pure_and_timeline_monotone() {
        let p = ArrivalProcess::new(42, 1000.0);
        // gap(i) does not depend on which gaps were drawn before it.
        let direct: Vec<u64> = (0..32).map(|i| p.gap_cycles(i)).collect();
        let reversed: Vec<u64> = (0..32).rev().map(|i| p.gap_cycles(i)).collect();
        assert_eq!(
            direct,
            reversed.into_iter().rev().collect::<Vec<_>>(),
            "gap must be a pure function of (seed, index)"
        );
        let t = p.timeline(32);
        assert!(t.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        assert_eq!(p.timeline(32), t, "replay identical");
        // Different seeds draw different timelines.
        assert_ne!(ArrivalProcess::new(43, 1000.0).timeline(32), t);
        // The empirical mean is in the right ballpark (exponential with
        // mean 1000 over 32 samples: loose 3σ-ish band).
        let mean = t.last().copied().unwrap() as f64 / 32.0;
        assert!((200.0..5000.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn zero_mean_gap_collapses_to_batch_arrivals() {
        let p = ArrivalProcess::new(1, 0.0);
        assert_eq!(p.timeline(8), vec![0; 8]);
    }

    #[test]
    fn policy_labels_and_parse_round_trip() {
        for p in SchedPolicy::ALL {
            assert_eq!(SchedPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(
            SchedPolicy::parse("FIFO"),
            Some(SchedPolicy::FifoRoundRobin)
        );
        assert_eq!(SchedPolicy::parse("least"), Some(SchedPolicy::LeastLoaded));
        assert_eq!(SchedPolicy::parse("warm"), Some(SchedPolicy::CacheAffinity));
        assert_eq!(SchedPolicy::parse("bogus"), None);
    }

    #[test]
    #[should_panic(expected = "at least one engine")]
    fn zero_engines_panics() {
        let _ = QueueConfig::new(0, SchedPolicy::LeastLoaded, 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "offered load")]
    fn non_finite_load_panics() {
        let _ = QueueConfig::new(2, SchedPolicy::LeastLoaded, f64::INFINITY, 0);
    }

    #[test]
    fn empty_stream_yields_zero_summary_and_finite_json() {
        let ctx = tiny_ctx();
        let out = run_queue(
            &ctx,
            &[],
            &AccelModel::sgcn(),
            &HwConfig::default(),
            &qcfg(2, SchedPolicy::LeastLoaded),
        );
        assert!(out.records.is_empty());
        let s = &out.summary;
        assert_eq!(s.requests, 0);
        assert_eq!(s.makespan_cycles, 0);
        assert_eq!(s.throughput_rps, 0.0);
        assert_eq!(s.utilization, 0.0);
        assert_eq!(s.warm_hit_rate, 0.0);
        let json = s.to_json("empty");
        assert!(
            !json.contains("inf") && !json.contains("NaN") && !json.contains("nan"),
            "{json}"
        );
    }

    #[test]
    fn event_loop_invariants_hold() {
        let ctx = tiny_ctx();
        let stream = ctx.request_stream(24);
        let hw = HwConfig::default();
        for policy in SchedPolicy::ALL {
            let out = run_queue(&ctx, &stream, &AccelModel::sgcn(), &hw, &qcfg(3, policy));
            assert_eq!(out.records.len(), 24, "{policy:?}");
            assert_eq!(out.engine_served.iter().sum::<u64>(), 24);
            let s = &out.summary;
            for r in &out.records {
                assert!(r.start >= r.arrival, "{policy:?}");
                assert!(r.finish > r.start, "{policy:?}");
                assert!(r.engine < 3);
                assert!(r.finish <= s.makespan_cycles);
            }
            // Per-engine service intervals never overlap: busy time is the
            // sum of disjoint intervals, so it fits in the makespan.
            for e in 0..3 {
                assert!(out.engine_busy[e] <= s.makespan_cycles, "{policy:?}");
            }
            assert!(s.utilization > 0.0 && s.utilization <= 1.0, "{policy:?}");
            assert!(s.p50_wait_cycles <= s.p95_wait_cycles);
            assert!(s.p95_wait_cycles <= s.p99_wait_cycles);
            assert!(s.p99_wait_cycles <= s.max_wait_cycles);
            assert!(s.p50_e2e_cycles <= s.p99_e2e_cycles);
            assert!(s.max_e2e_cycles >= s.max_wait_cycles);
            assert!(s.warm_hits <= s.warm_lines);
            assert!(s.throughput_rps > 0.0);
        }
    }

    #[test]
    fn fifo_round_robin_rotates_engines() {
        let ctx = tiny_ctx();
        let stream = ctx.request_stream(12);
        let out = run_queue(
            &ctx,
            &stream,
            &AccelModel::sgcn(),
            &HwConfig::default(),
            &qcfg(4, SchedPolicy::FifoRoundRobin),
        );
        for r in &out.records {
            assert_eq!(r.engine, r.index % 4);
        }
    }

    #[test]
    fn least_loaded_never_queues_while_an_engine_idles() {
        let ctx = tiny_ctx();
        let stream = ctx.request_stream(20);
        let out = run_queue(
            &ctx,
            &stream,
            &AccelModel::sgcn(),
            &HwConfig::default(),
            &qcfg(2, SchedPolicy::LeastLoaded),
        );
        // Reconstruct: when a request waited, every engine must have been
        // busy at its arrival.
        let mut free_at = [0u64; 2];
        for r in &out.records {
            if r.start > r.arrival {
                assert!(
                    free_at.iter().all(|&f| f > r.arrival),
                    "request {} waited while an engine was free",
                    r.index
                );
            }
            free_at[r.engine] = r.finish;
        }
    }

    #[test]
    fn rerun_is_bit_identical() {
        let ctx = tiny_ctx();
        let stream = ctx.hotspot_stream(16, 3);
        let hw = HwConfig::default();
        let cfg = qcfg(2, SchedPolicy::CacheAffinity);
        let a = run_queue(&ctx, &stream, &AccelModel::sgcn(), &hw, &cfg);
        let b = run_queue(&ctx, &stream, &AccelModel::sgcn(), &hw, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.summary.to_json("q"), b.summary.to_json("q"));
    }

    #[test]
    fn affinity_beats_fifo_on_shared_neighborhood_stream() {
        let ctx = tiny_ctx();
        // A hot pool much smaller than the stream: heavy neighborhood
        // sharing, the regime affinity routing exists for.
        let stream = ctx.hotspot_stream(32, 3);
        let hw = HwConfig::default();
        let model = AccelModel::sgcn();
        let prepared = prepare(&ctx, &stream, &model, &hw);
        let row = feature_row_bytes(&ctx);
        let fifo = simulate_queue(&prepared, &qcfg(4, SchedPolicy::FifoRoundRobin), &hw, row);
        let aff = simulate_queue(&prepared, &qcfg(4, SchedPolicy::CacheAffinity), &hw, row);
        assert!(
            aff.summary.warm_hits >= fifo.summary.warm_hits,
            "affinity {} < fifo {}",
            aff.summary.warm_hits,
            fifo.summary.warm_hits
        );
        // And strictly more on this stream: 3 hot seeds over 4 engines
        // round-robin tear the reuse apart, affinity keeps it together.
        assert!(
            aff.summary.warm_hit_rate > fifo.summary.warm_hit_rate,
            "affinity {} !> fifo {}",
            aff.summary.warm_hit_rate,
            fifo.summary.warm_hit_rate
        );
        // Warm reuse shaves service time: total busy under affinity is no
        // worse than FIFO's.
        assert!(aff.engine_busy.iter().sum::<u64>() <= fifo.engine_busy.iter().sum::<u64>());
    }

    #[test]
    fn identical_requests_hit_warm_on_the_same_engine() {
        let ctx = tiny_ctx();
        // One hot seed: every request samples the identical neighborhood.
        // Light offered load, so the warm engine's backlog always drains
        // below the affinity slack and the policy never has to divert for
        // balance (the bounded-load fallback under pressure is exercised
        // by the policy-sweep grids).
        let stream = ctx.hotspot_stream(6, 1);
        let out = run_queue(
            &ctx,
            &stream,
            &AccelModel::sgcn(),
            &HwConfig::default(),
            &QueueConfig::new(2, SchedPolicy::CacheAffinity, 0.3, 7),
        );
        // The identical working set fits the 512 KB warm cache at tiny
        // scale, so an engine is cold exactly once: its first visit.
        // (An arrival burst may still divert past the affinity slack —
        // that diverted request is the new engine's cold first visit.)
        let mut visited = [false; 2];
        for r in &out.records {
            if visited[r.engine] {
                assert_eq!(r.warm.misses, 0, "request {} re-missed", r.index);
            } else {
                assert_eq!(r.warm.hits, 0, "request {} warm on a cold engine", r.index);
                visited[r.engine] = true;
            }
        }
        // Affinity keeps the hot seed home for the clear majority.
        let home = out.records[0].engine;
        let at_home = out.records.iter().filter(|r| r.engine == home).count();
        assert!(at_home * 2 > out.records.len(), "{at_home}/6 stayed home");
        let s = &out.summary;
        assert!(s.warm_hit_rate > 0.5, "rate {}", s.warm_hit_rate);
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let ctx = tiny_ctx();
        let stream = ctx.request_stream(5);
        let out = run_queue(
            &ctx,
            &stream,
            &AccelModel::sgcn(),
            &HwConfig::default(),
            &qcfg(2, SchedPolicy::LeastLoaded),
        );
        let j = out.summary.to_json("q \"hot\"");
        assert_eq!(j, out.summary.to_json("q \"hot\""));
        assert!(j.contains(r#""workload": "q \"hot\"""#), "{j}");
        assert!(j.contains("\"policy\": \"least-loaded\""), "{j}");
        assert!(!j.contains("inf") && !j.contains("NaN"), "{j}");
    }
}
