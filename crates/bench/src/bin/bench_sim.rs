//! The simulator-throughput harness behind `BENCH_sim.json`.
//!
//! Times the full quick-mode experiment suite on both paths:
//!
//! 1. **naive** — `SGCN_NAIVE=1`: serial drivers, recency-list cache,
//!    allocating per-span reads (the original seed path), and
//! 2. **fast** — the default: parallel drivers, flat-array cache, batched
//!    line-run replay (compacted traces, probe runs, burst runs),
//!
//! asserts the rendered suites are byte-identical (the fast path must be
//! invisible in the results), and emits `BENCH_sim.json` so later PRs
//! have a trajectory to beat. Each path runs `SGCN_BENCH_REPS` times
//! (default 2) and reports the fastest repetition — the standard guard
//! against OS scheduling noise on shared boxes. Wall time is split into
//! `simulate` (inside the dataflow simulator, via
//! `sgcn::metrics::timing`) and `prepare` (everything else: synthesis,
//! traces, encodes, rendering) so perf work knows where time went.
//! Override the output path with `SGCN_BENCH_OUT`.

use sgcn::experiments::ExperimentConfig;
use sgcn::metrics::timing;
use sgcn_bench::{banner, run_suite, selected_datasets};

/// One path's timings: total wall seconds and the simulate/prepare split.
struct PathTiming {
    total: f64,
    simulate: f64,
    output: String,
}

fn reps() -> usize {
    std::env::var("SGCN_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2)
}

/// Runs the suite `reps` times, keeping the fastest repetition (outputs
/// are asserted identical across repetitions — the suite is
/// deterministic).
fn timed(label: &str, reps: usize, run: impl Fn() -> String) -> PathTiming {
    let mut best: Option<PathTiming> = None;
    for _ in 0..reps {
        // Each repetition measures a cold-cache suite.
        sgcn::experiments::reset_driver_caches();
        let sim0 = timing::simulate_nanos();
        let t0 = std::time::Instant::now();
        let output = run();
        let total = t0.elapsed().as_secs_f64();
        // `timing` sums each simulation's elapsed time across threads,
        // so on a multi-core run the sum can exceed the wall clock; cap
        // it so the prepare-by-subtraction split stays non-negative
        // (with one worker the cap never binds and the split is exact).
        let simulate = ((timing::simulate_nanos() - sim0) as f64 / 1e9).min(total);
        if let Some(b) = &best {
            assert_eq!(b.output, output, "suite must be deterministic across reps");
        }
        if best.as_ref().is_none_or(|b| total < b.total) {
            best = Some(PathTiming {
                total,
                simulate,
                output,
            });
        }
    }
    let best = best.expect("at least one rep");
    println!(
        "{label}: {:.2}s (simulate {:.2}s + prepare {:.2}s; best of {reps})",
        best.total,
        best.simulate,
        best.total - best.simulate
    );
    best
}

fn main() {
    // The harness always measures the quick configuration: it is the
    // regression yardstick, not a paper run.
    std::env::set_var("SGCN_QUICK", "1");
    banner("BENCH_sim harness (quick suite, naive vs fast)");
    let cfg = ExperimentConfig::quick();
    let datasets = selected_datasets();
    let reps = reps();

    std::env::set_var("SGCN_NAIVE", "1");
    let naive = timed("naive (serial, list cache, per-span allocs)", reps, || {
        run_suite(&cfg, &datasets, true)
    });
    std::env::remove_var("SGCN_NAIVE");
    let fast = timed(
        "fast  (parallel, flat cache, line-run replay)",
        reps,
        || run_suite(&cfg, &datasets, true),
    );

    assert_eq!(
        naive.output, fast.output,
        "fast path changed the rendered experiment suite"
    );
    let speedup = naive.total / fast.total;
    println!("speedup: {speedup:.2}x (outputs byte-identical)");
    if sgcn_par::threads() == 1 {
        println!(
            "note: single CPU visible — the parallel drivers ran serially; \
             the measured ratio is the pure single-core fast-path gain"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"all_experiments\",\n  \"mode\": \"quick\",\n  \"threads\": {},\n  \"reps\": {reps},\n  \"naive_seconds\": {:.3},\n  \"naive_prepare_seconds\": {:.3},\n  \"naive_simulate_seconds\": {:.3},\n  \"fast_seconds\": {:.3},\n  \"fast_prepare_seconds\": {:.3},\n  \"fast_simulate_seconds\": {:.3},\n  \"speedup\": {speedup:.3},\n  \"outputs_identical\": true\n}}\n",
        sgcn_par::threads(),
        naive.total,
        naive.total - naive.simulate,
        naive.simulate,
        fast.total,
        fast.total - fast.simulate,
        fast.simulate,
    );
    let path = std::env::var("SGCN_BENCH_OUT").unwrap_or_else(|_| "BENCH_sim.json".into());
    std::fs::write(&path, &json).expect("write BENCH_sim.json");
    println!("wrote {path}");
}
