//! Criterion microbenches for the feature formats: encode, decode, and
//! span-generation throughput at the paper's operating point (width 256,
//! ~50% sparsity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sgcn_formats::{
    Beicsr, BeicsrConfig, BlockedEllpack, BsrFeatures, ColRange, CooFeatures, CsrFeatures,
    DenseMatrix, FeatureFormat,
};
use sgcn_model::features::synthesize_features;

fn matrix(rows: usize, sparsity: f64) -> DenseMatrix {
    synthesize_features(rows, 256, sparsity, 42)
}

fn bench_encode(c: &mut Criterion) {
    let m = matrix(512, 0.55);
    let elems = (512 * 256) as u64;
    let mut g = c.benchmark_group("encode");
    g.throughput(Throughput::Elements(elems));
    g.bench_function("beicsr_sliced", |b| {
        b.iter(|| Beicsr::encode(&m, BeicsrConfig::default()))
    });
    g.bench_function("beicsr_non_sliced", |b| {
        b.iter(|| Beicsr::encode(&m, BeicsrConfig::non_sliced()))
    });
    g.bench_function("csr", |b| b.iter(|| CsrFeatures::encode(&m)));
    g.bench_function("coo", |b| b.iter(|| CooFeatures::encode(&m)));
    g.bench_function("bsr", |b| b.iter(|| BsrFeatures::encode(&m)));
    g.bench_function("blocked_ellpack", |b| b.iter(|| BlockedEllpack::encode(&m)));
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let m = matrix(512, 0.55);
    let beicsr = Beicsr::encode(&m, BeicsrConfig::default());
    let csr = CsrFeatures::encode(&m);
    let mut g = c.benchmark_group("decode_row");
    g.bench_function("beicsr", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for r in 0..512 {
                acc += beicsr.decode_row(r)[0];
            }
            acc
        })
    });
    g.bench_function("csr", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for r in 0..512 {
                acc += csr.decode_row(r)[0];
            }
            acc
        })
    });
    g.finish();
}

fn bench_spans(c: &mut Criterion) {
    let m = matrix(512, 0.55);
    let beicsr = Beicsr::encode(&m, BeicsrConfig::default());
    let mut g = c.benchmark_group("slice_spans");
    for sparsity in [30u32, 50, 70] {
        let ms = matrix(512, sparsity as f64 / 100.0);
        let bs = Beicsr::encode(&ms, BeicsrConfig::default());
        g.bench_with_input(BenchmarkId::new("beicsr", sparsity), &bs, |b, bs| {
            b.iter(|| {
                let mut total = 0u64;
                for r in 0..512 {
                    for s in bs.slice_spans(r, ColRange::new(96, 192)) {
                        total += u64::from(s.bytes);
                    }
                }
                total
            })
        });
    }
    g.bench_function("beicsr_row_read_bytes", |b| {
        b.iter(|| (0..512).map(|r| beicsr.row_read_bytes(r)).sum::<u64>())
    });
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_spans);
criterion_main!(benches);
