//! Cross-crate end-to-end invariants: workload construction → all six
//! accelerator models → reports.

use sgcn::accel::AccelModel;
use sgcn::config::HwConfig;
use sgcn::metrics::GeoMean;
use sgcn::workload::Workload;
use sgcn_graph::datasets::{DatasetId, SynthScale};
use sgcn_mem::Traffic;
use sgcn_model::NetworkConfig;

fn workload(id: DatasetId) -> Workload {
    Workload::build(
        id,
        SynthScale::tiny(),
        NetworkConfig::deep_residual(5, 128),
        3,
    )
}

fn hw() -> HwConfig {
    HwConfig::default().with_cache_kib(16)
}

#[test]
fn sgcn_wins_on_every_tiny_dataset() {
    let mut geo = GeoMean::new();
    for id in [DatasetId::Cora, DatasetId::PubMed, DatasetId::Dblp] {
        let wl = workload(id);
        let base = AccelModel::gcnax().simulate(&wl, &hw());
        let sgcn = AccelModel::sgcn().simulate(&wl, &hw());
        let s = sgcn.speedup_over(&base);
        assert!(s > 1.0, "{}: speedup {s}", id.abbrev());
        assert!(sgcn.dram_bytes() < base.dram_bytes(), "{}", id.abbrev());
        assert!(
            sgcn.energy.total_pj() < base.energy.total_pj(),
            "{}",
            id.abbrev()
        );
        geo.push(s);
    }
    assert!(geo.value() > 1.15, "geomean {}", geo.value());
}

#[test]
fn all_accelerators_produce_sane_reports() {
    let wl = workload(DatasetId::CiteSeer);
    for m in AccelModel::fig11_lineup() {
        let r = m.simulate(&wl, &hw());
        assert!(r.cycles > 0, "{}", r.accelerator);
        assert!(r.macs > 0, "{}", r.accelerator);
        assert!(r.dram_bytes() > 0, "{}", r.accelerator);
        assert!(r.tdp_watts > 2.0 && r.tdp_watts < 12.0, "{}", r.accelerator);
        // Cycles can never be below the pure DRAM service time of the
        // layer-wise maxima... but must at least cover the largest
        // component divided by overlap; sanity: cycles >= mem/2.
        assert!(r.cycles * 2 >= r.mem_cycles, "{}", r.accelerator);
        // Every accelerator moves some topology and feature traffic.
        assert!(r.dram_bytes_for(Traffic::Topology) > 0, "{}", r.accelerator);
        assert!(
            r.dram_bytes_for(Traffic::FeatureRead) > 0,
            "{}",
            r.accelerator
        );
    }
}

#[test]
fn only_awb_spills_partials() {
    let wl = workload(DatasetId::Cora);
    for m in AccelModel::fig11_lineup() {
        let r = m.simulate(&wl, &hw());
        if m.column_product {
            // Partial traffic exists (possibly small if the psum banks
            // capture everything — force a tiny cache to be sure).
            let tight = AccelModel::awb_gcn().simulate(&wl, &HwConfig::default().with_cache_kib(8));
            assert!(tight.dram_bytes_for(Traffic::PartialSum) > 0);
        } else {
            assert_eq!(
                r.dram_bytes_for(Traffic::PartialSum),
                0,
                "{}",
                r.accelerator
            );
        }
    }
}

#[test]
fn compressed_writes_shrink_feature_output() {
    let wl = workload(DatasetId::PubMed);
    let base = AccelModel::gcnax().simulate(&wl, &hw());
    let sgcn = AccelModel::sgcn().simulate(&wl, &hw());
    let b = base.dram_bytes_for(Traffic::FeatureWrite);
    let s = sgcn.dram_bytes_for(Traffic::FeatureWrite);
    // ~70% sparse features → compressed writes well under dense.
    assert!(s * 2 < b * 2 && s < b * 7 / 10, "sgcn {s} vs dense {b}");
}

#[test]
fn deeper_networks_cost_proportionally_more() {
    let shallow = Workload::build(
        DatasetId::Cora,
        SynthScale::tiny(),
        NetworkConfig::deep_residual(4, 64),
        3,
    );
    let deep = Workload::build(
        DatasetId::Cora,
        SynthScale::tiny(),
        NetworkConfig::deep_residual(16, 64),
        3,
    );
    let r4 = AccelModel::sgcn().simulate(&shallow, &hw());
    let r16 = AccelModel::sgcn().simulate(&deep, &hw());
    let ratio = r16.cycles as f64 / r4.cycles as f64;
    assert!(
        (2.5..6.5).contains(&ratio),
        "16 vs 4 layers should scale ~4x, got {ratio}"
    );
}

#[test]
fn larger_cache_never_slows_a_tiled_accelerator() {
    let wl = workload(DatasetId::Dblp);
    let small = AccelModel::gcnax().simulate(&wl, &HwConfig::default().with_cache_kib(8));
    let large = AccelModel::gcnax().simulate(&wl, &HwConfig::default().with_cache_kib(256));
    assert!(large.cycles <= small.cycles);
    assert!(large.dram_bytes() <= small.dram_bytes());
}

#[test]
fn hbm1_is_never_faster_than_hbm2() {
    use sgcn_mem::HbmGeneration;
    let wl = workload(DatasetId::Reddit);
    let h2 = AccelModel::sgcn().simulate(&wl, &hw().with_hbm(HbmGeneration::Hbm2));
    let h1 = AccelModel::sgcn().simulate(&wl, &hw().with_hbm(HbmGeneration::Hbm1));
    assert!(h1.cycles >= h2.cycles);
}

#[test]
fn more_engines_do_not_slow_down() {
    let wl = workload(DatasetId::Reddit);
    let e1 = AccelModel::sgcn().simulate(&wl, &hw().with_engines(1));
    let e8 = AccelModel::sgcn().simulate(&wl, &hw().with_engines(8));
    assert!(e8.cycles <= e1.cycles);
    // And with 8 engines at least some speedup materializes.
    assert!(e1.cycles as f64 / e8.cycles as f64 > 1.3);
}
