//! GCN model substrate for the SGCN reproduction.
//!
//! Provides the deep residual GCNs whose intermediate-feature sparsity the
//! accelerator exploits (paper §II, §III-A):
//!
//! * [`NetworkConfig`] / [`GcnNetwork`] — deep (tens to hundreds of layers)
//!   uniform-width networks with residual connections, in the three
//!   aggregation variants the paper evaluates (vanilla GCN, GINConv,
//!   GraphSAGE — Fig. 16),
//! * [`ReferenceExecutor`] — a CPU `f32` executor producing every
//!   intermediate feature matrix, used both as the functional ground truth
//!   for the engine models and as the workload generator for the
//!   simulator,
//! * [`sparsity`] — target-calibrated activation thresholds. We do not
//!   train networks; instead the executor reproduces the paper's measured
//!   sparsity trajectories (Table II / Fig. 2) by calibrating each layer's
//!   activation threshold to the target sparsity — see DESIGN.md
//!   ("Substitutions").
//!
//! # Example
//!
//! ```
//! use sgcn_graph::{generate, Normalization};
//! use sgcn_model::{GcnVariant, ModelTrace, NetworkConfig, ReferenceExecutor};
//!
//! let graph = generate::erdos_renyi(64, 4.0, 1, Normalization::Symmetric);
//! let config = NetworkConfig::deep_residual(8, 32);
//! let exec = ReferenceExecutor::new(&graph, config, 42);
//! let input = sgcn_model::features::generate_input_features(64, 16, 0.9, 7);
//! let targets = vec![0.55; 8];
//! let trace: ModelTrace = exec.infer(&input, &targets);
//! assert_eq!(trace.layer_features(8).rows(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod features;
pub mod layer;
pub mod network;
pub mod reference;
pub mod sparsity;
pub mod weights;

pub use network::{GcnNetwork, GcnVariant, NetworkConfig};
pub use reference::{ModelTrace, ReferenceExecutor};
