//! The simulator-throughput harness behind `BENCH_sim.json`.
//!
//! Times the full quick-mode experiment suite twice:
//!
//! 1. **naive** — `SGCN_NAIVE=1`: serial drivers, recency-list cache,
//!    allocating per-span reads (the original seed path), and
//! 2. **fast** — the default: parallel drivers, flat-array cache, batched
//!    allocation-free span reads,
//!
//! asserts the rendered suites are byte-identical (the fast path must be
//! invisible in the results), and emits `BENCH_sim.json` so later PRs
//! have a trajectory to beat. Override the output path with
//! `SGCN_BENCH_OUT`.

use sgcn::experiments::ExperimentConfig;
use sgcn_bench::{banner, run_suite, selected_datasets};

fn timed(label: &str, run: impl FnOnce() -> String) -> (f64, String) {
    let t0 = std::time::Instant::now();
    let out = run();
    let secs = t0.elapsed().as_secs_f64();
    println!("{label}: {secs:.2}s");
    (secs, out)
}

fn main() {
    // The harness always measures the quick configuration: it is the
    // regression yardstick, not a paper run.
    std::env::set_var("SGCN_QUICK", "1");
    banner("BENCH_sim harness (quick suite, naive vs fast)");
    let cfg = ExperimentConfig::quick();
    let datasets = selected_datasets();

    std::env::set_var("SGCN_NAIVE", "1");
    let (naive_s, naive_out) = timed("naive (serial, list cache, per-span allocs)", || {
        run_suite(&cfg, &datasets, true)
    });
    std::env::remove_var("SGCN_NAIVE");
    let (fast_s, fast_out) = timed("fast  (parallel, flat cache, batched spans)", || {
        run_suite(&cfg, &datasets, true)
    });

    assert_eq!(
        naive_out, fast_out,
        "fast path changed the rendered experiment suite"
    );
    let speedup = naive_s / fast_s;
    println!("speedup: {speedup:.2}x (outputs byte-identical)");
    if sgcn_par::threads() == 1 {
        println!(
            "note: single CPU visible — the parallel drivers ran serially; \
             the measured ratio is the pure single-core fast-path gain"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"all_experiments\",\n  \"mode\": \"quick\",\n  \"threads\": {},\n  \"naive_seconds\": {naive_s:.3},\n  \"fast_seconds\": {fast_s:.3},\n  \"speedup\": {speedup:.3},\n  \"outputs_identical\": true\n}}\n",
        sgcn_par::threads(),
    );
    let path = std::env::var("SGCN_BENCH_OUT").unwrap_or_else(|_| "BENCH_sim.json".into());
    std::fs::write(&path, &json).expect("write BENCH_sim.json");
    println!("wrote {path}");
}
