//! GraphSAGE-style neighbor sampling for request-level serving.
//!
//! Production GCN serving does not run the whole graph per query: a
//! request names a seed vertex, the sampler draws a bounded multi-hop
//! neighborhood around it (at most `fanouts[h]` in-neighbors per vertex
//! discovered at hop `h`), and inference runs on that subgraph alone.
//! [`sample_neighborhood`] implements the sampler and
//! [`SampledSubgraph`] packages the result as a self-contained
//! [`CsrGraph`] over compact local vertex ids, ready for the simulator.
//!
//! Determinism contract: the sample is a pure function of
//! `(graph, seed_vertex, fanouts, seed)` — the per-request RNG stream is
//! derived from the seed vertex and the sampling seed only, never from
//! batch position or thread schedule, so replaying a request stream is
//! bit-identical at any driver thread count.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::CsrGraph;

/// Per-hop neighbor caps for the sampler (GraphSAGE's "fanout").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fanouts(Vec<usize>);

impl Fanouts {
    /// Creates a fanout schedule: `caps[h]` bounds the in-neighbors
    /// sampled per vertex discovered at hop `h`.
    ///
    /// # Panics
    ///
    /// Panics if `caps` is empty or contains a zero (a zero fanout would
    /// sample nothing and silently truncate the neighborhood).
    pub fn new(caps: Vec<usize>) -> Self {
        assert!(
            !caps.is_empty(),
            "fanout schedule must have at least one hop"
        );
        assert!(caps.iter().all(|&c| c > 0), "fanouts must be non-zero");
        Fanouts(caps)
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.0.len()
    }

    /// The per-hop caps.
    pub fn caps(&self) -> &[usize] {
        &self.0
    }

    /// The largest per-hop cap — a bound on any subgraph row degree.
    pub fn max_cap(&self) -> usize {
        *self.0.iter().max().expect("non-empty")
    }

    /// Compact label for reports, e.g. `10x5`.
    pub fn label(&self) -> String {
        self.0
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("x")
    }
}

/// A sampled neighborhood extracted as a self-contained graph.
///
/// Local vertex ids are `0..num_vertices()`, assigned in ascending order
/// of the original ids ([`Self::vertices`] maps local → original).
/// Edge weights are carried over from the parent graph, so aggregation
/// over the subgraph matches what the full graph would compute on the
/// sampled edge set.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledSubgraph {
    /// The subgraph topology over local ids.
    pub graph: CsrGraph,
    /// Local id → original vertex id, sorted ascending.
    pub vertices: Vec<u32>,
    /// Local id of the request's seed vertex.
    pub seed_local: usize,
}

impl SampledSubgraph {
    /// Vertices in the subgraph.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Sampled edges in the subgraph.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Original id of local vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn original_id(&self, v: usize) -> u32 {
        self.vertices[v]
    }
}

/// RNG seed for one request: a splitmix64-style mix of the sampling seed
/// and the seed vertex, so distinct requests get decorrelated streams
/// while identical requests replay identically.
fn request_rng(seed: u64, seed_vertex: u32) -> SmallRng {
    let mut z = seed ^ (u64::from(seed_vertex)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    SmallRng::seed_from_u64(z ^ (z >> 31))
}

/// Draws at most `cap` distinct positions from `0..len` (all of them
/// when `len <= cap`) via a partial Fisher–Yates shuffle, returned
/// sorted ascending.
fn sample_positions(rng: &mut SmallRng, len: usize, cap: usize) -> Vec<usize> {
    if len <= cap {
        return (0..len).collect();
    }
    let mut idx: Vec<usize> = (0..len).collect();
    for i in 0..cap {
        let j = rng.gen_range(i..len);
        idx.swap(i, j);
    }
    idx.truncate(cap);
    idx.sort_unstable();
    idx
}

/// Samples the multi-hop neighborhood of `seed_vertex`.
///
/// Hop `h` expands every vertex first discovered at hop `h`, keeping at
/// most `fanouts.caps()[h]` of its in-neighbors (all of them when the
/// degree fits the cap). Sampled edges `(dst, src)` are collected into a
/// CSR over the discovered vertex set; vertices discovered at the last
/// hop are not expanded, so their rows are empty — exactly the frontier
/// whose features arrive precomputed in GraphSAGE serving.
///
/// # Panics
///
/// Panics if `seed_vertex` is out of range.
pub fn sample_neighborhood(
    graph: &CsrGraph,
    seed_vertex: u32,
    fanouts: &Fanouts,
    seed: u64,
) -> SampledSubgraph {
    assert!(
        (seed_vertex as usize) < graph.num_vertices(),
        "seed vertex {seed_vertex} out of range {}",
        graph.num_vertices()
    );
    let mut rng = request_rng(seed, seed_vertex);

    // Frontier expansion. `discovered` is kept sorted for the final
    // local-id assignment; membership checks use binary search (the
    // neighborhoods are tiny — at most prod(fanouts) vertices).
    let mut discovered: Vec<u32> = vec![seed_vertex];
    let mut frontier: Vec<u32> = vec![seed_vertex];
    // Sampled (dst, src-position-in-row) pairs, original ids.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for &cap in fanouts.caps() {
        let mut next: Vec<u32> = Vec::new();
        for &dst in &frontier {
            let neigh = graph.neighbors(dst as usize);
            for pos in sample_positions(&mut rng, neigh.len(), cap) {
                let src = neigh[pos];
                edges.push((dst, src));
                if let Err(at) = discovered.binary_search(&src) {
                    discovered.insert(at, src);
                    next.push(src);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }

    // Compact relabeling: local ids follow ascending original ids.
    let local = |orig: u32| -> usize {
        discovered
            .binary_search(&orig)
            .expect("sampled vertex must be discovered")
    };
    let n = discovered.len();
    let mut rows: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n];
    for &(dst, src) in &edges {
        // Weight lookup in the parent row (neighbor lists are sorted).
        let at = graph
            .neighbors(dst as usize)
            .binary_search(&src)
            .expect("sampled edge must exist in parent graph");
        let w = graph.edge_weights(dst as usize)[at];
        rows[local(dst)].push((src, w));
    }

    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::with_capacity(edges.len());
    let mut weights = Vec::with_capacity(edges.len());
    row_ptr.push(0);
    for row in &mut rows {
        // Sort by original source id (== local order) and drop duplicate
        // sources: a (dst, src) pair is sampled at most once per hop, and
        // dst is expanded at exactly one hop, but dedup keeps the CSR
        // invariant robust rather than implied.
        row.sort_unstable_by_key(|&(src, _)| src);
        row.dedup_by_key(|&mut (src, _)| src);
        for &(src, w) in row.iter() {
            col_idx.push(local(src) as u32);
            weights.push(w);
        }
        row_ptr.push(col_idx.len());
    }

    let seed_local = local(seed_vertex);
    SampledSubgraph {
        graph: CsrGraph::from_parts(row_ptr, col_idx, weights),
        vertices: discovered,
        seed_local,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Normalization;
    use crate::generate;

    fn graph() -> CsrGraph {
        generate::erdos_renyi(200, 8.0, 7, Normalization::Symmetric)
    }

    #[test]
    fn deterministic_per_seed() {
        let g = graph();
        let f = Fanouts::new(vec![6, 3]);
        let a = sample_neighborhood(&g, 17, &f, 99);
        let b = sample_neighborhood(&g, 17, &f, 99);
        assert_eq!(a, b);
        let c = sample_neighborhood(&g, 17, &f, 100);
        // A different sampling seed draws a different neighborhood (the
        // seed vertex has degree > fanout with overwhelming probability).
        assert!(a != c || g.degree(17) <= 6, "seed should matter");
    }

    #[test]
    fn subgraph_is_valid_csr_over_local_ids() {
        let g = graph();
        let f = Fanouts::new(vec![5, 4]);
        let sub = sample_neighborhood(&g, 3, &f, 1);
        let n = sub.num_vertices();
        assert_eq!(sub.graph.num_vertices(), n);
        for v in 0..n {
            let neigh = sub.graph.neighbors(v);
            assert!(neigh.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
            assert!(neigh.iter().all(|&u| (u as usize) < n), "in bounds");
        }
    }

    #[test]
    fn fanout_caps_row_degrees() {
        let g = graph();
        let f = Fanouts::new(vec![4, 2]);
        let sub = sample_neighborhood(&g, 42, &f, 5);
        for v in 0..sub.num_vertices() {
            assert!(sub.graph.degree(v) <= f.max_cap(), "vertex {v}");
        }
        // The seed expands at hop 0 under its own cap.
        assert!(sub.graph.degree(sub.seed_local) <= 4);
    }

    #[test]
    fn weights_match_parent_edges() {
        let g = graph();
        let f = Fanouts::new(vec![6, 6]);
        let sub = sample_neighborhood(&g, 9, &f, 3);
        for v in 0..sub.num_vertices() {
            let dst = sub.original_id(v);
            for (&src_local, &w) in sub.graph.neighbors(v).iter().zip(sub.graph.edge_weights(v)) {
                let src = sub.original_id(src_local as usize);
                let at = g
                    .neighbors(dst as usize)
                    .binary_search(&src)
                    .expect("edge exists in parent");
                assert_eq!(w, g.edge_weights(dst as usize)[at]);
            }
        }
    }

    #[test]
    fn small_degree_keeps_all_neighbors() {
        // A path graph: every vertex has degree ≤ 3 (self loop + 2), so a
        // large fanout keeps the full neighborhood.
        let mut b = crate::builder::GraphBuilder::new(10);
        for v in 0..9 {
            b = b.undirected_edge(v, v + 1);
        }
        let g = b.build(Normalization::Symmetric);
        let f = Fanouts::new(vec![8]);
        let sub = sample_neighborhood(&g, 4, &f, 0);
        assert_eq!(sub.graph.degree(sub.seed_local), g.degree(4));
    }

    #[test]
    fn last_hop_frontier_rows_are_empty() {
        let g = graph();
        let f = Fanouts::new(vec![3]);
        let sub = sample_neighborhood(&g, 11, &f, 2);
        // One hop: only the seed has sampled out-edges.
        for v in 0..sub.num_vertices() {
            if v != sub.seed_local {
                assert_eq!(sub.graph.degree(v), 0, "vertex {v}");
            }
        }
        assert!(sub.graph.degree(sub.seed_local) > 0);
    }

    #[test]
    fn vertices_are_sorted_and_contain_seed() {
        let g = graph();
        let f = Fanouts::new(vec![5, 5]);
        let sub = sample_neighborhood(&g, 77, &f, 8);
        assert!(sub.vertices.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(sub.vertices[sub.seed_local], 77);
    }

    #[test]
    fn fanouts_label_and_caps() {
        let f = Fanouts::new(vec![10, 5, 2]);
        assert_eq!(f.hops(), 3);
        assert_eq!(f.max_cap(), 10);
        assert_eq!(f.label(), "10x5x2");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_fanout_panics() {
        let _ = Fanouts::new(vec![4, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_seed_vertex_panics() {
        let g = graph();
        let _ = sample_neighborhood(&g, 10_000, &Fanouts::new(vec![2]), 0);
    }
}
