//! Line-granular trace compaction.
//!
//! The simulator's hot loop replays feature-access [`Span`]s through the
//! cache + HBM model one span at a time; most of those spans are adjacent
//! in a format's address space (consecutive BEICSR slots, a bitmap head
//! followed by its value window, dense row after dense row). This module
//! coalesces a span stream into maximal runs of **consecutive cache
//! lines** ([`LineRun`]) *before* it reaches the memory system, so the
//! memory system can charge a whole run with one set-index computation
//! and one batched DRAM walk (`MemorySystem::access_lines` in
//! `sgcn-mem`).
//!
//! # Exactness contract
//!
//! Compaction changes how counters are *computed*, never what they
//! *count*: replaying the compacted runs must leave every cache, DRAM and
//! traffic-class counter — and the cache/DRAM state itself — bit-identical
//! to replaying the original span sequence. Two merge rules keep that
//! true:
//!
//! * **Reads** ([`RunCompactor::reads`]) merge a span that begins on the
//!   previous span's last line (a *seam*: BEICSR's value window starting
//!   on the line its bitmap head ends on). The naive replay re-probes
//!   that line immediately after touching it, which is always a cache hit
//!   and never moves state (the line is already MRU of its set), so the
//!   merged run records it as a [`LineRun::seam_hits`] count that the
//!   memory system adds to the hit counters post-hoc.
//! * **Writes** ([`RunCompactor::writes`]) merge only strictly
//!   line-contiguous spans. Streaming writes send *every* line to DRAM,
//!   and the DRAM clocks accumulate `f64` service time per burst — a
//!   seam's duplicate burst must stay in sequence order for the float
//!   accumulation to round identically, so seams flush instead of merge
//!   (the duplicate line then replays at the head of the next run,
//!   exactly where the span path put it).
//!
//! Spans that overlap deeper than a seam, arrive out of order, or leave a
//! line-granular gap always flush; each such span becomes its own run and
//! replays exactly as the span path would.

use crate::layout::Span;

/// A maximal run of consecutive cache lines compacted from one or more
/// byte spans, plus the replay metadata the memory system needs to keep
/// its counters bit-identical to the original span sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LineRun {
    /// First line index (byte offset / line size) the run covers, in the
    /// same private address space as the spans it came from.
    pub first_line: u64,
    /// Number of **distinct** consecutive lines covered.
    pub lines: u64,
    /// Original spans merged into the run (each charged one request in
    /// the per-class traffic accounting).
    pub spans: u32,
    /// Seam re-probes: lines a merged span re-touched immediately after
    /// the previous span (guaranteed cache hits, no state change). Always
    /// zero for write runs.
    pub seam_hits: u32,
}

impl LineRun {
    /// A run covering `lines` consecutive lines from `first_line`, as a
    /// single original span — the common pre-aligned case (dense rows,
    /// warm-cache feature rows).
    pub fn contiguous(first_line: u64, lines: u64) -> Self {
        LineRun {
            first_line,
            lines,
            spans: 1,
            seam_hits: 0,
        }
    }

    /// Last line index covered (`lines` must be non-zero).
    pub fn last_line(&self) -> u64 {
        self.first_line + self.lines - 1
    }
}

/// Merge policy of a [`RunCompactor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Merge {
    /// Seam-merging (reads): a span starting on the current last line
    /// merges and counts a guaranteed-hit re-probe.
    Seams,
    /// Contiguous-only (writes): seams flush so every DRAM burst replays
    /// in original order.
    Contiguous,
}

/// Streaming span → [`LineRun`] compactor.
///
/// Push spans in the order the format emits them; compacted runs are
/// handed to the sink as soon as they are maximal. Call
/// [`RunCompactor::finish`] to flush the trailing run.
#[derive(Debug, Clone)]
pub struct RunCompactor {
    line_bytes: u64,
    /// Shift when `line_bytes` is a power of two (the universal case).
    shift: Option<u32>,
    merge: Merge,
    cur: Option<LineRun>,
}

impl RunCompactor {
    /// A compactor for read replays (seam-merging) over `line_bytes`
    /// cache lines.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero.
    pub fn reads(line_bytes: u64) -> Self {
        Self::new(line_bytes, Merge::Seams)
    }

    /// A compactor for streaming-write replays (contiguous-only merging)
    /// over `line_bytes` cache lines.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero.
    pub fn writes(line_bytes: u64) -> Self {
        Self::new(line_bytes, Merge::Contiguous)
    }

    fn new(line_bytes: u64, merge: Merge) -> Self {
        assert!(line_bytes > 0, "line size must be non-zero");
        RunCompactor {
            line_bytes,
            shift: line_bytes
                .is_power_of_two()
                .then(|| line_bytes.trailing_zeros()),
            merge,
            cur: None,
        }
    }

    #[inline]
    fn line_of(&self, byte: u64) -> u64 {
        match self.shift {
            Some(s) => byte >> s,
            None => byte / self.line_bytes,
        }
    }

    /// Feeds one span; emits any run the span cannot extend. Empty spans
    /// are dropped (the span path treats them as no-ops).
    #[inline]
    pub fn push(&mut self, span: Span, f: &mut dyn FnMut(LineRun)) {
        if span.is_empty() {
            return;
        }
        let first = self.line_of(span.offset);
        let last = self.line_of(span.end() - 1);
        let Some(cur) = &mut self.cur else {
            self.cur = Some(LineRun {
                first_line: first,
                lines: last - first + 1,
                spans: 1,
                seam_hits: 0,
            });
            return;
        };
        let cur_last = cur.last_line();
        if first == cur_last + 1 && cur.spans < u32::MAX {
            // Strictly contiguous: always merges.
            cur.lines += last - cur_last;
            cur.spans += 1;
        } else if first == cur_last
            && matches!(self.merge, Merge::Seams)
            && cur.spans < u32::MAX
            && cur.seam_hits < u32::MAX
        {
            // Seam: the span re-touches the line the run just ended on.
            cur.lines += last.saturating_sub(cur_last);
            cur.spans += 1;
            cur.seam_hits += 1;
        } else {
            // Gap, deep overlap, or out-of-order span: flush and restart.
            let done = *cur;
            *cur = LineRun {
                first_line: first,
                lines: last - first + 1,
                spans: 1,
                seam_hits: 0,
            };
            f(done);
        }
    }

    /// Flushes the trailing run, leaving the compactor reusable.
    #[inline]
    pub fn finish(&mut self, f: &mut dyn FnMut(LineRun)) {
        if let Some(run) = self.cur.take() {
            f(run);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compact(mode: fn(u64) -> RunCompactor, spans: &[Span]) -> Vec<LineRun> {
        let mut c = mode(64);
        let mut runs = Vec::new();
        for &s in spans {
            c.push(s, &mut |r| runs.push(r));
        }
        c.finish(&mut |r| runs.push(r));
        runs
    }

    #[test]
    fn single_span_single_run() {
        let runs = compact(RunCompactor::reads, &[Span::new(100, 200)]);
        assert_eq!(runs, vec![LineRun::contiguous(1, 4)]);
        assert_eq!(runs[0].spans, 1);
        assert_eq!(runs[0].last_line(), 4);
    }

    #[test]
    fn empty_spans_are_dropped() {
        assert!(compact(RunCompactor::reads, &[Span::new(10, 0)]).is_empty());
        let runs = compact(
            RunCompactor::reads,
            &[Span::new(0, 64), Span::new(30, 0), Span::new(64, 64)],
        );
        assert_eq!(
            runs,
            vec![LineRun {
                first_line: 0,
                lines: 2,
                spans: 2,
                seam_hits: 0
            }]
        );
    }

    #[test]
    fn contiguous_spans_merge() {
        // Lines 0..=1, then 2..=2: one run of 3 lines, 2 spans, no seams.
        let runs = compact(
            RunCompactor::reads,
            &[Span::new(0, 128), Span::new(128, 64)],
        );
        assert_eq!(
            runs,
            vec![LineRun {
                first_line: 0,
                lines: 3,
                spans: 2,
                seam_hits: 0
            }]
        );
    }

    #[test]
    fn seam_merges_for_reads() {
        // [0, 100) covers lines 0..=1; [100, 200) starts on line 1.
        let runs = compact(
            RunCompactor::reads,
            &[Span::new(0, 100), Span::new(100, 100)],
        );
        assert_eq!(
            runs,
            vec![LineRun {
                first_line: 0,
                lines: 4,
                spans: 2,
                seam_hits: 1
            }]
        );
    }

    #[test]
    fn seam_flushes_for_writes() {
        let runs = compact(
            RunCompactor::writes,
            &[Span::new(0, 100), Span::new(100, 100)],
        );
        assert_eq!(
            runs,
            vec![
                LineRun {
                    first_line: 0,
                    lines: 2,
                    spans: 1,
                    seam_hits: 0
                },
                LineRun {
                    first_line: 1,
                    lines: 3,
                    spans: 1,
                    seam_hits: 0
                },
            ]
        );
    }

    #[test]
    fn seam_span_within_last_line_adds_no_lines() {
        // Second span entirely inside line 1.
        let runs = compact(
            RunCompactor::reads,
            &[Span::new(0, 128), Span::new(100, 20)],
        );
        assert_eq!(
            runs,
            vec![LineRun {
                first_line: 0,
                lines: 2,
                spans: 2,
                seam_hits: 1
            }]
        );
    }

    #[test]
    fn gap_flushes() {
        let runs = compact(RunCompactor::reads, &[Span::new(0, 64), Span::new(192, 64)]);
        assert_eq!(
            runs,
            vec![LineRun::contiguous(0, 1), LineRun::contiguous(3, 1)]
        );
    }

    #[test]
    fn deep_overlap_and_out_of_order_flush() {
        // Second span reaches back past the seam line.
        let runs = compact(RunCompactor::reads, &[Span::new(0, 256), Span::new(64, 64)]);
        assert_eq!(
            runs,
            vec![LineRun::contiguous(0, 4), LineRun::contiguous(1, 1)]
        );
        // Fully out of order.
        let runs = compact(RunCompactor::reads, &[Span::new(256, 64), Span::new(0, 64)]);
        assert_eq!(
            runs,
            vec![LineRun::contiguous(4, 1), LineRun::contiguous(0, 1)]
        );
    }

    #[test]
    fn chained_seams_accumulate() {
        // Three spans, each starting on the previous span's last line.
        let runs = compact(
            RunCompactor::reads,
            &[Span::new(0, 100), Span::new(100, 100), Span::new(200, 60)],
        );
        assert_eq!(
            runs,
            vec![LineRun {
                first_line: 0,
                lines: 5,
                spans: 3,
                seam_hits: 2
            }]
        );
    }

    #[test]
    fn finish_is_reusable() {
        let mut c = RunCompactor::reads(64);
        let mut runs = Vec::new();
        c.push(Span::new(0, 64), &mut |r| runs.push(r));
        c.finish(&mut |r| runs.push(r));
        c.push(Span::new(640, 64), &mut |r| runs.push(r));
        c.finish(&mut |r| runs.push(r));
        assert_eq!(
            runs,
            vec![LineRun::contiguous(0, 1), LineRun::contiguous(10, 1)]
        );
        // A drained compactor flushes nothing.
        c.finish(&mut |_| panic!("nothing buffered"));
    }

    #[test]
    fn non_power_of_two_line_size() {
        let mut c = RunCompactor::reads(48);
        let mut runs = Vec::new();
        c.push(Span::new(0, 96), &mut |r| runs.push(r));
        c.push(Span::new(96, 10), &mut |r| runs.push(r));
        c.finish(&mut |r| runs.push(r));
        assert_eq!(
            runs,
            vec![LineRun {
                first_line: 0,
                lines: 3,
                spans: 2,
                seam_hits: 0
            }]
        );
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn zero_line_size_panics() {
        let _ = RunCompactor::reads(0);
    }
}
