//! Functional equivalence across crates: the hardware-unit models
//! (sparse aggregator, prefix sum, systolic GeMM, ReLU compressor) must
//! reproduce the reference GCN math exactly when composed into a full
//! layer over compressed features.

use sgcn_engines::{Compressor, SparseAggregator, SystolicArray};
use sgcn_formats::{Beicsr, BeicsrConfig, DenseMatrix, FeatureFormat};
use sgcn_graph::builder::Normalization;
use sgcn_graph::generate::{clustered, ClusterConfig};
use sgcn_graph::CsrGraph;
use sgcn_model::features::synthesize_features;
use sgcn_model::layer::{aggregate, combine};
use sgcn_model::weights::glorot;
use sgcn_model::GcnVariant;

fn test_graph(vertices: usize) -> CsrGraph {
    clustered(
        ClusterConfig {
            vertices,
            avg_degree: 6.0,
            ..ClusterConfig::default()
        },
        11,
        Normalization::Symmetric,
    )
}

/// Executes one full SGCN layer (sparse aggregation from BEICSR →
/// systolic combination with residual init → ReLU + in-place compression)
/// and compares against the dense reference path.
#[test]
fn sgcn_layer_pipeline_matches_dense_reference() {
    let n = 120;
    let width = 96;
    let graph = test_graph(n);
    let x_dense = synthesize_features(n, width, 0.5, 3);
    let weight = glorot(width, width, 5);
    let residual = synthesize_features(n, width, 0.3, 9);

    // Reference: dense aggregation, dense GeMM, residual add, plain ReLU.
    let h_ref = aggregate(&graph, &x_dense, GcnVariant::Gcn, 0);
    let s_ref = combine(&h_ref, &weight);
    let mut expect = DenseMatrix::zeros(n, width);
    for r in 0..n {
        for c in 0..width {
            expect.set(r, c, (s_ref.get(r, c) + residual.get(r, c)).max(0.0));
        }
    }

    // Hardware path: BEICSR input → sparse aggregator → systolic GeMM with
    // residual-initialized accumulators → compressor → BEICSR output.
    let x_comp = Beicsr::encode(&x_dense, BeicsrConfig::default());
    let agg = SparseAggregator::default();
    let mut h = DenseMatrix::zeros(n, width);
    for dst in 0..n {
        let mut acc = vec![0.0f32; width];
        for (&src, &w) in graph.neighbors(dst).iter().zip(graph.edge_weights(dst)) {
            agg.aggregate_row(&mut acc, &x_comp, src as usize, w);
        }
        h.row_slice_mut(dst).copy_from_slice(&acc);
    }
    let s = SystolicArray::gemm(
        h.as_slice(),
        weight.as_slice(),
        residual.as_slice(),
        n,
        width,
        width,
    );

    let compressor = Compressor::new();
    let mut out = Beicsr::with_shape(n, width, BeicsrConfig::default());
    for r in 0..n {
        compressor.relu_compress_row(&s[r * width..(r + 1) * width], &mut out, r);
    }

    // Decode and compare.
    for r in 0..n {
        let got = out.decode_row(r);
        let want = expect.row(r);
        for (c, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() < 2e-3 * (1.0 + w.abs()),
                "row {r} col {c}: {g} vs {w}"
            );
        }
    }
}

#[test]
fn compressed_output_feeds_next_layer() {
    // Two chained layers entirely through the compressed path must match
    // two reference layers.
    let n = 60;
    let width = 64;
    let graph = test_graph(n);
    let x0 = synthesize_features(n, width, 0.5, 1);
    let w0 = glorot(width, width, 2);
    let w1 = glorot(width, width, 3);

    let reference = |x: &DenseMatrix, w: &DenseMatrix| {
        let h = aggregate(&graph, x, GcnVariant::Gcn, 0);
        let s = combine(&h, w);
        let mut out = DenseMatrix::zeros(n, width);
        for r in 0..n {
            for c in 0..width {
                out.set(r, c, s.get(r, c).max(0.0));
            }
        }
        out
    };
    let expect = reference(&reference(&x0, &w0), &w1);

    let hardware_layer = |x: &Beicsr, w: &DenseMatrix| {
        let agg = SparseAggregator::default();
        let mut h = vec![0.0f32; n * width];
        for dst in 0..n {
            let mut acc = vec![0.0f32; width];
            for (&src, &ew) in graph.neighbors(dst).iter().zip(graph.edge_weights(dst)) {
                agg.aggregate_row(&mut acc, x, src as usize, ew);
            }
            h[dst * width..(dst + 1) * width].copy_from_slice(&acc);
        }
        let s = SystolicArray::gemm(&h, w.as_slice(), &vec![0.0; n * width], n, width, width);
        let mut out = Beicsr::with_shape(n, width, BeicsrConfig::default());
        let c = Compressor::new();
        for r in 0..n {
            c.relu_compress_row(&s[r * width..(r + 1) * width], &mut out, r);
        }
        out
    };
    let l1 = hardware_layer(&Beicsr::encode(&x0, BeicsrConfig::default()), &w0);
    let l2 = hardware_layer(&l1, &w1);

    for r in 0..n {
        let got = l2.decode_row(r);
        for (c, (g, w)) in got.iter().zip(&expect.row(r)).enumerate() {
            assert!(
                (g - w).abs() < 5e-3 * (1.0 + w.abs()),
                "row {r} col {c}: {g} vs {w}"
            );
        }
    }
}

#[test]
fn aggregation_cost_counts_only_nonzeros() {
    let n = 40;
    let width = 96;
    let graph = test_graph(n);
    let x = synthesize_features(n, width, 0.7, 4);
    let comp = Beicsr::encode(&x, BeicsrConfig::default());
    let agg = SparseAggregator::default();
    let mut total_mult = 0u64;
    for dst in 0..n {
        let mut acc = vec![0.0f32; width];
        for (&src, &w) in graph.neighbors(dst).iter().zip(graph.edge_weights(dst)) {
            total_mult += agg
                .aggregate_row(&mut acc, &comp, src as usize, w)
                .multiplies;
        }
    }
    let expected: u64 = (0..n)
        .map(|dst| {
            graph
                .neighbors(dst)
                .iter()
                .map(|&s| {
                    x.row_slice(s as usize)
                        .iter()
                        .filter(|&&v| v != 0.0)
                        .count() as u64
                })
                .sum::<u64>()
        })
        .sum();
    assert_eq!(total_mult, expected);
    // At 70% sparsity the saving over dense is ~70%.
    let dense = graph.num_edges() as u64 * width as u64;
    assert!(total_mult < dense * 4 / 10, "{total_mult} vs dense {dense}");
}
