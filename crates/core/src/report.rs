//! Result export: render [`Grid`]s as Markdown or CSV.
//!
//! The figure harnesses print plain tables; these renderers are for
//! embedding results in documents (EXPERIMENTS.md-style) or feeding
//! plotting scripts.

use std::fmt::Write as _;

use crate::experiments::Grid;

/// Renders a grid as a GitHub-flavored Markdown table.
pub fn to_markdown(grid: &Grid) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {}", grid.title);
    let _ = write!(out, "| |");
    for c in &grid.cols {
        let _ = write!(out, " {c} |");
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in &grid.cols {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    for (r, row) in grid.rows.iter().zip(&grid.values) {
        let _ = write!(out, "| {r} |");
        for v in row {
            let _ = write!(out, " {v:.3} |");
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a grid as CSV with a leading `row` column. Fields containing
/// commas or quotes are quoted.
pub fn to_csv(grid: &Grid) -> String {
    let mut out = String::new();
    let _ = write!(out, "row");
    for c in &grid.cols {
        let _ = write!(out, ",{}", csv_escape(c));
    }
    let _ = writeln!(out);
    for (r, row) in grid.rows.iter().zip(&grid.values) {
        let _ = write!(out, "{}", csv_escape(r));
        for v in row {
            let _ = write!(out, ",{v}");
        }
        let _ = writeln!(out);
    }
    out
}

fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Grid {
        let mut g = Grid::new(
            "sample",
            vec!["A".into(), "B".into()],
            vec!["x".into(), "y,z".into()],
        );
        g.set("x", "A", 1.0);
        g.set("x", "B", 2.5);
        g.set("y,z", "A", -0.125);
        g
    }

    #[test]
    fn markdown_shape() {
        let md = to_markdown(&sample());
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "### sample");
        assert_eq!(lines[1], "| | A | B |");
        assert_eq!(lines[2], "|---|---|---|");
        assert!(lines[3].starts_with("| x | 1.000 | 2.500 |"));
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_escapes_commas() {
        let csv = to_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "row,A,B");
        assert_eq!(lines[1], "x,1,2.5");
        assert!(lines[2].starts_with("\"y,z\","));
    }

    #[test]
    fn csv_quote_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a\"b"), "\"a\"\"b\"");
    }
}
