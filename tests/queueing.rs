//! Queueing-simulator integration tests: determinism/invariant proptests
//! on the event loop driven by fabricated service profiles (fast — no
//! accelerator simulation inside the property bodies), plus real-path
//! affinity-vs-FIFO and empty-stream checks.
//!
//! Nothing here mutates the process environment — the thread-count
//! equivalence check lives alone in `queueing_threads.rs`, because its
//! `SGCN_THREADS` writes would race the environment reads (`par_map`)
//! that this binary's tests perform concurrently.

use proptest::prelude::*;
use sgcn::accel::AccelModel;
use sgcn::experiments::ExperimentConfig;
use sgcn::serving::queueing::{
    feature_row_bytes, prepare, run_queue, simulate_queue, ArrivalModel, ArrivalProcess,
    PreparedRequest, QueueConfig, SchedPolicy,
};
use sgcn::serving::{Request, ServingConfig, ServingContext};
use sgcn::{HwConfig, SimReport};
use sgcn_graph::datasets::DatasetId;
use sgcn_graph::sampling::Fanouts;

fn quick_ctx() -> ServingContext {
    let cfg = ExperimentConfig::quick();
    ServingContext::new(ServingConfig {
        dataset: DatasetId::Cora,
        scale: cfg.scale,
        fanouts: Fanouts::new(vec![8, 4]),
        width: cfg.width,
        seed: cfg.seed,
    })
}

#[test]
fn affinity_warm_hits_dominate_fifo_across_seeds() {
    // The acceptance property: on shared-neighborhood streams the
    // cache-affinity policy reuses at least as many warm lines as
    // round-robin FIFO — checked across several hot-pool shapes.
    let ctx = quick_ctx();
    let hw = HwConfig::default();
    let row = feature_row_bytes(&ctx);
    for (n, pool, seed) in [(24usize, 2usize, 1u64), (24, 4, 2), (30, 6, 3)] {
        let stream = ctx.hotspot_stream(n, pool);
        let prepared = prepare(&ctx, &stream, &AccelModel::sgcn(), &hw);
        let fifo = simulate_queue(
            &prepared,
            &QueueConfig::new(4, SchedPolicy::FifoRoundRobin, 0.8, seed),
            &hw,
            row,
        );
        let aff = simulate_queue(
            &prepared,
            &QueueConfig::new(4, SchedPolicy::CacheAffinity, 0.8, seed),
            &hw,
            row,
        );
        assert!(
            aff.summary.warm_hits >= fifo.summary.warm_hits,
            "pool {pool}: affinity {} < fifo {}",
            aff.summary.warm_hits,
            fifo.summary.warm_hits
        );
    }
}

/// Fabricates a prepared request with a given cold service time, sampled
/// working set and feature-read DRAM footprint — the event loop consumes
/// nothing else of the report.
fn fab(index: usize, cycles: u64, feature_read_bytes: u64, vertices: Vec<u32>) -> PreparedRequest {
    let mut mem = sgcn_mem::MemReport::default();
    // Traffic::ALL order: [Topology, FeatureRead, FeatureWrite, Weight,
    // PartialSum] — slot 1 is the feature-read class.
    mem.per_class[1].dram_bytes = feature_read_bytes;
    PreparedRequest {
        request: Request {
            index,
            seed_vertex: vertices.first().copied().unwrap_or(0),
        },
        vertices,
        report: SimReport {
            accelerator: "fab",
            workload: "FAB".into(),
            cycles,
            agg_cycles: 0,
            comb_cycles: 0,
            mem_cycles: 0,
            macs: 0,
            mem,
            energy: Default::default(),
            tdp_watts: 0.0,
            layers: Vec::new(),
        },
        stats: Default::default(),
        class_reports: Vec::new(),
        formats: Vec::new(),
        lite_reports: Vec::new(),
        lite_vertices: Vec::new(),
    }
}

/// Strategy: a stream of fabricated requests (service times, vertex
/// pools) plus queue knobs.
fn stream_strategy() -> impl Strategy<Value = (Vec<PreparedRequest>, usize, u64, f64)> {
    (
        proptest::collection::vec((1_000u64..2_000_000, 0u32..40), 1..40),
        1usize..6,
        0u64..1_000,
        1u32..30,
    )
        .prop_map(|(profile, engines, seed, load_x10)| {
            let prepared: Vec<PreparedRequest> = profile
                .iter()
                .enumerate()
                .map(|(i, &(cycles, pool))| {
                    // Small overlapping vertex windows: neighbors share
                    // lines, so warm reuse actually happens.
                    let vertices: Vec<u32> = (pool..pool + 6).collect();
                    fab(i, cycles, 4096, vertices)
                })
                .collect();
            (prepared, engines, seed, load_x10 as f64 / 10.0)
        })
}

proptest! {
    #[test]
    fn arrival_timeline_is_monotone_and_index_pure(
        seed in 0u64..1_000_000,
        mean in 0.0f64..100_000.0,
        n in 0usize..200,
    ) {
        let p = ArrivalProcess::new(seed, mean);
        let t = p.timeline(n);
        prop_assert_eq!(t.len(), n);
        prop_assert!(t.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(p.timeline(n), t);
        // Index purity: any prefix of the timeline equals the timeline of
        // the prefix.
        let half = p.timeline(n / 2);
        prop_assert_eq!(&t[..n / 2], &half[..]);
    }

    #[test]
    fn event_loop_conserves_requests_and_orders_percentiles(
        scenario in stream_strategy(),
        policy_at in 0usize..SchedPolicy::ALL.len(),
    ) {
        let (prepared, engines, seed, load) = scenario;
        let policy = SchedPolicy::ALL[policy_at];
        let hw = HwConfig::default();
        let cfg = QueueConfig::new(engines, policy, load, seed);
        let out = simulate_queue(&prepared, &cfg, &hw, 256);
        prop_assert_eq!(out.records.len(), prepared.len());
        prop_assert_eq!(out.engine_served.iter().sum::<u64>(), prepared.len() as u64);

        // Per-engine, service intervals are disjoint and ordered.
        let mut next_free = vec![0u64; engines];
        for r in &out.records {
            prop_assert!(r.engine < engines);
            prop_assert!(r.start >= r.arrival);
            prop_assert!(r.start >= next_free[r.engine], "engine double-booked");
            prop_assert_eq!(r.finish, r.start + r.service_cycles);
            next_free[r.engine] = r.finish;
        }
        let busy: u64 = out.engine_busy.iter().sum();
        prop_assert_eq!(
            busy,
            out.records.iter().map(|r| r.service_cycles).sum::<u64>()
        );

        let s = &out.summary;
        prop_assert!(s.p50_wait_cycles <= s.p95_wait_cycles);
        prop_assert!(s.p95_wait_cycles <= s.p99_wait_cycles);
        prop_assert!(s.p99_wait_cycles <= s.max_wait_cycles);
        prop_assert!(s.p50_e2e_cycles <= s.p95_e2e_cycles);
        prop_assert!(s.p95_e2e_cycles <= s.p99_e2e_cycles);
        prop_assert!(s.p99_e2e_cycles <= s.max_e2e_cycles);
        prop_assert!(s.utilization >= 0.0 && s.utilization <= 1.0);
        prop_assert!(s.warm_hits <= s.warm_lines);
        prop_assert!(s.makespan_cycles >= out.records.iter().map(|r| r.finish).max().unwrap_or(0));

        // Deterministic replay, down to the rendered bytes.
        let again = simulate_queue(&prepared, &cfg, &hw, 256);
        prop_assert_eq!(&again, &out);
        let json = s.to_json("prop");
        prop_assert_eq!(&again.summary.to_json("prop"), &json);
        prop_assert!(
            !json.contains("inf") && !json.contains("NaN") && !json.contains("nan"),
            "non-finite field in {}", json
        );
    }

    #[test]
    fn service_never_exceeds_cold_latency(scenario in stream_strategy()) {
        let (prepared, engines, seed, load) = scenario;
        // Warm reuse can only shave cycles off the cold service time.
        let hw = HwConfig::default();
        let cfg = QueueConfig::new(engines, SchedPolicy::CacheAffinity, load, seed);
        let out = simulate_queue(&prepared, &cfg, &hw, 256);
        for (r, p) in out.records.iter().zip(&prepared) {
            prop_assert!(r.service_cycles <= p.report.cycles.max(1));
        }
    }
}

#[test]
fn zero_request_harness_path_renders() {
    // The `SGCN_REQUESTS=0` path end to end: empty stream → all-zero
    // summaries with finite JSON from both the offline and online
    // aggregators.
    let ctx = quick_ctx();
    let hw = HwConfig::default();
    let batch = ctx.serve_batch(&[], &AccelModel::sgcn(), &hw);
    let serve = sgcn::ServeSummary::from_reports(&batch).to_json("empty");
    assert!(serve.contains("\"requests\": 0"), "{serve}");
    let out = run_queue(
        &ctx,
        &[],
        &AccelModel::sgcn(),
        &hw,
        &QueueConfig::new(2, SchedPolicy::CacheAffinity, 0.8, 0),
    );
    let queue = out.summary.to_json("empty");
    assert!(queue.contains("\"requests\": 0"), "{queue}");
    for json in [serve, queue] {
        assert!(
            !json.contains("inf") && !json.contains("NaN") && !json.contains("nan"),
            "{json}"
        );
    }
}
