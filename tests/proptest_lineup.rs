//! Heterogeneous-lineup and cost-model proptests: cost-model
//! predictions are pure in (request stats, engine class) and refits of
//! the same stream are bit-identical; the `cost-aware` policy conserves
//! requests (completed + shed + failed = offered, exactly) across
//! traffic × fleet/lineup × failure drills; and mixed-lineup routing
//! never serves a request inside an engine's effective down window.
//!
//! Like `proptest_drills.rs`, the property bodies drive the event loop
//! with fabricated service profiles — no accelerator simulation inside
//! the loops. Lineup runs need per-class cold reports, so the fab
//! helper synthesizes a slower second class alongside the reference
//! report.

use proptest::prelude::*;
use sgcn::serving::queueing::{
    simulate_queue, CostModel, EngineLineup, FailureModel, FleetSpec, Incident, PreparedRequest,
    QueueConfig, RequestStats, RetryPolicy, SchedPolicy, SloConfig, TrafficModel,
};
use sgcn::serving::Request;
use sgcn::{HwConfig, SimReport};

/// Fabricates a prepared request carrying per-class cold reports: class
/// 0 is the reference profile, class 1 is `eco_x10/10` × slower — the
/// shape [`sgcn::serving::queueing::prepare_lineup`] produces for a
/// two-class lineup. Stats are a deterministic function of the profile
/// so the fitted cost model has signal.
fn fab(index: usize, cycles: u64, eco_x10: u64, vertices: Vec<u32>) -> PreparedRequest {
    let mut mem = sgcn_mem::MemReport::default();
    mem.per_class[1].dram_bytes = 4096;
    let report = SimReport {
        accelerator: "fab",
        workload: "FAB".into(),
        cycles,
        agg_cycles: 0,
        comb_cycles: 0,
        mem_cycles: 0,
        macs: 0,
        mem,
        energy: Default::default(),
        tdp_watts: 0.0,
        layers: Vec::new(),
    };
    let mut eco = report.clone();
    eco.cycles = (cycles * eco_x10) / 10;
    PreparedRequest {
        request: Request {
            index,
            seed_vertex: vertices.first().copied().unwrap_or(0),
        },
        stats: RequestStats {
            vertices: vertices.len() as u64,
            edges: cycles / 100,
            sparsity: 0.5,
            feature_bytes: vertices.len() as u64 * 256,
        },
        vertices,
        class_reports: vec![report.clone(), eco],
        report,
        formats: Vec::new(),
        lite_reports: Vec::new(),
        lite_vertices: Vec::new(),
    }
}

fn fab_stream(profile: &[(u64, u32)], eco_x10: u64) -> Vec<PreparedRequest> {
    profile
        .iter()
        .enumerate()
        .map(|(i, &(cycles, pool))| {
            let vertices: Vec<u32> = (pool..pool + 6).collect();
            fab(i, cycles, eco_x10, vertices)
        })
        .collect()
}

/// A two-class lineup matching the fab reports: the classes only need
/// the right *count* for the event loop (service times come from the
/// fabricated `class_reports`), so both use the base platform.
fn fab_lineup(engines: usize, stealing: bool) -> EngineLineup {
    let mut lineup = EngineLineup::mixed(engines, HwConfig::default());
    if stealing {
        lineup = lineup.with_work_stealing();
    }
    lineup
}

/// Strategy: a failure model (same construction as
/// `proptest_drills.rs` — scripted incidents are per-engine disjoint).
fn faults_strategy(engines: usize) -> impl Strategy<Value = FailureModel> {
    let scripted =
        proptest::collection::vec((0..engines, 1_000u64..3_000_000, 1_000u64..2_000_000), 0..5)
            .prop_map(|draws| {
                let mut cursor = [0u64; 16];
                let mut incidents = Vec::new();
                for (engine, gap, dur) in draws {
                    let down_at = cursor[engine] + gap;
                    let up_at = down_at + dur;
                    cursor[engine] = up_at;
                    incidents.push(Incident {
                        engine,
                        down_at,
                        up_at,
                    });
                }
                FailureModel::Scripted(incidents)
            });
    prop_oneof![
        Just(FailureModel::None),
        scripted,
        (2u32..30, 1u32..12, 1usize..4).prop_map(|(mtbf, mttr, k)| FailureModel::Mtbf {
            mtbf_services: mtbf as f64,
            mttr_services: mttr as f64,
            incidents_per_engine: k,
        }),
    ]
}

/// Strategy: a cost-aware scenario — fabricated two-class stream,
/// engines, seed, load, traffic, a fleet flavor (legacy uniform, legacy
/// mixed scales, or a two-class lineup ± stealing), faults, retries,
/// optional SLO.
#[allow(clippy::type_complexity)]
fn cost_aware_strategy() -> impl Strategy<Value = (Vec<PreparedRequest>, QueueConfig)> {
    (
        proptest::collection::vec((1_000u64..2_000_000, 0u32..40), 1..40),
        11u64..40,
        1usize..5,
        0u64..1_000,
        1u32..30,
        prop_oneof![
            Just(TrafficModel::Exponential),
            Just(TrafficModel::bursty_default()),
            Just(TrafficModel::diurnal_default()),
            (1usize..8).prop_map(|clients| TrafficModel::ClosedLoop { clients }),
        ],
        0usize..4,
        proptest::option::of((10_000u64..5_000_000, proptest::bool::ANY)),
    )
        .prop_flat_map(
            |(profile, eco_x10, engines, seed, load_x10, traffic, flavor, slo)| {
                (
                    Just((
                        profile, eco_x10, engines, seed, load_x10, traffic, flavor, slo,
                    )),
                    faults_strategy(engines),
                    (1u32..5, 0u64..10_000),
                )
            },
        )
        .prop_map(
            |((profile, eco_x10, engines, seed, load_x10, traffic, flavor, slo), faults, retry)| {
                let prepared = fab_stream(&profile, eco_x10);
                let mut cfg = QueueConfig::new(
                    engines,
                    SchedPolicy::CostAware,
                    load_x10 as f64 / 10.0,
                    seed,
                )
                .with_traffic(traffic)
                .with_faults(faults)
                .with_retry(RetryPolicy::new(retry.0, retry.1));
                cfg = match flavor {
                    0 => cfg.with_fleet(FleetSpec::uniform(engines)),
                    1 => cfg.with_fleet(FleetSpec::mixed(engines, 1.5)),
                    2 => cfg.with_lineup(fab_lineup(engines, false)),
                    _ => cfg.with_lineup(fab_lineup(engines, true)),
                };
                if let Some((deadline, shed)) = slo {
                    cfg = cfg.with_slo(SloConfig::new(deadline, shed));
                }
                (prepared, cfg)
            },
        )
}

/// The effective per-engine down windows of a run (same replay as
/// `proptest_drills.rs`): a down event on an already-down engine is
/// absorbed; the earliest up event recovers it.
fn effective_outages(cfg: &QueueConfig, mean_service: f64) -> Vec<(usize, u64, u64)> {
    let plan = cfg.faults.materialize(cfg.seed, cfg.engines, mean_service);
    let mut events: Vec<(u64, u8, usize)> = Vec::new();
    for inc in plan.incidents() {
        events.push((inc.down_at, 1, inc.engine));
        events.push((inc.up_at, 0, inc.engine));
    }
    events.sort_unstable();
    let mut down_since: Vec<Option<u64>> = vec![None; cfg.engines];
    let mut outages = Vec::new();
    for (t, kind, e) in events {
        match kind {
            0 => {
                if let Some(since) = down_since[e].take() {
                    outages.push((e, since, t));
                }
            }
            _ => {
                if down_since[e].is_none() {
                    down_since[e] = Some(t);
                }
            }
        }
    }
    for (e, since) in down_since.into_iter().enumerate() {
        if let Some(since) = since {
            outages.push((e, since, u64::MAX));
        }
    }
    outages
}

fn mean_service(prepared: &[PreparedRequest]) -> f64 {
    prepared.iter().map(|p| p.report.cycles as f64).sum::<f64>() / prepared.len() as f64
}

proptest! {
    #[test]
    fn cost_model_predictions_are_pure_and_fits_deterministic(
        profile in proptest::collection::vec((1_000u64..2_000_000, 0u32..40), 1..40),
        eco_x10 in 11u64..40,
        queries in proptest::collection::vec(
            (0usize..3, 1u64..5_000, 0u64..20_000, 0u32..1_000, 1u64..1_000_000),
            1..20,
        ),
    ) {
        let prepared = fab_stream(&profile, eco_x10);
        let model = CostModel::fit(&prepared, 2);
        // Refitting the same stream is bit-identical.
        prop_assert_eq!(&model, &CostModel::fit(&prepared, 2));
        prop_assert_eq!(model.classes(), 2);
        for &(class, vertices, edges, sparsity_x1000, feature_bytes) in &queries {
            let stats = RequestStats {
                vertices,
                edges,
                sparsity: sparsity_x1000 as f64 / 1_000.0,
                feature_bytes,
            };
            let first = model.predict_cycles(class, &stats);
            // Pure in (class, stats): repeated queries agree, a rebuilt
            // identical stats value agrees, and the prediction is a
            // positive cycle count no matter how degenerate the inputs.
            prop_assert_eq!(first, model.predict_cycles(class, &stats));
            let rebuilt = RequestStats {
                vertices,
                edges,
                sparsity: sparsity_x1000 as f64 / 1_000.0,
                feature_bytes,
            };
            prop_assert_eq!(first, model.predict_cycles(class, &rebuilt));
            prop_assert!(first >= 1);
        }
        // Interleaving queries does not perturb later predictions (the
        // model is immutable, not stateful).
        let probe = RequestStats {
            vertices: 17,
            edges: 99,
            sparsity: 0.25,
            feature_bytes: 4_096,
        };
        let before = model.predict_cycles(0, &probe);
        for &(class, vertices, edges, s, fb) in &queries {
            model.predict_cycles(class, &RequestStats {
                vertices,
                edges,
                sparsity: s as f64 / 1_000.0,
                feature_bytes: fb,
            });
        }
        prop_assert_eq!(before, model.predict_cycles(0, &probe));
    }

    #[test]
    fn cost_aware_conserves_requests_across_fleets_and_drills(
        scenario in cost_aware_strategy(),
    ) {
        let (prepared, cfg) = scenario;
        let hw = HwConfig::default();
        let out = simulate_queue(&prepared, &cfg, &hw, 256);

        // Conservation: completed + shed + failed = offered, exactly,
        // with the indices partitioning the stream.
        prop_assert_eq!(
            out.records.len() + out.shed.len() + out.failed.len(),
            prepared.len()
        );
        let s = &out.summary;
        prop_assert_eq!(
            s.completed + s.shed as usize + s.failed as usize,
            s.requests
        );
        let mut seen: Vec<usize> = out
            .records
            .iter()
            .map(|r| r.index)
            .chain(out.shed.iter().map(|s| s.index))
            .chain(out.failed.iter().map(|f| f.index))
            .collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..prepared.len()).collect::<Vec<_>>());

        // Nothing fails without faults; nothing sheds without shedding.
        if cfg.faults.is_none() {
            prop_assert!(out.failed.is_empty());
        }
        if !cfg.slo.map(|s| s.shed).unwrap_or(false) {
            prop_assert!(out.shed.is_empty());
        }

        // Accounting renders finite and the run is bit-deterministic.
        let json = s.to_json("lineup-prop");
        prop_assert!(
            !json.contains("inf") && !json.contains("NaN") && !json.contains("nan"),
            "non-finite field in {}", json
        );
        prop_assert!(s.cost_units > 0.0);
        let again = simulate_queue(&prepared, &cfg, &hw, 256);
        prop_assert_eq!(&again, &out);
    }

    #[test]
    fn recovered_eco_engine_rewarms_against_its_own_cold_report(
        profile in proptest::collection::vec((1_000u64..2_000_000, 0u32..6), 8..40),
        eco_x10 in 11u64..40,
        seed in 0u64..1_000,
        down_at in 10_000u64..500_000,
        dur in 100_000u64..2_000_000,
    ) {
        // `MemorySystem::reset_cold` under lineups: after a crash +
        // recovery, an eco-class engine restarts with an empty cache and
        // must re-warm against its *own* class cold report — its first
        // post-recovery service is exactly the eco cell's cold cycles
        // (scale is 1.0 under a lineup), never the reference cell's.
        let prepared = fab_stream(&profile, eco_x10);
        let cfg = QueueConfig::new(2, SchedPolicy::CostAware, 0.9, seed)
            .with_lineup(fab_lineup(2, false))
            .with_faults(FailureModel::Scripted(vec![Incident {
                engine: 1,
                down_at,
                up_at: down_at + dur,
            }]))
            .with_retry(RetryPolicy::new(3, 0));
        let out = simulate_queue(&prepared, &cfg, &HwConfig::default(), 256);
        // On the two-engine mixed lineup, engine 1 is the eco class.
        let first_after = out
            .records
            .iter()
            .filter(|r| r.engine == 1 && r.start >= down_at + dur)
            .min_by_key(|r| r.start);
        if let Some(r) = first_after {
            let p = &prepared[r.index];
            let eco_cold = p.class_reports[1].cycles;
            prop_assert_eq!(
                r.warm.hits, 0,
                "recovered engine served request {} warm", r.index
            );
            prop_assert_eq!(
                r.service_cycles, eco_cold,
                "request {} re-warmed against the wrong cold report \
                 (eco {}, reference {})",
                r.index, eco_cold, p.report.cycles
            );
            // The property has teeth: the eco profile is strictly
            // slower, so pricing off the reference cell would differ.
            prop_assert!(r.service_cycles != p.report.cycles);
        }
    }

    #[test]
    fn mixed_lineup_routing_sends_nothing_to_a_down_engine(
        scenario in cost_aware_strategy(),
    ) {
        let (prepared, cfg) = scenario;
        let out = simulate_queue(&prepared, &cfg, &HwConfig::default(), 256);
        let outages = effective_outages(&cfg, mean_service(&prepared));
        for r in &out.records {
            for &(e, down, up) in &outages {
                if r.engine == e {
                    prop_assert!(
                        r.finish <= down || r.start >= up,
                        "request {} served on engine {} during [{}, {})",
                        r.index, e, down, up
                    );
                }
            }
        }
        for f in &out.failed {
            prop_assert!(f.at >= f.arrival);
        }
    }
}
