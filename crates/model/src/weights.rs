//! Deterministic weight initialization.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sgcn_formats::DenseMatrix;

/// Glorot/Xavier-uniform initialization: values in `±sqrt(6/(fan_in+fan_out))`.
///
/// Deterministic per seed, so every run of an experiment sees identical
/// networks.
pub fn glorot(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let limit = (6.0 / (rows + cols).max(1) as f64).sqrt() as f32;
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-limit..=limit))
        .collect();
    DenseMatrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(glorot(8, 8, 1), glorot(8, 8, 1));
        assert_ne!(glorot(8, 8, 1), glorot(8, 8, 2));
    }

    #[test]
    fn values_within_limit() {
        let w = glorot(16, 48, 3);
        let limit = (6.0f64 / 64.0).sqrt() as f32;
        assert!(w.as_slice().iter().all(|v| v.abs() <= limit));
        // Not degenerate.
        assert!(w.as_slice().iter().any(|&v| v != 0.0));
    }
}
