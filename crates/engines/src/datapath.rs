//! The composed aggregation-engine datapath (§III-B, Fig. 5).
//!
//! Chains the graph reader → feature reader → SIMD MAC path with the
//! prefetch [`StreamBuffer`]s the paper describes, at per-cycle
//! granularity: each cycle the readers refill their buffers at their
//! supply rates, and the SIMD core drains one edge's worth of work when
//! both buffers can feed it. This exposes where stalls originate
//! (topology-starved vs feature-starved vs compute-bound) — a level of
//! visibility the aggregate simulator's `max(compute, memory)` model
//! folds away.

use crate::buffer::StreamBuffer;

/// Per-component stall/utilization profile of an aggregation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DatapathProfile {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Cycles the SIMD core computed.
    pub busy_cycles: u64,
    /// Cycles stalled waiting for topology (edge) supply.
    pub edge_stalls: u64,
    /// Cycles stalled waiting for feature supply.
    pub feature_stalls: u64,
    /// Edges fully processed.
    pub edges_done: u64,
}

impl DatapathProfile {
    /// SIMD utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.cycles as f64
        }
    }
}

/// Configuration of the composed datapath.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatapathConfig {
    /// Edges the graph reader supplies per cycle.
    pub edge_supply_per_cycle: usize,
    /// Feature elements the feature reader supplies per cycle
    /// (its DRAM-side bandwidth share).
    pub feature_supply_per_cycle: usize,
    /// Graph-reader buffer depth (edges).
    pub edge_buffer: usize,
    /// Feature-reader buffer depth (elements).
    pub feature_buffer: usize,
    /// SIMD lanes (elements consumed per busy cycle).
    pub simd_lanes: usize,
}

impl Default for DatapathConfig {
    /// A balanced configuration around the Table III engine.
    fn default() -> Self {
        DatapathConfig {
            edge_supply_per_cycle: 1,
            feature_supply_per_cycle: 16,
            edge_buffer: 16,
            feature_buffer: 256,
            simd_lanes: 16,
        }
    }
}

/// Simulates aggregating `edges` edges whose per-edge lane work is given
/// by `work_per_edge` (elements to multiply-accumulate — non-zeros for
/// BEICSR, the full width for dense rows).
pub fn simulate_aggregation(config: DatapathConfig, work_per_edge: &[usize]) -> DatapathProfile {
    assert!(config.simd_lanes > 0, "SIMD lanes must be non-zero");
    let mut edge_buf = StreamBuffer::new(config.edge_buffer.max(1));
    let mut feat_buf = StreamBuffer::new(config.feature_buffer.max(1));
    let mut profile = DatapathProfile::default();

    let mut next_edge = 0usize; // edges fetched into the edge buffer
    let mut next_feature_edge = 0usize; // edges whose features are being fetched
    let mut feature_backlog = 0usize; // elements left to fetch for in-flight edges
    let mut current_remaining = 0usize; // elements left to compute for the head edge
    let mut head_started = false;

    // Hard cap so a mis-configured (zero-supply) run terminates.
    let max_cycles = 1_000_000_000u64;
    while profile.edges_done < work_per_edge.len() as u64 && profile.cycles < max_cycles {
        profile.cycles += 1;
        // Readers refill.
        if next_edge < work_per_edge.len() {
            let pushed = edge_buf.produce(config.edge_supply_per_cycle);
            next_edge = (next_edge + pushed).min(work_per_edge.len());
        }
        // The feature reader fetches for edges already in the edge buffer.
        while feature_backlog < feat_buf.capacity() && next_feature_edge < next_edge {
            feature_backlog += work_per_edge[next_feature_edge].max(1);
            next_feature_edge += 1;
        }
        let fetched = feat_buf.produce(config.feature_supply_per_cycle.min(feature_backlog));
        feature_backlog -= fetched.min(feature_backlog);

        // SIMD core consumes: a per-cycle lane budget that may span
        // multiple small edges; the cycle counts as busy only at full
        // lane utilization, otherwise the limiting reader is charged.
        let mut lanes_left = config.simd_lanes;
        let mut starved_feature = false;
        let mut starved_edge = false;
        while lanes_left > 0 && profile.edges_done < work_per_edge.len() as u64 {
            if !head_started {
                if edge_buf.consume(1) == 1 {
                    let idx = profile.edges_done as usize;
                    current_remaining = work_per_edge[idx].max(1);
                    head_started = true;
                } else {
                    starved_edge = true;
                    break;
                }
            }
            let want = current_remaining.min(lanes_left);
            let got = feat_buf.consume(want);
            current_remaining -= got;
            lanes_left -= got;
            if current_remaining == 0 {
                profile.edges_done += 1;
                head_started = false;
            }
            if got < want {
                starved_feature = true;
                break;
            }
        }
        if lanes_left == 0 {
            profile.busy_cycles += 1;
        } else if starved_feature {
            profile.feature_stalls += 1;
        } else if starved_edge {
            profile.edge_stalls += 1;
        } else {
            // Drained the tail of the edge list with lanes to spare.
            profile.busy_cycles += 1;
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_supply_keeps_simd_busy() {
        let cfg = DatapathConfig::default();
        let work = vec![16usize; 200];
        let p = simulate_aggregation(cfg, &work);
        assert_eq!(p.edges_done, 200);
        assert!(p.utilization() > 0.8, "utilization {}", p.utilization());
    }

    #[test]
    fn starved_feature_reader_shows_feature_stalls() {
        let cfg = DatapathConfig {
            feature_supply_per_cycle: 4, // quarter of lane demand
            ..DatapathConfig::default()
        };
        let work = vec![16usize; 100];
        let p = simulate_aggregation(cfg, &work);
        assert!(p.feature_stalls > p.edge_stalls);
        assert!(p.utilization() < 0.5);
    }

    #[test]
    fn starved_graph_reader_shows_edge_stalls() {
        let cfg = DatapathConfig {
            edge_supply_per_cycle: 1,
            feature_supply_per_cycle: 64,
            simd_lanes: 64,
            ..DatapathConfig::default()
        };
        // Tiny edges: one beat each, so the engine wants >1 edge/cycle.
        let work = vec![1usize; 300];
        let p = simulate_aggregation(cfg, &work);
        assert!(p.edge_stalls > 0);
    }

    #[test]
    fn sparse_work_finishes_faster_than_dense() {
        let cfg = DatapathConfig::default();
        let dense = vec![96usize; 100];
        let sparse = vec![48usize; 100]; // 50% sparsity
        let pd = simulate_aggregation(cfg, &dense);
        let ps = simulate_aggregation(cfg, &sparse);
        assert!(
            ps.cycles * 10 < pd.cycles * 7,
            "sparse {} vs dense {}",
            ps.cycles,
            pd.cycles
        );
    }

    #[test]
    fn zero_work_edges_still_count() {
        let p = simulate_aggregation(DatapathConfig::default(), &[0, 0, 0]);
        assert_eq!(p.edges_done, 3);
    }

    #[test]
    fn empty_edge_list_is_immediate() {
        let p = simulate_aggregation(DatapathConfig::default(), &[]);
        assert_eq!(p.cycles, 0);
        assert_eq!(p.edges_done, 0);
    }
}
