//! Accelerator models: SGCN and the five baselines of the paper's Fig. 11.
//!
//! Every accelerator runs on the same substrate (global cache + HBM, SIMD
//! aggregation engines, systolic combination engines); what distinguishes
//! them is the *dataflow* — phase order, tiling, feature storage format,
//! engine scheduling, and special-casing — captured declaratively in
//! [`AccelModel`] and executed by the shared simulator in [`sim`].
//!
//! | Model | Order | Tiling | Features | Extras |
//! |---|---|---|---|---|
//! | HyGCN | Agg-first | none | dense | — |
//! | EnGN | Comb-first | vertex tiling (coarse) | dense | degree-aware vertex cache |
//! | AWB-GCN | Comb-first | none | dense | column product (partial-sum spills), zero-skip combination |
//! | I-GCN | Comb-first | cache-sized | dense | BFS islandization reordering |
//! | GCNAX | Agg-first (comb-first 1st layer) | cache-sized ("perfect") | dense | — |
//! | SGCN | Agg-first (sparse 1st layer) | cache-sized | **BEICSR** | sparse aggregator, in-place compressor, SAC |

pub mod sim;

use sgcn_formats::BeicsrConfig;

use crate::config::HwConfig;
use crate::cooperation::DEFAULT_STRIP_HEIGHT;
use crate::metrics::SimReport;
use crate::workload::Workload;

/// Which phase runs first (§III-B, Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseOrder {
    /// Aggregation (`Ã·X`) first, then combination.
    AggFirst,
    /// Combination (`X·W`) first, then aggregation.
    CombFirst,
}

/// Intermediate-feature storage format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureStorage {
    /// Uncompressed dense rows (all baselines).
    Dense,
    /// BEICSR (SGCN; sliced or non-sliced per the config).
    Beicsr(BeicsrConfig),
}

/// Topology tiling policy (§V-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TilingPolicy {
    /// No tiling: one pass over the whole matrix (HyGCN, AWB-GCN).
    None,
    /// Source tiles sized so one tile's feature working set fits a
    /// fraction of the cache, assuming the given feature density.
    CacheSized {
        /// Fraction of the cache the tile working set may occupy.
        occupancy: f64,
        /// Density (1 − sparsity) assumed when sizing (GCNAX assumes
        /// dense; SGCN sizes for its expected ~50% sparsity, which is what
        /// makes the working set overflow when features run dense — the
        /// problem SAC repairs).
        expected_density: f64,
    },
}

/// Vertex reordering applied before simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReorderPolicy {
    /// Keep the dataset's native order.
    None,
    /// I-GCN's BFS islandization.
    Islandize,
}

/// A declarative accelerator description consumed by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelModel {
    /// Display name (matches the paper's legends).
    pub name: &'static str,
    /// Phase order for intermediate layers.
    pub order: PhaseOrder,
    /// Topology tiling.
    pub tiling: TilingPolicy,
    /// Feature storage format.
    pub storage: FeatureStorage,
    /// Sparsity-aware cooperation (interleaved strips) on/off.
    pub sac: bool,
    /// SAC strip height (rows).
    pub strip_height: usize,
    /// Fraction of the cache carved out for EnGN's degree-aware vertex
    /// cache (0 = none).
    pub davc_fraction: f64,
    /// AWB-GCN's column-product aggregation with partial-sum spills.
    pub column_product: bool,
    /// Zero-skipping in the combination GeMM (AWB-GCN): cycles scale with
    /// input density but traffic does not.
    pub comb_zero_skip: bool,
    /// SGCN's first-layer handling: ultra-sparse input combination runs on
    /// the aggregation engine over CSR input (§V-F, §VII-B).
    pub sparse_first_layer: bool,
    /// Vertex reordering.
    pub reorder: ReorderPolicy,
    /// Peak-power factor relative to the common platform, calibrated to
    /// the paper's synthesis results (§VI-A, Fig. 13): SGCN 6.74 W,
    /// AWB-GCN 7.03 W, GCNAX 7.16 W, HyGCN 5.94 W.
    pub tdp_factor: f64,
}

impl AccelModel {
    /// The paper's full SGCN: sliced BEICSR (C=96), sparse aggregation,
    /// in-place compression, SAC, sparse first layer.
    pub fn sgcn() -> Self {
        AccelModel {
            name: "SGCN",
            order: PhaseOrder::AggFirst,
            // SGCN sizes tiles for the compressed working set at its
            // expected ~50% sparsity — larger tiles than GCNAX's dense
            // sizing, more reuse per pass, but at risk of overflowing when
            // features run denser than expected (§V-C); SAC repairs that.
            tiling: TilingPolicy::CacheSized {
                occupancy: 1.6,
                expected_density: 0.5,
            },
            storage: FeatureStorage::Beicsr(BeicsrConfig::default()),
            sac: true,
            strip_height: DEFAULT_STRIP_HEIGHT,
            davc_fraction: 0.0,
            column_product: false,
            comb_zero_skip: false,
            sparse_first_layer: true,
            reorder: ReorderPolicy::None,
            tdp_factor: 0.962,
        }
    }

    /// Ablation: SGCN without sparsity-aware cooperation (Fig. 12's
    /// "BEICSR" bar).
    pub fn sgcn_no_sac() -> Self {
        AccelModel {
            name: "SGCN (no SAC)",
            sac: false,
            ..AccelModel::sgcn()
        }
    }

    /// Ablation: non-sliced BEICSR (Fig. 12's "Non-sliced BEICSR" bar) —
    /// monolithic row bitmaps, so tiled column windows re-read the bitmap
    /// head and fetch unaligned value runs.
    pub fn sgcn_non_sliced() -> Self {
        AccelModel {
            name: "Non-sliced BEICSR",
            storage: FeatureStorage::Beicsr(BeicsrConfig::non_sliced()),
            sac: false,
            ..AccelModel::sgcn()
        }
    }

    /// SGCN with a custom unit-slice width (Fig. 17 sensitivity).
    pub fn sgcn_with_slice(slice_elems: usize) -> Self {
        AccelModel {
            name: "SGCN",
            storage: FeatureStorage::Beicsr(BeicsrConfig::sliced(slice_elems)),
            ..AccelModel::sgcn()
        }
    }

    /// GCNAX (Li et al., HPCA'21): the paper's normalization baseline —
    /// dense features, cache-sized ("perfect") tiling, optimized loop
    /// order, combination-first on the input layer.
    pub fn gcnax() -> Self {
        AccelModel {
            name: "GCNAX",
            order: PhaseOrder::AggFirst,
            tiling: TilingPolicy::CacheSized {
                occupancy: 0.8,
                expected_density: 1.0,
            },
            storage: FeatureStorage::Dense,
            sac: false,
            strip_height: DEFAULT_STRIP_HEIGHT,
            davc_fraction: 0.0,
            column_product: false,
            comb_zero_skip: false,
            sparse_first_layer: false,
            reorder: ReorderPolicy::None,
            tdp_factor: 1.022,
        }
    }

    /// HyGCN (Yan et al., HPCA'20): row-product hybrid engines, no tiling
    /// — duplicate feature fetches dominate on large graphs (Fig. 14).
    pub fn hygcn() -> Self {
        AccelModel {
            name: "HyGCN",
            order: PhaseOrder::AggFirst,
            tiling: TilingPolicy::None,
            storage: FeatureStorage::Dense,
            sac: false,
            strip_height: DEFAULT_STRIP_HEIGHT,
            davc_fraction: 0.0,
            column_product: false,
            comb_zero_skip: false,
            sparse_first_layer: false,
            reorder: ReorderPolicy::None,
            tdp_factor: 0.848,
        }
    }

    /// AWB-GCN (Geng et al., MICRO'20): column-product execution reads
    /// each input feature exactly once but spills partial sums (Fig. 14),
    /// and zero-skips the combination.
    pub fn awb_gcn() -> Self {
        AccelModel {
            name: "AWB-GCN",
            order: PhaseOrder::CombFirst,
            tiling: TilingPolicy::None,
            storage: FeatureStorage::Dense,
            sac: false,
            strip_height: DEFAULT_STRIP_HEIGHT,
            davc_fraction: 0.0,
            column_product: true,
            comb_zero_skip: true,
            sparse_first_layer: false,
            reorder: ReorderPolicy::None,
            tdp_factor: 1.004,
        }
    }

    /// EnGN (Liang et al., TC'20): coarse vertex tiling plus a
    /// degree-aware vertex cache pinning high-degree vertices.
    pub fn engn() -> Self {
        AccelModel {
            name: "EnGN",
            order: PhaseOrder::CombFirst,
            tiling: TilingPolicy::CacheSized {
                occupancy: 0.9, // deliberately coarse: "its limited vertex
                // tiling still makes lower cache efficiency" (§VI-B)
                expected_density: 1.0,
            },
            storage: FeatureStorage::Dense,
            sac: false,
            strip_height: DEFAULT_STRIP_HEIGHT,
            davc_fraction: 0.25,
            column_product: false,
            comb_zero_skip: false,
            sparse_first_layer: false,
            reorder: ReorderPolicy::None,
            tdp_factor: 0.95,
        }
    }

    /// I-GCN (Geng et al., MICRO'21): BFS islandization improves
    /// aggregation locality; islands are aggregated and combined while
    /// resident on chip, so the phases fuse per island — modelled as the
    /// agg-first path (no scratch round-trip), which is what the fusion
    /// buys it.
    pub fn igcn() -> Self {
        AccelModel {
            name: "I-GCN",
            order: PhaseOrder::AggFirst,
            tiling: TilingPolicy::CacheSized {
                occupancy: 0.8,
                expected_density: 1.0,
            },
            storage: FeatureStorage::Dense,
            sac: false,
            strip_height: DEFAULT_STRIP_HEIGHT,
            davc_fraction: 0.0,
            column_product: false,
            comb_zero_skip: false,
            sparse_first_layer: false,
            reorder: ReorderPolicy::Islandize,
            tdp_factor: 0.98,
        }
    }

    /// The lineup of the paper's Fig. 11, baseline first.
    pub fn fig11_lineup() -> Vec<AccelModel> {
        vec![
            AccelModel::gcnax(),
            AccelModel::hygcn(),
            AccelModel::awb_gcn(),
            AccelModel::engn(),
            AccelModel::igcn(),
            AccelModel::sgcn(),
        ]
    }

    /// Runs this model on a workload.
    pub fn simulate(&self, workload: &Workload, hw: &HwConfig) -> SimReport {
        sim::run(self, workload, hw)
    }

    /// Runs this model with the intermediate-feature storage overridden
    /// to `kind` (compute stays dense; only traffic changes — the same
    /// semantics as the Fig. 3 format study). `None` is exactly
    /// [`AccelModel::simulate`].
    pub fn simulate_with_format(
        &self,
        workload: &Workload,
        hw: &HwConfig,
        kind: Option<sgcn_formats::FormatKind>,
    ) -> SimReport {
        sim::run_with_format_override(self, workload, hw, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_has_unique_names() {
        let lineup = AccelModel::fig11_lineup();
        let mut names: Vec<&str> = lineup.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn sgcn_uses_beicsr_and_sac() {
        let m = AccelModel::sgcn();
        assert!(m.sac);
        assert!(matches!(m.storage, FeatureStorage::Beicsr(c) if c.is_sliced()));
        assert!(m.sparse_first_layer);
    }

    #[test]
    fn ablations_strip_one_feature_each() {
        assert!(!AccelModel::sgcn_no_sac().sac);
        let ns = AccelModel::sgcn_non_sliced();
        assert!(matches!(ns.storage, FeatureStorage::Beicsr(c) if !c.is_sliced()));
    }

    #[test]
    fn baselines_are_dense() {
        for m in [
            AccelModel::gcnax(),
            AccelModel::hygcn(),
            AccelModel::awb_gcn(),
            AccelModel::engn(),
            AccelModel::igcn(),
        ] {
            assert_eq!(m.storage, FeatureStorage::Dense, "{}", m.name);
        }
    }

    #[test]
    fn awb_is_column_product_with_zero_skip() {
        let m = AccelModel::awb_gcn();
        assert!(m.column_product);
        assert!(m.comb_zero_skip);
    }
}
