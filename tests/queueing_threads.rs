//! Queueing thread-count equivalence on the real serving path. This is
//! the **only** test in this binary: `SGCN_THREADS` is process state,
//! and any sibling test reaching `par_map` (or anything else that reads
//! the environment) would race the `set_var` calls — the same
//! one-env-test discipline as `thread_equivalence.rs` and
//! `golden_suite.rs`. Integration-test binaries are separate processes,
//! so the env-free queueing properties live in `queueing.rs` instead.

use sgcn::accel::AccelModel;
use sgcn::experiments::ExperimentConfig;
use sgcn::serving::queueing::{
    feature_row_bytes, prepare, simulate_queue, QueueConfig, SchedPolicy,
};
use sgcn::serving::{ServingConfig, ServingContext};
use sgcn::HwConfig;
use sgcn_graph::datasets::DatasetId;
use sgcn_graph::sampling::Fanouts;

/// One full queueing run on the real serving path (hotspot stream, three
/// policies), returning every byte that lands in `BENCH_queue.json`.
fn queue_probe() -> Vec<String> {
    let cfg = ExperimentConfig::quick();
    let ctx = ServingContext::new(ServingConfig {
        dataset: DatasetId::Cora,
        scale: cfg.scale,
        fanouts: Fanouts::new(vec![8, 4]),
        width: cfg.width,
        seed: cfg.seed,
    });
    let stream = ctx.hotspot_stream(30, 5);
    let hw = HwConfig::default();
    let prepared = prepare(&ctx, &stream, &AccelModel::sgcn(), &hw);
    let row = feature_row_bytes(&ctx);
    SchedPolicy::ALL
        .iter()
        .map(|&policy| {
            let out = simulate_queue(&prepared, &QueueConfig::new(3, policy, 0.8, 7), &hw, row);
            out.summary.to_json(policy.label())
        })
        .collect()
}

#[test]
fn forced_worker_counts_produce_identical_queue_json() {
    std::env::set_var("SGCN_THREADS", "1");
    assert_eq!(sgcn_par::threads(), 1);
    let serial = queue_probe();

    for workers in ["2", "4"] {
        std::env::set_var("SGCN_THREADS", workers);
        assert_eq!(sgcn_par::threads(), workers.parse::<usize>().unwrap());
        assert_eq!(
            queue_probe(),
            serial,
            "SGCN_THREADS={workers} changed the queue summaries"
        );
    }
    std::env::remove_var("SGCN_THREADS");
}
