//! Traffic-model and SLO proptests: index purity and monotonicity of
//! every open-loop arrival generator, request conservation
//! (completed + shed = offered) across traffic models × policies ×
//! fleets, the closed-loop in-flight cap, and the SLO invariant
//! (violations reported ⇔ end-to-end > deadline).
//!
//! The property bodies drive the event loop with fabricated service
//! profiles (no accelerator simulation inside the loops — fast), the
//! same technique as `queueing.rs`. Nothing here mutates the process
//! environment.

use proptest::prelude::*;
use sgcn::serving::queueing::{
    simulate_queue, ArrivalModel, ArrivalProcess, BurstyArrivals, DiurnalArrivals, FleetSpec,
    PreparedRequest, QueueConfig, SchedPolicy, SloConfig, TrafficModel,
};
use sgcn::serving::Request;
use sgcn::{HwConfig, SimReport};

/// Fabricates a prepared request with a given cold service time, sampled
/// working set and feature-read DRAM footprint — the event loop consumes
/// nothing else of the report.
fn fab(index: usize, cycles: u64, feature_read_bytes: u64, vertices: Vec<u32>) -> PreparedRequest {
    let mut mem = sgcn_mem::MemReport::default();
    // Traffic::ALL order: [Topology, FeatureRead, FeatureWrite, Weight,
    // PartialSum] — slot 1 is the feature-read class.
    mem.per_class[1].dram_bytes = feature_read_bytes;
    PreparedRequest {
        request: Request {
            index,
            seed_vertex: vertices.first().copied().unwrap_or(0),
        },
        vertices,
        report: SimReport {
            accelerator: "fab",
            workload: "FAB".into(),
            cycles,
            agg_cycles: 0,
            comb_cycles: 0,
            mem_cycles: 0,
            macs: 0,
            mem,
            energy: Default::default(),
            tdp_watts: 0.0,
            layers: Vec::new(),
        },
        stats: Default::default(),
        class_reports: Vec::new(),
        formats: Vec::new(),
        lite_reports: Vec::new(),
        lite_vertices: Vec::new(),
    }
}

fn fab_stream(profile: &[(u64, u32)]) -> Vec<PreparedRequest> {
    profile
        .iter()
        .enumerate()
        .map(|(i, &(cycles, pool))| {
            let vertices: Vec<u32> = (pool..pool + 6).collect();
            fab(i, cycles, 4096, vertices)
        })
        .collect()
}

/// Strategy: the traffic model under test (closed-loop client counts
/// kept small so the cap bites).
fn traffic_strategy() -> impl Strategy<Value = TrafficModel> {
    prop_oneof![
        Just(TrafficModel::Exponential),
        Just(TrafficModel::bursty_default()),
        Just(TrafficModel::diurnal_default()),
        (1usize..8).prop_map(|clients| TrafficModel::ClosedLoop { clients }),
    ]
}

/// Strategy: fleet shapes over a given engine count.
fn fleet_strategy(engines: usize) -> impl Strategy<Value = FleetSpec> {
    prop_oneof![
        Just(FleetSpec::uniform(engines)),
        Just(FleetSpec::uniform(engines).with_work_stealing()),
        Just(FleetSpec::mixed(engines, 1.5)),
        Just(FleetSpec::mixed(engines, 2.0).with_work_stealing()),
    ]
}

/// Strategy: a full scenario — fabricated stream, engines, seed, load,
/// traffic, fleet, optional SLO.
#[allow(clippy::type_complexity)]
fn scenario_strategy() -> impl Strategy<Value = (Vec<PreparedRequest>, QueueConfig)> {
    (
        proptest::collection::vec((1_000u64..2_000_000, 0u32..40), 1..40),
        1usize..5,
        0u64..1_000,
        1u32..30,
        0usize..SchedPolicy::ALL.len(),
        traffic_strategy(),
        proptest::option::of((10_000u64..5_000_000, proptest::bool::ANY)),
    )
        .prop_flat_map(
            |(profile, engines, seed, load_x10, policy_at, traffic, slo)| {
                (
                    Just(profile),
                    Just(engines),
                    Just(seed),
                    Just(load_x10),
                    Just(policy_at),
                    Just(traffic),
                    Just(slo),
                    fleet_strategy(engines),
                )
            },
        )
        .prop_map(
            |(profile, engines, seed, load_x10, policy_at, traffic, slo, fleet)| {
                let prepared = fab_stream(&profile);
                let mut cfg = QueueConfig::new(
                    engines,
                    SchedPolicy::ALL[policy_at],
                    load_x10 as f64 / 10.0,
                    seed,
                )
                .with_traffic(traffic)
                .with_fleet(fleet);
                if let Some((deadline, shed)) = slo {
                    cfg = cfg.with_slo(SloConfig::new(deadline, shed));
                }
                (prepared, cfg)
            },
        )
}

proptest! {
    #[test]
    fn open_loop_models_are_index_pure_and_monotone(
        seed in 0u64..1_000_000,
        mean in 0.0f64..100_000.0,
        n in 0usize..200,
    ) {
        let models: Vec<Box<dyn ArrivalModel>> = vec![
            Box::new(ArrivalProcess::new(seed, mean)),
            Box::new(BurstyArrivals::new(seed, mean, 16, 0.5, 0.2)),
            Box::new(DiurnalArrivals::new(seed, mean, 48, 0.8)),
        ];
        for model in models {
            let t = model.timeline(n);
            prop_assert_eq!(t.len(), n);
            prop_assert!(t.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
            prop_assert_eq!(model.timeline(n), t.clone(), "replay identical");
            // Index purity: any prefix of the timeline equals the
            // timeline of the prefix.
            let half = model.timeline(n / 2);
            prop_assert_eq!(&t[..n / 2], &half[..]);
            // And the gaps rebuild the timeline regardless of the order
            // they are drawn in.
            let mut acc = 0u64;
            for (i, &at) in t.iter().enumerate() {
                acc = acc.saturating_add(model.gap_cycles(i));
                prop_assert_eq!(acc, at);
            }
        }
    }

    #[test]
    fn every_scenario_conserves_requests_and_renders_finite_json(
        scenario in scenario_strategy(),
    ) {
        let (prepared, cfg) = scenario;
        let hw = HwConfig::default();
        let out = simulate_queue(&prepared, &cfg, &hw, 256);

        // Conservation: completed + shed = offered, with no overlap.
        prop_assert_eq!(out.records.len() + out.shed.len(), prepared.len());
        prop_assert_eq!(
            out.summary.completed + out.summary.shed as usize,
            out.summary.requests
        );
        let mut seen: Vec<usize> = out
            .records
            .iter()
            .map(|r| r.index)
            .chain(out.shed.iter().map(|s| s.index))
            .collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..prepared.len()).collect::<Vec<_>>());

        // Without shedding enabled nothing is ever shed.
        if !cfg.slo.map(|s| s.shed).unwrap_or(false) {
            prop_assert!(out.shed.is_empty());
        }

        // Basic timing sanity + service never exceeds the engine-scaled
        // cold estimate.
        for r in &out.records {
            prop_assert!(r.engine < cfg.engines);
            prop_assert!(r.start >= r.arrival);
            prop_assert_eq!(r.finish, r.start + r.service_cycles);
            let cold = prepared[r.index].report.cycles;
            let est = (cold as f64 * cfg.fleet.scales[r.engine]).round().max(1.0) as u64;
            prop_assert!(
                r.service_cycles <= est.max(1),
                "service {} > scaled cold {}", r.service_cycles, est
            );
        }
        prop_assert_eq!(
            out.engine_busy.iter().sum::<u64>(),
            out.records.iter().map(|r| r.service_cycles).sum::<u64>()
        );

        // Percentiles are over completed requests and ordered.
        let s = &out.summary;
        prop_assert!(s.p50_wait_cycles <= s.p95_wait_cycles);
        prop_assert!(s.p95_wait_cycles <= s.p99_wait_cycles);
        prop_assert!(s.p99_wait_cycles <= s.max_wait_cycles);
        prop_assert!(s.p50_e2e_cycles <= s.p95_e2e_cycles);
        prop_assert!(s.p95_e2e_cycles <= s.p99_e2e_cycles);
        prop_assert!(s.p99_e2e_cycles <= s.max_e2e_cycles);
        prop_assert!(s.utilization >= 0.0 && s.utilization <= 1.0);
        prop_assert!(s.shed_rate >= 0.0 && s.shed_rate <= 1.0);
        prop_assert!(s.violation_rate >= 0.0 && s.violation_rate <= 1.0);
        prop_assert!(s.warm_hits <= s.warm_lines);

        // Deterministic replay, down to the rendered bytes; no
        // non-finite field ever reaches the JSON.
        let again = simulate_queue(&prepared, &cfg, &hw, 256);
        prop_assert_eq!(&again, &out);
        let json = s.to_json("traffic-prop");
        prop_assert_eq!(&again.summary.to_json("traffic-prop"), &json);
        prop_assert!(
            !json.contains("inf") && !json.contains("NaN") && !json.contains("nan"),
            "non-finite field in {}", json
        );
    }

    #[test]
    fn violations_are_reported_iff_e2e_exceeds_deadline(
        scenario in scenario_strategy(),
    ) {
        let (prepared, cfg) = scenario;
        let hw = HwConfig::default();
        let out = simulate_queue(&prepared, &cfg, &hw, 256);
        let expected = match &cfg.slo {
            Some(slo) => out
                .records
                .iter()
                .filter(|r| r.e2e_cycles() > slo.deadline_cycles)
                .count() as u64,
            None => 0,
        };
        prop_assert_eq!(out.summary.violations, expected);
        // Shed requests are never double-counted as violations: the two
        // outcomes partition the offered stream.
        prop_assert!(out.summary.violations <= out.summary.completed as u64);
    }

    #[test]
    fn closed_loop_never_exceeds_k_requests_in_flight(
        profile in proptest::collection::vec((1_000u64..500_000, 0u32..20), 1..30),
        clients in 1usize..6,
        engines in 1usize..4,
        seed in 0u64..1_000,
        policy_at in 0usize..SchedPolicy::ALL.len(),
    ) {
        let prepared = fab_stream(&profile);
        let cfg = QueueConfig::new(engines, SchedPolicy::ALL[policy_at], 0.8, seed)
            .with_traffic(TrafficModel::ClosedLoop { clients });
        let out = simulate_queue(&prepared, &cfg, &HwConfig::default(), 256);
        prop_assert_eq!(out.records.len(), prepared.len());
        // In-flight = requests with arrival <= t < finish; probing at
        // every arrival instant covers all maxima (in-flight only grows
        // at arrivals).
        for r in &out.records {
            let t = r.arrival;
            let in_flight = out
                .records
                .iter()
                .filter(|o| o.arrival <= t && t < o.finish)
                .count();
            prop_assert!(
                in_flight <= clients,
                "{} in flight at {} with K={}", in_flight, t, clients
            );
        }
    }
}

#[test]
fn fully_shed_stream_keeps_summary_finite_and_zeroed() {
    // Every fabricated service needs >= 1000 cycles; a 1-cycle budget
    // rejects the entire stream at admission (the PR 3 empty-batch fix,
    // now on the shedding path).
    let prepared = fab_stream(&[(5_000, 0), (9_000, 3), (7_000, 6)]);
    for policy in SchedPolicy::ALL {
        let cfg = QueueConfig::new(2, policy, 0.8, 7).with_slo(SloConfig::new(1, true));
        let out = simulate_queue(&prepared, &cfg, &HwConfig::default(), 256);
        assert!(out.records.is_empty(), "{policy:?}");
        assert_eq!(out.shed.len(), 3, "{policy:?}");
        let s = &out.summary;
        assert_eq!(s.requests, 3);
        assert_eq!(s.completed, 0);
        assert_eq!(s.shed_rate, 1.0);
        assert_eq!(s.violations, 0);
        assert_eq!(s.makespan_cycles, 0);
        assert_eq!(s.throughput_rps, 0.0);
        assert_eq!(s.utilization, 0.0);
        assert_eq!(s.warm_hit_rate, 0.0);
        let json = s.to_json("all-shed");
        assert!(
            !json.contains("inf") && !json.contains("NaN") && !json.contains("nan"),
            "{policy:?}: {json}"
        );
    }
}

#[test]
fn bursty_arrivals_cluster_tighter_than_poisson() {
    // The squared coefficient of variation of bursty gaps must exceed
    // the Poisson baseline's — the burstiness the model exists for.
    let cv2 = |gaps: &[u64]| {
        let n = gaps.len() as f64;
        let mean = gaps.iter().sum::<u64>() as f64 / n;
        let var = gaps
            .iter()
            .map(|&g| (g as f64 - mean) * (g as f64 - mean))
            .sum::<f64>()
            / n;
        var / (mean * mean)
    };
    let exp_gaps: Vec<u64> = {
        let m = ArrivalProcess::new(11, 1000.0);
        (0..2048).map(|i| m.gap_cycles(i)).collect()
    };
    let bursty_gaps: Vec<u64> = {
        let m = BurstyArrivals::new(11, 1000.0, 16, 0.5, 0.2);
        (0..2048).map(|i| m.gap_cycles(i)).collect()
    };
    let (e, b) = (cv2(&exp_gaps), cv2(&bursty_gaps));
    assert!(b > e * 1.3, "bursty CV² {b} not above exponential CV² {e}");
}
