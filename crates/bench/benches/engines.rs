//! Criterion microbenches for the engine models: prefix-sum scan, sparse
//! aggregation vs dense aggregation, compressor, systolic cycle model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sgcn_engines::{Compressor, PrefixSumUnit, SparseAggregator, SystolicArray, SystolicConfig};
use sgcn_formats::{Beicsr, BeicsrConfig, Bitmap};
use sgcn_model::features::synthesize_features;

fn bench_prefix_sum(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefix_sum");
    g.throughput(Throughput::Elements(96));
    let unit = PrefixSumUnit::new(96);
    let m = synthesize_features(1, 96, 0.5, 7);
    let bm = Bitmap::from_values(m.row_slice(0));
    g.bench_function("scan_96", |b| b.iter(|| unit.scan(&bm)));
    g.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let m = synthesize_features(256, 256, 0.55, 5);
    let beicsr = Beicsr::encode(&m, BeicsrConfig::default());
    let agg = SparseAggregator::default();
    let mut g = c.benchmark_group("aggregation");
    g.throughput(Throughput::Elements(256 * 256));
    g.bench_function("sparse_rows", |b| {
        b.iter(|| {
            let mut acc = vec![0.0f32; 256];
            for r in 0..256 {
                agg.aggregate_row(&mut acc, &beicsr, r, 0.5);
            }
            acc
        })
    });
    g.bench_function("dense_rows", |b| {
        b.iter(|| {
            let mut acc = vec![0.0f32; 256];
            for r in 0..256 {
                agg.aggregate_dense(&mut acc, m.row_slice(r), 0.5);
            }
            acc
        })
    });
    g.finish();
}

fn bench_compressor(c: &mut Criterion) {
    let m = synthesize_features(256, 256, 0.0, 9);
    let comp = Compressor::new();
    let mut g = c.benchmark_group("compressor");
    g.throughput(Throughput::Elements(256 * 256));
    g.bench_function("relu_compress_256rows", |b| {
        b.iter(|| {
            let mut out = Beicsr::with_shape(256, 256, BeicsrConfig::default());
            let mut total = 0u64;
            for r in 0..256 {
                total += comp.relu_compress_row(m.row_slice(r), &mut out, r).nonzeros;
            }
            total
        })
    });
    g.finish();
}

fn bench_systolic(c: &mut Criterion) {
    let sa = SystolicArray::new(SystolicConfig::default());
    let mut g = c.benchmark_group("systolic");
    g.bench_function("cycle_model_sweep", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for m in [64usize, 256, 1024] {
                for k in [64usize, 256] {
                    total += sa.gemm_cycles(m, k, 256);
                }
            }
            total
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_prefix_sum,
    bench_aggregation,
    bench_compressor,
    bench_systolic
);
criterion_main!(benches);
