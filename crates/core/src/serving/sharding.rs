//! Sharded feature stores for million-vertex serving.
//!
//! The paper's datasets fit one accelerator's memory system; a
//! production deployment does not. This module partitions a graph's
//! input-feature store into contiguous per-shard vertex ranges (over
//! [`sgcn_graph::partition::VertexRange`]), replicates the highest-degree
//! *hub* vertices to every shard (power-law graphs concentrate sampling
//! traffic on a handful of hubs, so replicating them converts most
//! cross-shard hops into local reads), and prices the hops that remain
//! remote with a simple interconnect model: one round-trip latency per
//! distinct remote shard touched plus the feature bytes at link
//! bandwidth.
//!
//! Residency is indexed with word-level bitmaps ([`sgcn_formats::Bitmap`]):
//! one bitmap per shard marks every vertex whose feature row that shard
//! holds (its own range plus the replicated hubs). Intersecting a
//! request's sampled-vertex bitmap against a shard's residency bitmap
//! ([`Bitmap::and_count`]) answers "how many of this request's rows are
//! local to that shard?" in O(vertices / 64) word operations — the
//! primitive behind the `shard-affinity` routing policy, which stays
//! cheap even at fleet × million-vertex scale where per-vertex cache
//! peeks would not.
//!
//! Everything here is a pure function of `(degrees, shards, hubs)`:
//! plans, residency bitmaps and network costs are deterministic and
//! thread-count independent by construction.

use sgcn_formats::Bitmap;
use sgcn_graph::csr::CsrGraph;
use sgcn_graph::partition::VertexRange;

/// The modeled shard interconnect: every request pays one round-trip
/// per distinct remote shard it samples from, plus its remote feature
/// bytes at the link bandwidth. Integer-only arithmetic keeps the cost
/// bit-identical across platforms and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkModel {
    /// Round-trip latency to a remote shard (cycles).
    pub rtt_cycles: u64,
    /// Link bandwidth (bytes per cycle).
    pub bytes_per_cycle: u64,
}

impl Default for NetworkModel {
    /// A datacenter-style link: 500-cycle round trips, 16 B/cycle.
    fn default() -> Self {
        NetworkModel {
            rtt_cycles: 500,
            bytes_per_cycle: 16,
        }
    }
}

/// The network bill of serving one request from one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCost {
    /// Feature bytes fetched from remote shards.
    pub bytes: u64,
    /// Modeled transfer time: `rtt × touched_shards + ⌈bytes / bw⌉`.
    pub cycles: u64,
    /// Sampled vertices whose feature row was not resident locally.
    pub remote_vertices: u64,
    /// Distinct remote shards the request pulled rows from.
    pub touched_shards: u64,
}

/// A sharding of one graph's feature store: contiguous vertex ranges,
/// hub replication, per-shard residency bitmaps and the interconnect
/// model pricing cross-shard hops.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    vertices: usize,
    chunk: usize,
    ranges: Vec<VertexRange>,
    /// Replicated hub vertex ids, highest degree first (ties to the
    /// lower id).
    hubs: Vec<u32>,
    /// Per-shard residency over all vertices: the shard's own range
    /// plus every replicated hub.
    residency: Vec<Bitmap>,
    net: NetworkModel,
}

impl ShardPlan {
    /// Builds a plan from a degree sequence: `degrees[v]` is vertex
    /// `v`'s degree, vertices split into `shards` contiguous
    /// near-equal ranges, and the `replicate_hubs` highest-degree
    /// vertices (ties to the lower id) replicated to every shard.
    ///
    /// # Panics
    ///
    /// Panics if `degrees` is empty or `shards == 0`.
    pub fn from_degrees(
        degrees: &[usize],
        shards: usize,
        replicate_hubs: usize,
        net: NetworkModel,
    ) -> Self {
        let n = degrees.len();
        assert!(n > 0, "a shard plan needs at least one vertex");
        assert!(shards > 0, "a shard plan needs at least one shard");
        let chunk = n.div_ceil(shards);
        let ranges: Vec<VertexRange> = (0..shards)
            .map(|s| VertexRange::new((s * chunk).min(n), ((s + 1) * chunk).min(n)))
            .collect();
        let mut by_degree: Vec<u32> = (0..n as u32).collect();
        by_degree.sort_unstable_by_key(|&v| (std::cmp::Reverse(degrees[v as usize]), v));
        by_degree.truncate(replicate_hubs.min(n));
        let residency: Vec<Bitmap> = ranges
            .iter()
            .map(|r| {
                let mut bm = Bitmap::new(n);
                for v in r.iter() {
                    bm.set(v, true);
                }
                for &h in &by_degree {
                    bm.set(h as usize, true);
                }
                bm
            })
            .collect();
        ShardPlan {
            vertices: n,
            chunk,
            ranges,
            hubs: by_degree,
            residency,
            net,
        }
    }

    /// [`ShardPlan::from_degrees`] over a graph's own degree sequence,
    /// with the default interconnect.
    pub fn from_graph(graph: &CsrGraph, shards: usize, replicate_hubs: usize) -> Self {
        let degrees: Vec<usize> = (0..graph.num_vertices()).map(|v| graph.degree(v)).collect();
        ShardPlan::from_degrees(&degrees, shards, replicate_hubs, NetworkModel::default())
    }

    /// Vertex count of the sharded feature store.
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// The interconnect model.
    pub fn network(&self) -> NetworkModel {
        self.net
    }

    /// The replicated hub vertices, highest degree first.
    pub fn hubs(&self) -> &[u32] {
        &self.hubs
    }

    /// Shard `s`'s home vertex range.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn range(&self, s: usize) -> VertexRange {
        self.ranges[s]
    }

    /// The home shard of vertex `v` — O(1) range arithmetic, no lookup
    /// table.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn shard_of(&self, v: usize) -> usize {
        assert!(
            v < self.vertices,
            "vertex {v} out of range {}",
            self.vertices
        );
        v / self.chunk
    }

    /// The shard engine `e` serves from: engines are striped over
    /// shards round-robin, so any fleet width covers every shard.
    pub fn engine_shard(&self, e: usize) -> usize {
        e % self.ranges.len()
    }

    /// Shard `s`'s residency bitmap (home range + replicated hubs).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn residency(&self, s: usize) -> &Bitmap {
        &self.residency[s]
    }

    /// Whether shard `s` holds vertex `v`'s feature row.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `v` is out of range.
    pub fn is_resident(&self, s: usize, v: usize) -> bool {
        self.residency[s].get(v)
    }

    /// Feature rows stored on shard `s` (home range + hubs replicated
    /// from elsewhere) — the capacity-planning view of replication.
    pub fn stored_rows(&self, s: usize) -> u64 {
        self.residency[s].count_ones() as u64
    }

    /// A request's sampled-vertex bitmap over the full vertex space —
    /// the word-level operand for [`ShardPlan::resident_count`].
    /// Duplicate vertices collapse to one bit, matching the feature
    /// store's one-row-per-vertex layout.
    ///
    /// # Panics
    ///
    /// Panics if any vertex is out of range.
    pub fn request_residency(&self, vertices: &[u32]) -> Bitmap {
        let mut bm = Bitmap::new(self.vertices);
        for &v in vertices {
            bm.set(v as usize, true);
        }
        bm
    }

    /// How many of a request's sampled rows shard `s` holds locally —
    /// one word-level AND+popcount sweep.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range or the bitmap length disagrees
    /// with the plan's vertex count.
    pub fn resident_count(&self, s: usize, request: &Bitmap) -> u64 {
        self.residency[s].and_count(request)
    }

    /// Prices serving `vertices` from shard `s`: every non-resident
    /// row is fetched from its home shard, costing one round trip per
    /// distinct remote shard plus `row_bytes` per remote row at link
    /// bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `s` or any vertex is out of range.
    pub fn remote_cost(&self, s: usize, vertices: &[u32], row_bytes: u64) -> NetCost {
        let home = &self.residency[s];
        let mut touched = vec![false; self.ranges.len()];
        let mut remote = 0u64;
        for &v in vertices {
            let v = v as usize;
            if home.get(v) {
                continue;
            }
            remote += 1;
            touched[self.shard_of(v)] = true;
        }
        let shards = touched.iter().filter(|&&t| t).count() as u64;
        let bytes = remote * row_bytes;
        let transfer = if self.net.bytes_per_cycle > 0 {
            bytes.div_ceil(self.net.bytes_per_cycle)
        } else {
            0
        };
        NetCost {
            bytes,
            cycles: self.net.rtt_cycles * shards + transfer,
            remote_vertices: remote,
            touched_shards: shards,
        }
    }

    /// Stable display label (appears in queue summaries and golden
    /// snapshots): `"<shards>x<hubs>hub"`.
    pub fn label(&self) -> String {
        format!("{}x{}hub", self.ranges.len(), self.hubs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgcn_graph::builder::Normalization;
    use sgcn_graph::generate::power_law;

    fn plan_4x2() -> ShardPlan {
        // 10 vertices, degrees peak at 3 and 7.
        let degrees = [1, 2, 1, 9, 0, 2, 1, 8, 2, 1];
        ShardPlan::from_degrees(&degrees, 4, 2, NetworkModel::default())
    }

    #[test]
    fn ranges_partition_and_shard_of_agrees() {
        let plan = plan_4x2();
        assert_eq!(plan.shards(), 4);
        let total: usize = (0..4).map(|s| plan.range(s).len()).sum();
        assert_eq!(total, 10);
        for v in 0..10 {
            let s = plan.shard_of(v);
            assert!(plan.range(s).contains(v), "vertex {v} not in shard {s}");
        }
    }

    #[test]
    fn hubs_are_top_degree_and_replicated_everywhere() {
        let plan = plan_4x2();
        assert_eq!(plan.hubs(), &[3, 7]);
        for s in 0..4 {
            assert!(plan.is_resident(s, 3));
            assert!(plan.is_resident(s, 7));
        }
        // A non-hub vertex lives only on its home shard.
        for s in 0..4 {
            assert_eq!(plan.is_resident(s, 0), s == plan.shard_of(0));
        }
        // Stored rows = home range + foreign hubs.
        let s0 = plan.stored_rows(0) as usize;
        let foreign_hubs = [3usize, 7]
            .iter()
            .filter(|&&h| !plan.range(0).contains(h))
            .count();
        assert_eq!(s0, plan.range(0).len() + foreign_hubs);
    }

    #[test]
    fn remote_cost_prices_rtt_and_bytes() {
        let plan = plan_4x2();
        // Shard 0 homes 0..3 (chunk ⌈10/4⌉ = 3) and replicates hubs 3, 7.
        // Request touching {0, 3, 4, 9}: 0 and 3 local, 4 (shard 1) and
        // 9 (shard 3) remote → 2 remote rows from 2 distinct shards.
        let cost = plan.remote_cost(0, &[0, 3, 4, 9], 64);
        assert_eq!(cost.remote_vertices, 2);
        assert_eq!(cost.touched_shards, 2);
        assert_eq!(cost.bytes, 2 * 64);
        assert_eq!(cost.cycles, 2 * 500 + (128u64).div_ceil(16));
        // An all-local request is free.
        let free = plan.remote_cost(0, &[0, 1, 2, 3, 7], 64);
        assert_eq!(free, NetCost::default());
    }

    #[test]
    fn resident_count_matches_scalar_probe() {
        let plan = plan_4x2();
        let req = plan.request_residency(&[0, 3, 4, 9, 3]); // dup collapses
        assert_eq!(req.count_ones(), 4);
        for s in 0..4 {
            let expect = [0usize, 3, 4, 9]
                .iter()
                .filter(|&&v| plan.is_resident(s, v))
                .count() as u64;
            assert_eq!(plan.resident_count(s, &req), expect, "shard {s}");
        }
    }

    #[test]
    fn replication_monotonically_localizes_power_law_sampling() {
        let g = power_law(2048, 8.0, 2.0, 13, Normalization::Unit);
        let plain = ShardPlan::from_graph(&g, 4, 0);
        let replicated = ShardPlan::from_graph(&g, 4, 64);
        // Price a heavy multi-vertex request from every shard: hub
        // replication can only reduce the remote byte count.
        let sample: Vec<u32> = (0..2048).step_by(7).map(|v| v as u32).collect();
        for s in 0..4 {
            let a = plain.remote_cost(s, &sample, 64);
            let b = replicated.remote_cost(s, &sample, 64);
            assert!(b.bytes <= a.bytes, "shard {s}: {} > {}", b.bytes, a.bytes);
        }
        assert_eq!(replicated.hubs().len(), 64);
    }

    #[test]
    fn engine_striping_covers_all_shards() {
        let plan = plan_4x2();
        let covered: std::collections::BTreeSet<usize> =
            (0..6).map(|e| plan.engine_shard(e)).collect();
        assert_eq!(covered.len(), 4);
    }

    #[test]
    fn label_is_stable() {
        assert_eq!(plan_4x2().label(), "4x2hub");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardPlan::from_degrees(&[1, 2], 0, 0, NetworkModel::default());
    }

    #[test]
    fn single_shard_is_all_local() {
        let plan = ShardPlan::from_degrees(&[1, 2, 3], 1, 0, NetworkModel::default());
        assert_eq!(plan.remote_cost(0, &[0, 1, 2], 64), NetCost::default());
        assert_eq!(plan.stored_rows(0), 3);
    }
}
