//! Graph substrate for the SGCN reproduction.
//!
//! The SGCN accelerator consumes the graph topology in CSR form with
//! GCN-normalized edge weights (the paper's `Ã`). This crate provides:
//!
//! * [`CsrGraph`] — the normalized adjacency structure,
//! * [`GraphBuilder`] — edge-list ingestion with dedup, self-loops and the
//!   normalizations used by the GCN variants of the paper's Fig. 16,
//! * [`generate`] — synthetic topology generators (Erdős–Rényi, R-MAT, and
//!   a clustered stochastic block model reproducing the neighbor-similarity
//!   and diagonal-clustering structure of the paper's Fig. 7b),
//! * [`datasets`] — the nine-dataset catalog of Table II with scaled
//!   synthetic instantiation,
//! * [`partition`] — 2-D adjacency tiling used by GCNAX-style dataflows,
//! * [`reorder`] — BFS islandization (I-GCN) and degree ordering (EnGN),
//! * [`sampling`] — GraphSAGE-style per-request neighbor sampling with
//!   deterministic subgraph extraction (the serving subsystem's front end),
//! * [`stats`] — degree and locality statistics.
//!
//! # Example
//!
//! ```
//! use sgcn_graph::{GraphBuilder, Normalization};
//!
//! let graph = GraphBuilder::new(4)
//!     .undirected_edge(0, 1)
//!     .undirected_edge(1, 2)
//!     .undirected_edge(2, 3)
//!     .build(Normalization::Symmetric);
//! assert_eq!(graph.num_vertices(), 4);
//! // Self-loops are added by the symmetric GCN normalization.
//! assert!(graph.neighbors(0).contains(&0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod generate;
pub mod io;
pub mod partition;
pub mod reorder;
pub mod sampling;
pub mod stats;
pub mod traversal;

pub use builder::{GraphBuilder, Normalization};
pub use csr::CsrGraph;
pub use datasets::{Dataset, DatasetId, DatasetSpec};
pub use partition::{Tile, Tiling, VertexRange};
pub use sampling::{sample_neighborhood, Fanouts, SampledSubgraph};
pub use stats::GraphStats;
