//! Property-based tests on vertex partitioning: `sgcn_graph`'s tilings
//! and `sgcn`'s sharded feature-store plans both carve the vertex space
//! into ranges, and both carry the same contract — every vertex lands
//! in exactly one home range, the requested partition count is
//! respected, and the construction is a pure function of its inputs
//! (no RNG, no parallel stage), so plans are identical at any
//! `SGCN_THREADS`.

use proptest::prelude::*;
use sgcn::serving::sharding::ShardPlan;
use sgcn_graph::partition::Tiling;

/// Strategy: a vertex count and a pair of tile sizes that may or may
/// not divide it (the last tile of each axis is allowed to be ragged).
fn tiling_strategy() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..300, 1usize..64, 1usize..64)
}

/// Strategy: a degree table plus a shard count and hub budget. Degrees
/// are skewed toward small values with a few heavy entries, so hub
/// selection has real ties and real outliers to resolve; the shard
/// count may exceed the vertex count (trailing shards go empty).
fn plan_strategy() -> impl Strategy<Value = (Vec<usize>, usize, usize)> {
    (
        proptest::collection::vec(0usize..50, 1..400),
        1usize..9,
        0usize..40,
    )
}

proptest! {
    #[test]
    fn tiling_ranges_partition_every_vertex_exactly_once(
        t in tiling_strategy(),
    ) {
        let (n, dt, st) = t;
        let tiling = Tiling::new(n, dt, st);
        let mut seen = vec![0usize; n];
        for i in 0..tiling.dst_tiles() {
            for v in tiling.dst_range(i).iter() {
                seen[v] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "dst cover counts {:?}", seen);
        let mut seen = vec![0usize; n];
        for j in 0..tiling.src_tiles() {
            for v in tiling.src_range(j).iter() {
                seen[v] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "src cover counts {:?}", seen);
    }

    #[test]
    fn tiling_respects_tile_counts_and_row_major_order(
        t in tiling_strategy(),
    ) {
        let (n, dt, st) = t;
        let tiling = Tiling::new(n, dt, st);
        prop_assert_eq!(tiling.dst_tiles(), n.div_ceil(dt));
        prop_assert_eq!(tiling.src_tiles(), n.div_ceil(st));
        let tiles: Vec<_> = tiling.iter_row_major().collect();
        prop_assert_eq!(tiles.len(), tiling.dst_tiles() * tiling.src_tiles());
        for (k, tile) in tiles.iter().enumerate() {
            prop_assert_eq!(tile.dst, tiling.dst_range(k / tiling.src_tiles()));
            prop_assert_eq!(tile.src, tiling.src_range(k % tiling.src_tiles()));
        }
    }

    #[test]
    fn shard_ranges_partition_every_vertex_exactly_once(
        p in plan_strategy(),
    ) {
        let (degrees, shards, hubs) = p;
        let plan = ShardPlan::from_degrees(&degrees, shards, hubs, Default::default());
        let n = degrees.len();
        prop_assert_eq!(plan.vertices(), n);
        prop_assert_eq!(plan.shards(), shards, "shard count not respected");
        let mut seen = vec![0usize; n];
        for s in 0..plan.shards() {
            for v in plan.range(s).iter() {
                prop_assert_eq!(plan.shard_of(v), s, "shard_of disagrees with range");
                seen[v] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "home cover counts {:?}", seen);
    }

    #[test]
    fn residency_is_home_plus_replicated_hubs(
        p in plan_strategy(),
    ) {
        let (degrees, shards, hubs) = p;
        let plan = ShardPlan::from_degrees(&degrees, shards, hubs, Default::default());
        prop_assert_eq!(plan.hubs().len(), hubs.min(degrees.len()));
        for v in 0..degrees.len() {
            let copies = (0..plan.shards())
                .filter(|&s| plan.is_resident(s, v))
                .count();
            if plan.hubs().contains(&(v as u32)) {
                prop_assert_eq!(copies, plan.shards(), "hub {} not on every shard", v);
            } else {
                prop_assert_eq!(copies, 1, "vertex {} stored {} times", v, copies);
                prop_assert!(plan.is_resident(plan.shard_of(v), v), "vertex {} missing at home", v);
            }
        }
        // Stored rows close: every vertex once, plus each hub's extra
        // copy on every shard that is not already its home.
        let stored: u64 = (0..plan.shards()).map(|s| plan.stored_rows(s)).sum();
        let expected = degrees.len() as u64
            + plan.hubs().len() as u64 * (plan.shards() as u64 - 1);
        prop_assert_eq!(stored, expected, "stored rows do not close");
    }

    #[test]
    fn plans_are_deterministic_in_their_inputs(
        p in plan_strategy(),
    ) {
        let (degrees, shards, hubs) = p;
        let a = ShardPlan::from_degrees(&degrees, shards, hubs, Default::default());
        let b = ShardPlan::from_degrees(&degrees, shards, hubs, Default::default());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn resident_count_matches_per_vertex_scan(
        p in plan_strategy(),
    ) {
        let (degrees, shards, hubs) = p;
        let plan = ShardPlan::from_degrees(&degrees, shards, hubs, Default::default());
        // A pseudo-request touching every third vertex.
        let request: Vec<u32> = (0..degrees.len() as u32).step_by(3).collect();
        let bits = plan.request_residency(&request);
        for s in 0..plan.shards() {
            let naive = request
                .iter()
                .filter(|&&v| plan.is_resident(s, v as usize))
                .count() as u64;
            prop_assert_eq!(plan.resident_count(s, &bits), naive, "shard {} count diverges", s);
        }
    }
}
