//! Hardware configuration (the paper's Table III).

use sgcn_engines::SystolicConfig;
use sgcn_mem::{CacheConfig, CacheEngine, DramConfig, HbmGeneration};

/// The evaluated accelerator platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwConfig {
    /// Clock frequency in Hz (Table III: 1 GHz). Cycle counts are reported
    /// in this clock.
    pub frequency_hz: u64,
    /// Number of aggregation engines (Table III: 8).
    pub aggregation_engines: usize,
    /// SIMD lanes per aggregation engine (Table III: 16-way).
    pub simd_lanes: usize,
    /// Number of combination engines (Table III: 8).
    pub combination_engines: usize,
    /// Systolic array geometry per combination engine (Table III: 32×32).
    pub systolic: SystolicConfig,
    /// Global cache geometry (Table III: 512 KB, 16-way, LRU).
    pub cache: CacheConfig,
    /// Off-chip memory (Table III: HBM2, 256 GB/s, 8 channels, 4×4 banks).
    pub dram: DramConfig,
    /// Simulator implementation knob (not a hardware parameter): which
    /// cache model the memory system drives. `Flat` is the allocation-free
    /// fast path; `List` replays the original naive per-line path for the
    /// perf harness and equivalence tests. Both yield bit-identical
    /// [`crate::SimReport`]s.
    pub cache_engine: CacheEngine,
}

impl Default for HwConfig {
    fn default() -> Self {
        HwConfig {
            frequency_hz: 1_000_000_000,
            aggregation_engines: 8,
            simd_lanes: 16,
            combination_engines: 8,
            systolic: SystolicConfig::default(),
            cache: CacheConfig::default(),
            dram: DramConfig::hbm2(),
            cache_engine: CacheEngine::from_env(),
        }
    }
}

impl HwConfig {
    /// Replaces the cache capacity (Fig. 15b sensitivity).
    pub fn with_cache_kib(mut self, kib: u64) -> Self {
        self.cache = CacheConfig::with_capacity_kib(kib);
        self
    }

    /// Replaces the engine counts, keeping aggregation = combination
    /// (Fig. 18 scalability).
    pub fn with_engines(mut self, engines: usize) -> Self {
        assert!(engines > 0, "engine count must be non-zero");
        self.aggregation_engines = engines;
        self.combination_engines = engines;
        self
    }

    /// Selects the HBM generation (Fig. 18).
    pub fn with_hbm(mut self, gen: HbmGeneration) -> Self {
        self.dram = DramConfig::for_generation(gen);
        self
    }

    /// Replaces the cache replacement policy (policy ablation).
    pub fn with_cache_policy(mut self, policy: sgcn_mem::ReplacementPolicy) -> Self {
        self.cache.policy = policy;
        self
    }

    /// Selects the simulator's cache engine (fast flat path vs the naive
    /// reference path; see [`CacheEngine`]).
    pub fn with_cache_engine(mut self, engine: CacheEngine) -> Self {
        self.cache_engine = engine;
        self
    }

    /// Whether this configuration replays the naive reference path.
    pub fn is_naive(&self) -> bool {
        matches!(self.cache_engine, CacheEngine::List)
    }

    /// Peak aggregation MACs per cycle across engines.
    pub fn peak_agg_macs(&self) -> u64 {
        (self.aggregation_engines * self.simd_lanes) as u64
    }

    /// Peak combination MACs per cycle across engines.
    pub fn peak_comb_macs(&self) -> u64 {
        (self.combination_engines * self.systolic.rows * self.systolic.cols) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table3() {
        let c = HwConfig::default();
        assert_eq!(c.frequency_hz, 1_000_000_000);
        assert_eq!(c.aggregation_engines, 8);
        assert_eq!(c.simd_lanes, 16);
        assert_eq!(c.systolic.rows, 32);
        assert_eq!(c.cache.capacity_bytes, 512 * 1024);
        assert_eq!(c.dram.channels, 8);
        assert_eq!(c.peak_agg_macs(), 128);
        assert_eq!(c.peak_comb_macs(), 8 * 1024);
    }

    #[test]
    fn builders_adjust() {
        let c = HwConfig::default()
            .with_cache_kib(1024)
            .with_engines(16)
            .with_hbm(HbmGeneration::Hbm1);
        assert_eq!(c.cache.capacity_bytes, 1024 * 1024);
        assert_eq!(c.aggregation_engines, 16);
        assert!((c.dram.peak_bytes_per_cycle - 128.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "engine count")]
    fn zero_engines_panics() {
        let _ = HwConfig::default().with_engines(0);
    }
}
