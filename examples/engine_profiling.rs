//! Engine-level profiling: where do the cycles go inside one aggregation
//! engine? Drives the composed graph-reader → feature-reader → SIMD
//! datapath (paper Fig. 5) with dense vs BEICSR-sparse work, and checks
//! the §V-B claim that per-slice occupancy has small variance.
//!
//! Run with: `cargo run --release --example engine_profiling`

use sgcn_engines::datapath::{simulate_aggregation, DatapathConfig};
use sgcn_formats::stats::SliceStats;
use sgcn_formats::{Beicsr, BeicsrConfig};
use sgcn_graph::builder::Normalization;
use sgcn_graph::generate::{clustered, ClusterConfig};
use sgcn_model::features::synthesize_features;

fn main() {
    let graph = clustered(
        ClusterConfig {
            vertices: 1000,
            avg_degree: 10.0,
            ..ClusterConfig::default()
        },
        1,
        Normalization::Symmetric,
    );
    let width = 96;
    let features = synthesize_features(1000, width, 0.55, 2);
    let beicsr = Beicsr::encode(&features, BeicsrConfig::default());

    // §V-B: the per-slice occupancy distribution.
    let stats = SliceStats::measure(&beicsr);
    println!(
        "per-slice occupancy: mean {:.1} of {width}, σ {:.1}, CV {:.2}, >90%-full slots {:.2}%",
        stats.mean(),
        stats.std_dev(),
        stats.coefficient_of_variation(),
        100.0 * stats.outlier_fraction(0.9)
    );

    // Build the per-edge lane-work streams for the first 2000 edges.
    let mut dense_work = Vec::new();
    let mut sparse_work = Vec::new();
    'outer: for dst in 0..graph.num_vertices() {
        for &src in graph.neighbors(dst) {
            dense_work.push(width);
            sparse_work.push(beicsr.slot_nnz(src as usize, 0));
            if dense_work.len() >= 2000 {
                break 'outer;
            }
        }
    }

    let cfg = DatapathConfig::default();
    println!(
        "\n{:<8} {:>9} {:>7} {:>11} {:>13} {:>8}",
        "mode", "cycles", "busy", "edge-stall", "feat-stall", "util"
    );
    for (name, work) in [("dense", &dense_work), ("BEICSR", &sparse_work)] {
        let p = simulate_aggregation(cfg, work);
        println!(
            "{:<8} {:>9} {:>7} {:>11} {:>13} {:>7.1}%",
            name,
            p.cycles,
            p.busy_cycles,
            p.edge_stalls,
            p.feature_stalls,
            100.0 * p.utilization()
        );
    }
    println!("\nThe sparse stream finishes in roughly (1 − sparsity)× the dense cycles:\nonly non-zeros flow through the multiplier lanes (§V-D).");
}
