//! Synthetic topology generators.
//!
//! Real GCN datasets exhibit two structural properties the SGCN paper's
//! sparsity-aware cooperation exploits (§V-C, Fig. 7b): *community
//! clustering* (dense diagonal blocks in the adjacency matrix) and
//! *neighbor similarity* (adjacent rows share neighbors). The
//! [`clustered`] generator reproduces both; [`rmat`] adds the heavy-tailed
//! degree skew of web-scale graphs; [`erdos_renyi`] is the structure-free
//! control.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::{GraphBuilder, Normalization};
use crate::csr::CsrGraph;

/// Parameters of the clustered (stochastic-block-model-like) generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Target average undirected degree.
    pub avg_degree: f64,
    /// Community size (vertices per diagonal block).
    pub community_size: usize,
    /// Fraction of edge endpoints drawn inside the community (0..=1);
    /// the rest go to uniformly random vertices.
    pub intra_fraction: f64,
    /// Fraction of intra-community edges drawn as *near* neighbors
    /// (|u-v| small), producing neighbor similarity between adjacent IDs.
    pub locality_fraction: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            vertices: 1024,
            avg_degree: 8.0,
            community_size: 64,
            intra_fraction: 0.8,
            locality_fraction: 0.5,
        }
    }
}

/// Generates a community-clustered graph (see module docs).
///
/// # Panics
///
/// Panics if `vertices == 0` or `community_size == 0`.
pub fn clustered(config: ClusterConfig, seed: u64, norm: Normalization) -> CsrGraph {
    assert!(config.vertices > 0, "vertices must be non-zero");
    assert!(config.community_size > 0, "community size must be non-zero");
    let n = config.vertices;
    let mut rng = SmallRng::seed_from_u64(seed);
    let target_edges = ((n as f64 * config.avg_degree) / 2.0).round() as usize;
    let mut builder = GraphBuilder::new(n);
    let mut edges = Vec::with_capacity(target_edges);
    for _ in 0..target_edges {
        let u = rng.gen_range(0..n);
        let v = if rng.gen_bool(config.intra_fraction.clamp(0.0, 1.0)) {
            if rng.gen_bool(config.locality_fraction.clamp(0.0, 1.0)) {
                // Near neighbor: short ID distance → adjacent rows share
                // structure (neighbor similarity).
                let span = (config.community_size / 4).max(2);
                let delta = rng.gen_range(1..=span);
                if rng.gen_bool(0.5) {
                    (u + delta) % n
                } else {
                    (u + n - delta % n) % n
                }
            } else {
                // Same community block.
                let block = u / config.community_size;
                let lo = block * config.community_size;
                let hi = (lo + config.community_size).min(n);
                rng.gen_range(lo..hi)
            }
        } else {
            rng.gen_range(0..n)
        };
        if u != v {
            edges.push((u, v));
        }
    }
    builder = builder.undirected_edges(edges);
    builder.build(norm)
}

/// Generates an Erdős–Rényi style graph with the given average degree.
///
/// # Panics
///
/// Panics if `vertices == 0`.
pub fn erdos_renyi(vertices: usize, avg_degree: f64, seed: u64, norm: Normalization) -> CsrGraph {
    assert!(vertices > 0, "vertices must be non-zero");
    let mut rng = SmallRng::seed_from_u64(seed);
    let target_edges = ((vertices as f64 * avg_degree) / 2.0).round() as usize;
    let edges = (0..target_edges).filter_map(|_| {
        let u = rng.gen_range(0..vertices);
        let v = rng.gen_range(0..vertices);
        (u != v).then_some((u, v))
    });
    GraphBuilder::new(vertices)
        .undirected_edges(edges.collect::<Vec<_>>())
        .build(norm)
}

/// R-MAT parameters `(a, b, c, d)`; `a + b + c + d` must be ≈ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability (hub-to-hub).
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
}

impl Default for RmatParams {
    /// The classic Graph500-style skew.
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

/// Generates an R-MAT graph with `2^scale` vertices and roughly
/// `edge_factor · 2^scale` undirected edges.
///
/// # Panics
///
/// Panics if the quadrant probabilities do not sum to ≈ 1.
pub fn rmat(
    scale: u32,
    edge_factor: f64,
    params: RmatParams,
    seed: u64,
    norm: Normalization,
) -> CsrGraph {
    let sum = params.a + params.b + params.c + params.d;
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "rmat params must sum to 1, got {sum}"
    );
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let target = (edge_factor * n as f64).round() as usize;
    let mut edges = Vec::with_capacity(target);
    for _ in 0..target {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            edges.push((u, v));
        }
    }
    GraphBuilder::new(n).undirected_edges(edges).build(norm)
}

/// Generates a power-law graph over `vertices` vertices with roughly
/// `vertices · avg_degree / 2` undirected edges and a Zipf-like degree
/// tail of exponent `alpha` (> 1; smaller ⇒ heavier hubs).
///
/// Endpoints are drawn Chung–Lu style: rank `k` is picked with
/// probability ∝ `k^(−β)` where `β = 1/(α−1)` — the endpoint weight
/// that yields a degree tail of exponent `α` — via closed-form
/// inversion of the continuous CDF, then scattered across the ID space
/// with a fixed multiplicative hash so hubs do not cluster at low IDs
/// (a contiguous range partition would otherwise hand every hub to
/// shard 0). The draw is O(1) per endpoint with no per-vertex weight
/// table, which is what keeps this generator viable at the 10⁶–10⁷
/// vertex scale the sharding experiments run at.
///
/// # Panics
///
/// Panics if `vertices == 0` or `alpha <= 1`.
pub fn power_law(
    vertices: usize,
    avg_degree: f64,
    alpha: f64,
    seed: u64,
    norm: Normalization,
) -> CsrGraph {
    assert!(vertices > 0, "vertices must be non-zero");
    assert!(
        alpha > 1.0 && alpha.is_finite(),
        "power-law exponent must be finite and > 1, got {alpha}"
    );
    let n = vertices;
    let mut rng = SmallRng::seed_from_u64(seed);
    let beta = 1.0 / (alpha - 1.0);
    let draw = |rng: &mut SmallRng| -> usize {
        // Inverse-CDF sample of the density x^(−β) on [1, n+1) (the
        // β = 1 endpoint is the logarithmic limit), then hash-scatter.
        // The hash is a fixed odd constant, so the rank→ID map (and
        // with it the whole topology) is a pure function of the seed.
        let u: f64 = rng.gen();
        let x = if (beta - 1.0).abs() < 1e-9 {
            (n as f64).powf(u)
        } else {
            let t = (n as f64).powf(1.0 - beta);
            (1.0 + u * (t - 1.0)).powf(1.0 / (1.0 - beta))
        };
        let rank = (x.floor() as usize).clamp(1, n) - 1;
        ((rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n as u64) as usize
    };
    let target_edges = ((n as f64 * avg_degree) / 2.0).round() as usize;
    let mut edges = Vec::with_capacity(target_edges);
    for _ in 0..target_edges {
        let u = draw(&mut rng);
        let v = draw(&mut rng);
        if u != v {
            edges.push((u, v));
        }
    }
    GraphBuilder::new(n).undirected_edges(edges).build(norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn clustered_hits_degree_target() {
        let cfg = ClusterConfig {
            vertices: 2000,
            avg_degree: 10.0,
            ..ClusterConfig::default()
        };
        let g = clustered(cfg, 7, Normalization::Unit);
        assert_eq!(g.num_vertices(), 2000);
        // Dedup loses some edges; stay within a loose band.
        let d = g.avg_degree();
        assert!(d > 6.0 && d < 11.0, "avg degree {d}");
    }

    #[test]
    fn clustered_is_deterministic_per_seed() {
        let cfg = ClusterConfig::default();
        let g1 = clustered(cfg, 42, Normalization::Symmetric);
        let g2 = clustered(cfg, 42, Normalization::Symmetric);
        assert_eq!(g1, g2);
        let g3 = clustered(cfg, 43, Normalization::Symmetric);
        assert_ne!(g1, g3);
    }

    #[test]
    fn clustered_has_more_locality_than_erdos() {
        let cfg = ClusterConfig {
            vertices: 1500,
            avg_degree: 12.0,
            ..ClusterConfig::default()
        };
        let gc = clustered(cfg, 3, Normalization::Unit);
        let ge = erdos_renyi(1500, 12.0, 3, Normalization::Unit);
        let sc = GraphStats::compute(&gc).neighbor_id_distance;
        let se = GraphStats::compute(&ge).neighbor_id_distance;
        assert!(
            sc < se * 0.7,
            "clustered mean ID distance {sc} should be well below ER's {se}"
        );
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(10, 8.0, RmatParams::default(), 11, Normalization::Unit);
        let stats = GraphStats::compute(&g);
        // Heavy tail: max degree far above average.
        assert!(stats.max_degree as f64 > 6.0 * stats.avg_degree);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_bad_params_panic() {
        let p = RmatParams {
            a: 0.9,
            b: 0.9,
            c: 0.0,
            d: 0.0,
        };
        let _ = rmat(4, 2.0, p, 0, Normalization::Unit);
    }

    #[test]
    fn power_law_is_skewed_and_deterministic() {
        let g1 = power_law(4096, 8.0, 2.1, 9, Normalization::Unit);
        let g2 = power_law(4096, 8.0, 2.1, 9, Normalization::Unit);
        assert_eq!(g1, g2);
        assert_ne!(g1, power_law(4096, 8.0, 2.1, 10, Normalization::Unit));
        let stats = GraphStats::compute(&g1);
        assert_eq!(g1.num_vertices(), 4096);
        // Dedup and self-loop losses must stay modest: the endpoint
        // weights are Chung-Lu (∝ k^(-1/(α-1))), not raw Zipf, so the
        // top hub cannot swallow the edge budget.
        let d = g1.avg_degree();
        assert!(d > 5.0 && d < 9.0, "avg degree {d}");
        // Heavy tail: the biggest hub dwarfs the mean.
        assert!(
            stats.max_degree as f64 > 8.0 * stats.avg_degree,
            "max {} vs avg {}",
            stats.max_degree,
            stats.avg_degree
        );
    }

    #[test]
    fn power_law_heavier_alpha_means_bigger_hubs() {
        let heavy = power_law(4096, 8.0, 1.8, 5, Normalization::Unit);
        let light = power_law(4096, 8.0, 3.5, 5, Normalization::Unit);
        let h = GraphStats::compute(&heavy).max_degree;
        let l = GraphStats::compute(&light).max_degree;
        assert!(h > l, "alpha 1.8 max degree {h} should exceed 3.5's {l}");
    }

    #[test]
    #[should_panic(expected = "must be finite and > 1")]
    fn power_law_bad_alpha_panics() {
        let _ = power_law(16, 2.0, 1.0, 0, Normalization::Unit);
    }

    #[test]
    fn erdos_basic() {
        let g = erdos_renyi(500, 6.0, 1, Normalization::Symmetric);
        assert_eq!(g.num_vertices(), 500);
        assert!(g.num_edges() > 500);
    }
}
