//! The fast memory path must be invisible in the results: running any
//! accelerator model with the flat-array cache + batched span API must
//! produce a [`sgcn::SimReport`] **bit-identical** to the naive reference
//! path (recency-list cache, allocating per-span reads) — same cycles,
//! hits, misses, evictions, DRAM bytes, energy, everything.

use sgcn::accel::AccelModel;
use sgcn::experiments::ExperimentConfig;
use sgcn::workload::Workload;
use sgcn_graph::datasets::DatasetId;
use sgcn_mem::CacheEngine;

/// Runs one model on one quick-config dataset under both engines and
/// demands identical reports.
fn assert_engines_agree(model: &AccelModel, id: DatasetId) {
    let cfg = ExperimentConfig::quick();
    let wl = Workload::build(id, cfg.scale, cfg.network(), cfg.seed);
    let fast = model.simulate(&wl, &cfg.hw().with_cache_engine(CacheEngine::Flat));
    let naive = model.simulate(&wl, &cfg.hw().with_cache_engine(CacheEngine::List));
    assert_eq!(
        fast,
        naive,
        "{} on {}: fast path diverged from the naive reference",
        model.name,
        id.abbrev()
    );
}

#[test]
fn fig11_lineup_is_bit_identical_on_quick_config() {
    // The full lineup covers every dataflow: tiled/untiled, agg/comb
    // first, column product (psum banks), DAVC pinning, islandization,
    // and BEICSR compressed storage.
    for model in AccelModel::fig11_lineup() {
        assert_engines_agree(&model, DatasetId::Cora);
    }
}

#[test]
fn second_dataset_and_policies_are_bit_identical() {
    use sgcn_mem::ReplacementPolicy;
    assert_engines_agree(&AccelModel::sgcn(), DatasetId::PubMed);
    // Replacement-policy ablation paths too.
    let cfg = ExperimentConfig::quick();
    let wl = Workload::build(DatasetId::Cora, cfg.scale, cfg.network(), cfg.seed);
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Bip,
    ] {
        let hw = cfg.hw().with_cache_policy(policy);
        let fast = AccelModel::sgcn().simulate(&wl, &hw.with_cache_engine(CacheEngine::Flat));
        let naive = AccelModel::sgcn().simulate(&wl, &hw.with_cache_engine(CacheEngine::List));
        assert_eq!(fast, naive, "{policy:?} diverged");
    }
}

#[test]
fn serving_requests_are_bit_identical() {
    use sgcn::serving::{ServingConfig, ServingContext};
    use sgcn_graph::sampling::Fanouts;
    let cfg = ExperimentConfig::quick();
    let ctx = ServingContext::new(ServingConfig {
        dataset: DatasetId::Cora,
        scale: cfg.scale,
        fanouts: Fanouts::new(vec![8, 4]),
        width: cfg.width,
        seed: cfg.seed,
    });
    let requests = ctx.request_stream(6);
    for model in [AccelModel::sgcn(), AccelModel::gcnax()] {
        for req in &requests {
            let fast = ctx.serve(req, &model, &cfg.hw().with_cache_engine(CacheEngine::Flat));
            let naive = ctx.serve(req, &model, &cfg.hw().with_cache_engine(CacheEngine::List));
            assert_eq!(
                fast, naive,
                "{} on request {}: fast path diverged",
                model.name, req.index
            );
        }
    }
}

#[test]
fn format_study_is_bit_identical() {
    use sgcn::accel::sim::run_format_study;
    use sgcn_formats::FormatKind;
    let cfg = ExperimentConfig::quick();
    let wl = Workload::build(DatasetId::Cora, cfg.scale, cfg.network(), cfg.seed);
    for kind in [
        FormatKind::Dense,
        FormatKind::Csr,
        FormatKind::Beicsr,
        FormatKind::Coo,
    ] {
        let fast = run_format_study(kind, &wl, &cfg.hw().with_cache_engine(CacheEngine::Flat));
        let naive = run_format_study(kind, &wl, &cfg.hw().with_cache_engine(CacheEngine::List));
        assert_eq!(fast, naive, "{kind:?} diverged");
    }
}
