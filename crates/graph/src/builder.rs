//! Edge-list ingestion and GCN normalization.

use std::collections::BTreeSet;

use crate::csr::CsrGraph;

/// Edge-weight normalization applied when building `Ã` (§III-A and the
/// variants of Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Normalization {
    /// `D^(-1/2)·(A+I)·D^(-1/2)` — the vanilla GCN of Kipf & Welling.
    /// Adds self-loops.
    #[default]
    Symmetric,
    /// Row-mean normalization `D^(-1)·(A+I)` — GraphSAGE-mean style.
    /// Adds self-loops.
    RowMean,
    /// Unit weights, no self-loops — GINConv's unweighted sum aggregation
    /// ("the aggregation phase of GINConv does not require the edge
    /// weights", §VI-C).
    Unit,
}

/// Incremental builder for [`CsrGraph`].
///
/// Collects edges (deduplicated), then normalizes. Self-loops are inserted
/// by the normalizations that require them.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: BTreeSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: BTreeSet::new(),
        }
    }

    /// Adds the directed edge `dst ← src` (feature flow direction).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn directed_edge(mut self, dst: usize, src: usize) -> Self {
        self.push_edge(dst, src);
        self
    }

    /// Adds both directions of an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn undirected_edge(mut self, a: usize, b: usize) -> Self {
        self.push_edge(a, b);
        self.push_edge(b, a);
        self
    }

    /// Bulk-adds undirected edges.
    pub fn undirected_edges<I: IntoIterator<Item = (usize, usize)>>(mut self, iter: I) -> Self {
        for (a, b) in iter {
            self.push_edge(a, b);
            self.push_edge(b, a);
        }
        self
    }

    /// Number of distinct directed edges collected so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    fn push_edge(&mut self, dst: usize, src: usize) {
        assert!(
            dst < self.num_vertices && src < self.num_vertices,
            "edge ({dst}, {src}) out of range {}",
            self.num_vertices
        );
        self.edges.insert((dst as u32, src as u32));
    }

    /// Builds the normalized CSR topology.
    pub fn build(self, norm: Normalization) -> CsrGraph {
        let n = self.num_vertices;
        let mut edges = self.edges;
        if matches!(norm, Normalization::Symmetric | Normalization::RowMean) {
            for v in 0..n as u32 {
                edges.insert((v, v));
            }
        }

        // Degrees including self-loops where applicable (BTreeSet iterates
        // sorted by (dst, src), which is exactly CSR order).
        let mut degree = vec![0usize; n];
        for &(dst, _) in &edges {
            degree[dst as usize] += 1;
        }

        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(edges.len());
        row_ptr.push(0);
        {
            let mut cur = 0u32;
            for &(dst, src) in &edges {
                while cur < dst {
                    row_ptr.push(col_idx.len());
                    cur += 1;
                }
                col_idx.push(src);
            }
            while row_ptr.len() < n + 1 {
                row_ptr.push(col_idx.len());
            }
        }

        let mut weights = Vec::with_capacity(col_idx.len());
        for dst in 0..n {
            for &src in &col_idx[row_ptr[dst]..row_ptr[dst + 1]] {
                let src = src as usize;
                let w = match norm {
                    Normalization::Symmetric => {
                        1.0 / ((degree[dst] as f32).sqrt() * (degree[src].max(1) as f32).sqrt())
                    }
                    Normalization::RowMean => 1.0 / degree[dst] as f32,
                    Normalization::Unit => 1.0,
                };
                weights.push(w);
            }
        }

        CsrGraph::from_parts(row_ptr, col_idx, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle(norm: Normalization) -> CsrGraph {
        GraphBuilder::new(3)
            .undirected_edge(0, 1)
            .undirected_edge(1, 2)
            .undirected_edge(0, 2)
            .build(norm)
    }

    #[test]
    fn symmetric_adds_self_loops() {
        let g = triangle(Normalization::Symmetric);
        for v in 0..3 {
            assert!(g.neighbors(v).contains(&(v as u32)), "self loop at {v}");
            assert_eq!(g.degree(v), 3);
        }
        // Symmetric normalization of a 3-regular (with loops) graph: all
        // weights 1/3.
        for v in 0..3 {
            for &w in g.edge_weights(v) {
                assert!((w - 1.0 / 3.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn row_mean_rows_sum_to_one() {
        let g = triangle(Normalization::RowMean);
        for v in 0..3 {
            let sum: f32 = g.edge_weights(v).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {v} sums to {sum}");
        }
    }

    #[test]
    fn unit_has_no_self_loops_and_unit_weights() {
        let g = triangle(Normalization::Unit);
        for v in 0..3 {
            assert!(!g.neighbors(v).contains(&(v as u32)));
            assert!(g.edge_weights(v).iter().all(|&w| w == 1.0));
        }
    }

    #[test]
    fn dedup_on_repeated_edges() {
        let g = GraphBuilder::new(2)
            .undirected_edge(0, 1)
            .undirected_edge(0, 1)
            .directed_edge(0, 1)
            .build(Normalization::Unit);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn isolated_vertices_get_only_self_loop() {
        let g = GraphBuilder::new(3)
            .undirected_edge(0, 1)
            .build(Normalization::Symmetric);
        assert_eq!(g.neighbors(2), &[2]);
        assert_eq!(g.edge_weights(2), &[1.0]);
    }

    #[test]
    fn neighbors_sorted() {
        let g = GraphBuilder::new(5)
            .directed_edge(0, 4)
            .directed_edge(0, 2)
            .directed_edge(0, 3)
            .build(Normalization::Unit);
        assert_eq!(g.neighbors(0), &[2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = GraphBuilder::new(2).directed_edge(0, 2);
    }
}
