//! Fig. 12: ablation — baseline → non-sliced BEICSR → sliced BEICSR →
//! BEICSR + sparsity-aware cooperation.

use sgcn::experiments::fig12_ablation;
use sgcn_bench::{banner, experiment_config, selected_datasets};

fn main() {
    banner("Fig 12: ablation study");
    let cfg = experiment_config();
    let grid = fig12_ablation(&cfg, &selected_datasets());
    println!("{grid}");
    println!(
        "Paper shape: non-sliced BEICSR ≈ +21%, sliced BEICSR ≈ +39%, adding SAC\n\
         reaches 1.66× geomean; SAC gains most on clustered graphs (DB, PM, RD)."
    );
}
