//! Bounded, thread-safe memoization of pure functions.
//!
//! The experiment drivers re-use the same workloads and `(model,
//! workload, hw)` simulation points many times across a suite. Both are
//! pure functions of their (stringified) keys, so recalling a cached
//! value is **bit-identical** to rebuilding it — the cache can only
//! change *speed*, never results. [`BoundedMemo`] enforces a hard entry
//! cap so a paper-scale run's memory stays bounded, with the two
//! policies the drivers need:
//!
//! * [`BoundedMemo::get_or_insert`] — clear-at-cap: when the map is
//!   full, it is emptied before the new entry is inserted (cheap entries
//!   that are re-derivable, e.g. simulation reports).
//! * [`BoundedMemo::insert_if_room`] — drop-past-cap: once full, new
//!   entries are simply not cached and callers keep the freshly built
//!   value (large entries where the early, cross-driver keys are the
//!   hot ones, e.g. workloads).
//!
//! Either way `len() <= cap()` always holds.

use std::collections::HashMap;
use std::sync::Mutex;

/// A capacity-bounded `String → V` memo table behind a mutex.
#[derive(Debug)]
pub struct BoundedMemo<V> {
    cap: usize,
    map: Mutex<HashMap<String, V>>,
}

impl<V: Clone> BoundedMemo<V> {
    /// Creates an empty memo holding at most `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero (a zero-capacity memo would clear on
    /// every insert and cache nothing).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "memo capacity must be non-zero");
        BoundedMemo {
            cap,
            map: Mutex::new(HashMap::new()),
        }
    }

    /// The entry cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Entries currently cached (always `<= cap()`).
    pub fn len(&self) -> usize {
        self.map.lock().expect("memo poisoned").len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones the cached value for `key`, if any.
    pub fn get(&self, key: &str) -> Option<V> {
        self.map.lock().expect("memo poisoned").get(key).cloned()
    }

    /// Recalls `key` or runs `build` and caches the result, evicting
    /// (clearing) the whole table first when it is at capacity. `build`
    /// runs outside the lock, so concurrent misses on the same key may
    /// build twice — harmless for pure functions, whose results are
    /// identical.
    pub fn get_or_insert(&self, key: String, build: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let v = build();
        let mut guard = self.map.lock().expect("memo poisoned");
        if guard.len() >= self.cap {
            guard.clear();
        }
        guard.insert(key, v.clone());
        v
    }

    /// Drops every cached entry (the perf harness resets driver caches
    /// between repetitions so each one measures a cold-cache suite).
    pub fn clear(&self) {
        self.map.lock().expect("memo poisoned").clear();
    }

    /// Caches `value` under `key` only if the table has room, returning
    /// whether it was stored. Existing entries are never evicted.
    pub fn insert_if_room(&self, key: String, value: V) -> bool {
        let mut guard = self.map.lock().expect("memo poisoned");
        if guard.contains_key(&key) {
            return true;
        }
        if guard.len() >= self.cap {
            return false;
        }
        guard.insert(key, value);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pure function under memoization in these tests.
    fn f(x: u64) -> u64 {
        x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xABCD
    }

    #[test]
    fn recalls_cached_value_without_rebuilding() {
        let memo = BoundedMemo::new(8);
        let mut builds = 0;
        let a = memo.get_or_insert("k".into(), || {
            builds += 1;
            f(7)
        });
        let b = memo.get_or_insert("k".into(), || {
            builds += 1;
            unreachable!("cached key must not rebuild")
        });
        assert_eq!(a, b);
        assert_eq!(builds, 1);
    }

    #[test]
    fn evicts_at_bound_and_never_exceeds_it() {
        let memo = BoundedMemo::new(4);
        for x in 0..13u64 {
            memo.get_or_insert(format!("{x}"), || f(x));
            assert!(memo.len() <= memo.cap(), "len {} at x={x}", memo.len());
        }
        // 13 inserts through cap 4: cleared at x=4, 8, 12 → one survivor.
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.get("12"), Some(f(12)));
        assert_eq!(memo.get("3"), None, "pre-eviction entries are gone");
    }

    #[test]
    fn results_identical_across_eviction() {
        // Every value returned through the memo — cached, rebuilt, or
        // recomputed after an eviction — must equal the pure function.
        let memo = BoundedMemo::new(3);
        let mut first_pass = Vec::new();
        for x in 0..10u64 {
            first_pass.push(memo.get_or_insert(format!("{x}"), || f(x)));
        }
        for x in 0..10u64 {
            let again = memo.get_or_insert(format!("{x}"), || f(x));
            assert_eq!(again, first_pass[x as usize]);
            assert_eq!(again, f(x));
        }
    }

    #[test]
    fn insert_if_room_stops_at_cap() {
        let memo = BoundedMemo::new(2);
        assert!(memo.insert_if_room("a".into(), 1));
        assert!(memo.insert_if_room("b".into(), 2));
        assert!(!memo.insert_if_room("c".into(), 3), "cap reached");
        // Existing keys survive and report success without eviction.
        assert!(memo.insert_if_room("a".into(), 99));
        assert_eq!(memo.get("a"), Some(1), "existing entry not overwritten");
        assert_eq!(memo.get("c"), None);
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let memo = BoundedMemo::new(64);
        let out = crate::par_map_with(
            (0..256u64).collect(),
            |x| memo.get_or_insert(format!("{}", x % 16), || f(x % 16)),
            4,
        );
        for (x, v) in out.into_iter().enumerate() {
            assert_eq!(v, f(x as u64 % 16));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = BoundedMemo::<u64>::new(0);
    }
}
