//! Offline stand-in for the `criterion` crate (see `shims/README.md`).
//!
//! Provides the benchmarking surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — on a plain wall-clock harness: warm up, pick an iteration
//! count that fills a fixed measurement window, report mean time per
//! iteration (and derived throughput).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passes a measured routine to the harness.
pub struct Bencher<'a> {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    result_ns: &'a mut f64,
    measurement: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, auto-scaling the iteration count to fill the
    /// measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: time single iterations until the
        // routine's scale is known.
        let mut one = Duration::ZERO;
        for _ in 0..3 {
            let t = Instant::now();
            std::hint::black_box(routine());
            one = t.elapsed().max(Duration::from_nanos(1));
        }
        let iters = (self.measurement.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        *self.result_ns = t.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut ns = f64::NAN;
        let mut b = Bencher {
            result_ns: &mut ns,
            measurement: self.criterion.measurement,
        };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!("{}/{id}: {}{rate}", self.name, human_ns(ns));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; output is printed eagerly).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep CI-friendly: ~120 ms of measurement per benchmark.
        Criterion {
            measurement: Duration::from_millis(120),
        }
    }
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` over group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
