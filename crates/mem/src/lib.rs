//! Memory-hierarchy simulator for the SGCN reproduction.
//!
//! The paper's evaluation platform is a 512 KB 16-way LRU global cache in
//! front of an HBM2 memory modelled with DRAMsim3 (Table III). This crate
//! re-implements that stack:
//!
//! * [`Cache`] — set-associative, LRU, line-granular,
//! * [`Dram`] — HBM1/HBM2 channel/bank/row-buffer model with 64 B bursts,
//! * [`MemorySystem`] — the cache + DRAM front-end the accelerator models
//!   drive, with per-traffic-class accounting (topology / feature input /
//!   feature output / weights / partial sums — the paper's Fig. 14
//!   categories),
//! * [`EnergyModel`] — per-event energy for the compute/cache/DRAM
//!   breakdown of Fig. 13.
//!
//! # Example
//!
//! ```
//! use sgcn_mem::{CacheConfig, DramConfig, MemorySystem, Traffic};
//!
//! let mut mem = MemorySystem::new(CacheConfig::default(), DramConfig::hbm2());
//! mem.read(0x0, 256, Traffic::FeatureRead);
//! mem.read(0x0, 256, Traffic::FeatureRead); // hits in cache
//! let r = mem.report();
//! assert_eq!(r.cache.hits, 4);
//! assert_eq!(r.dram_bytes_read(), 256);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dram;
pub mod energy;
mod fastdiv;
pub mod system;

pub use cache::{Cache, CacheConfig, CacheEngine, CacheStats, ListCache, ReplacementPolicy};
pub use dram::{AddressMapping, Dram, DramConfig, DramStats, HbmGeneration};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use system::{MemReport, MemorySystem, SpanCounts, Traffic, TrafficStats};
