//! Driver-parallelism equivalence: results must be bit-identical when
//! `SGCN_THREADS` forces real multi-threading, even on a single-CPU
//! host where the default driver degenerates to serial execution.
//!
//! The serving path is the probe because it memoizes nothing — every
//! request simulation really re-runs under each thread count. The whole
//! check lives in **one** test function: `SGCN_THREADS` is process
//! state, and sibling tests in this binary would race the variable.

use sgcn::accel::AccelModel;
use sgcn::experiments::{serving_fanout_sweep, ExperimentConfig};
use sgcn::serving::{ServeSummary, ServingConfig, ServingContext};
use sgcn_graph::datasets::DatasetId;
use sgcn_graph::sampling::Fanouts;

fn serve_probe() -> (Vec<sgcn::serving::RequestReport>, String) {
    let cfg = ExperimentConfig::quick();
    let ctx = ServingContext::new(ServingConfig {
        dataset: DatasetId::Cora,
        scale: cfg.scale,
        fanouts: Fanouts::new(vec![8, 4]),
        width: cfg.width,
        seed: cfg.seed,
    });
    let stream = ctx.request_stream(48);
    let batch = ctx.serve_batch(&stream, &AccelModel::sgcn(), &cfg.hw());
    let json = ServeSummary::from_reports(&batch).to_json("probe");
    (batch, json)
}

#[test]
fn forced_two_and_four_workers_match_serial_bit_for_bit() {
    let cfg = ExperimentConfig::quick();

    std::env::set_var("SGCN_THREADS", "1");
    assert_eq!(sgcn_par::threads(), 1);
    let (serial_batch, serial_json) = serve_probe();
    let serial_grid = serving_fanout_sweep(&cfg, DatasetId::Cora, &[vec![6, 3]], 24);

    for workers in ["2", "4"] {
        std::env::set_var("SGCN_THREADS", workers);
        assert_eq!(sgcn_par::threads(), workers.parse::<usize>().unwrap());
        let (batch, json) = serve_probe();
        assert_eq!(
            batch, serial_batch,
            "SGCN_THREADS={workers} changed per-request reports"
        );
        assert_eq!(
            json, serial_json,
            "SGCN_THREADS={workers} changed the serving summary"
        );
        let grid = serving_fanout_sweep(&cfg, DatasetId::Cora, &[vec![6, 3]], 24);
        assert_eq!(
            grid, serial_grid,
            "SGCN_THREADS={workers} changed the fanout-sweep grid"
        );
    }
    std::env::remove_var("SGCN_THREADS");
}
