//! Coordinate-format features.
//!
//! COO stores a `(row, col, value)` triple per non-zero — 12 bytes at 32-bit
//! indices. The paper notes COO "has even more index overheads [than CSR]
//! because it stores both row and column indices for each non-zero element"
//! (§II-B); it exists here to reproduce that bar of Fig. 3.

use crate::layout::{align_up, Span, CACHELINE_BYTES};
use crate::traits::{ColRange, FeatureFormat};
use crate::DenseMatrix;

const TRIPLE_BYTES: u64 = 12;

/// Feature matrix as row-sorted COO triples with a per-row directory for
/// random access.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CooFeatures {
    rows: usize,
    cols: usize,
    /// Triples sorted by (row, col): parallel arrays for decoding.
    entry_rows: Vec<u32>,
    entry_cols: Vec<u32>,
    entry_vals: Vec<f32>,
    /// `directory[r]..directory[r+1]` indexes the row's triples.
    directory: Vec<u32>,
}

impl CooFeatures {
    /// Encodes a dense matrix into row-sorted COO.
    pub fn encode(dense: &DenseMatrix) -> Self {
        let rows = dense.rows();
        let cols = dense.cols();
        let mut entry_rows = Vec::new();
        let mut entry_cols = Vec::new();
        let mut entry_vals = Vec::new();
        let mut directory = Vec::with_capacity(rows + 1);
        directory.push(0);
        for r in 0..rows {
            for (c, &v) in dense.row_slice(r).iter().enumerate() {
                if v != 0.0 {
                    entry_rows.push(r as u32);
                    entry_cols.push(c as u32);
                    entry_vals.push(v);
                }
            }
            directory.push(entry_rows.len() as u32);
        }
        CooFeatures {
            rows,
            cols,
            entry_rows,
            entry_cols,
            entry_vals,
            directory,
        }
    }

    /// Total non-zeros stored.
    pub fn nnz(&self) -> usize {
        self.entry_vals.len()
    }

    fn row_bounds(&self, row: usize) -> (usize, usize) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        (
            self.directory[row] as usize,
            self.directory[row + 1] as usize,
        )
    }

    /// Triples live at offset 0; the directory follows, cacheline-aligned.
    fn directory_base(&self) -> u64 {
        align_up(self.nnz() as u64 * TRIPLE_BYTES, CACHELINE_BYTES)
    }
}

impl FeatureFormat for CooFeatures {
    fn format_name(&self) -> &'static str {
        "COO"
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn capacity_bytes(&self) -> u64 {
        self.directory_base() + (self.rows as u64 + 1) * 4
    }

    // The allocating span methods collect from the visitors below, so the
    // span arithmetic has a single source of truth.
    fn row_spans(&self, row: usize) -> Vec<Span> {
        let mut spans = Vec::with_capacity(2);
        self.for_each_row_span(row, &mut |s| spans.push(s));
        spans
    }

    fn slice_spans(&self, row: usize, range: ColRange) -> Vec<Span> {
        let mut spans = Vec::with_capacity(2);
        self.for_each_slice_span(row, range, &mut |s| spans.push(s));
        spans
    }

    fn write_spans(&self, row: usize) -> Vec<Span> {
        self.row_spans(row)
    }

    fn for_each_row_span(&self, row: usize, f: &mut dyn FnMut(Span)) {
        let (s, e) = self.row_bounds(row);
        f(Span::new(self.directory_base() + row as u64 * 4, 8));
        if e > s {
            f(Span::new(
                s as u64 * TRIPLE_BYTES,
                ((e - s) as u64 * TRIPLE_BYTES) as u32,
            ));
        }
    }

    fn for_each_slice_span(&self, row: usize, _range: ColRange, f: &mut dyn FnMut(Span)) {
        // Column information is interleaved with the payload, so a column
        // window still fetches the row's full triple run.
        self.for_each_row_span(row, f);
    }

    fn for_each_write_span(&self, row: usize, f: &mut dyn FnMut(Span)) {
        self.for_each_row_span(row, f);
    }

    fn decode_row(&self, row: usize) -> Vec<f32> {
        let (s, e) = self.row_bounds(row);
        let mut out = vec![0.0; self.cols];
        for i in s..e {
            out[self.entry_cols[i] as usize] = self.entry_vals[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrFeatures;

    fn sample() -> (DenseMatrix, CooFeatures) {
        let mut m = DenseMatrix::zeros(3, 6);
        m.set(0, 1, 1.5);
        m.set(0, 4, -0.5);
        m.set(2, 0, 2.0);
        m.set(2, 5, 3.0);
        let coo = CooFeatures::encode(&m);
        (m, coo)
    }

    #[test]
    fn roundtrip() {
        let (m, coo) = sample();
        for r in 0..m.rows() {
            assert_eq!(coo.decode_row(r), m.row(r), "row {r}");
        }
    }

    #[test]
    fn triple_overhead_exceeds_csr() {
        // COO's raw row payload (12 B/nnz) strictly exceeds CSR's (8 B/nnz).
        let (m, coo) = sample();
        let csr = CsrFeatures::encode(&m);
        let coo_raw: u64 = coo.row_spans(0).iter().map(|s| u64::from(s.bytes)).sum();
        let csr_raw: u64 = csr.row_spans(0).iter().map(|s| u64::from(s.bytes)).sum();
        assert!(coo_raw > csr_raw, "coo {coo_raw} vs csr {csr_raw}");
    }

    #[test]
    fn empty_row_costs_only_directory() {
        let (_, coo) = sample();
        let spans = coo.row_spans(1);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].bytes, 8);
    }

    #[test]
    fn slice_reads_full_row_run() {
        let (_, coo) = sample();
        assert_eq!(
            coo.slice_spans(2, ColRange::new(0, 3)),
            coo.row_spans(2),
            "column windows cannot avoid the interleaved triples"
        );
    }

    #[test]
    fn nnz_and_capacity() {
        let (_, coo) = sample();
        assert_eq!(coo.nnz(), 4);
        // 4 triples = 48 B → directory at 64; directory = 4 rows + 1 = 16 B.
        assert_eq!(coo.capacity_bytes(), 64 + 16);
    }
}
