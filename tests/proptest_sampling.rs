//! Property-based tests on the GraphSAGE-style neighbor sampler: every
//! sampled subgraph must be a valid self-contained CSR (sorted rows,
//! in-bounds local ids, no duplicate neighbors), deterministic for a
//! fixed seed, and bounded by the fanout schedule.

use proptest::prelude::*;
use sgcn_graph::sampling::{sample_neighborhood, Fanouts};
use sgcn_graph::{generate, CsrGraph, Normalization};

/// Strategy: a random Erdős–Rényi graph (with the GCN normalization's
/// self loops) plus a seed vertex and sampling seed.
fn scenario_strategy() -> impl Strategy<Value = (CsrGraph, u32, u64)> {
    (4usize..120, 1u32..70, 0u64..1_000_000).prop_map(|(n, deg_x10, seed)| {
        let g = generate::erdos_renyi(
            n,
            deg_x10 as f64 / 10.0,
            seed ^ 0x6,
            Normalization::Symmetric,
        );
        let seed_vertex = (seed % n as u64) as u32;
        (g, seed_vertex, seed)
    })
}

/// Strategy: a 1–3 hop fanout schedule with per-hop caps 1..8.
fn fanout_strategy() -> impl Strategy<Value = Fanouts> {
    proptest::collection::vec(1usize..8, 1..4).prop_map(Fanouts::new)
}

proptest! {
    #[test]
    fn subgraph_is_valid_csr(s in scenario_strategy(), f in fanout_strategy()) {
        let (g, seed_vertex, seed) = s;
        let sub = sample_neighborhood(&g, seed_vertex, &f, seed);
        let n = sub.num_vertices();
        prop_assert_eq!(sub.graph.num_vertices(), n);
        prop_assert!(n >= 1);
        for v in 0..n {
            let neigh = sub.graph.neighbors(v);
            // Sorted strictly ascending ⇒ no duplicates.
            prop_assert!(neigh.windows(2).all(|w| w[0] < w[1]), "row {} not sorted", v);
            prop_assert!(neigh.iter().all(|&u| (u as usize) < n), "row {} out of bounds", v);
            // Weights align with neighbors.
            prop_assert_eq!(sub.graph.edge_weights(v).len(), neigh.len());
        }
    }

    #[test]
    fn deterministic_for_fixed_seed(s in scenario_strategy(), f in fanout_strategy()) {
        let (g, seed_vertex, seed) = s;
        let a = sample_neighborhood(&g, seed_vertex, &f, seed);
        let b = sample_neighborhood(&g, seed_vertex, &f, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn fanout_caps_every_row_degree(s in scenario_strategy(), f in fanout_strategy()) {
        let (g, seed_vertex, seed) = s;
        let sub = sample_neighborhood(&g, seed_vertex, &f, seed);
        for v in 0..sub.num_vertices() {
            prop_assert!(
                sub.graph.degree(v) <= f.max_cap(),
                "vertex {} degree {} exceeds cap {}",
                v,
                sub.graph.degree(v),
                f.max_cap()
            );
        }
    }

    #[test]
    fn vertices_map_is_sorted_unique_and_covers_edges(
        s in scenario_strategy(),
        f in fanout_strategy(),
    ) {
        let (g, seed_vertex, seed) = s;
        let sub = sample_neighborhood(&g, seed_vertex, &f, seed);
        prop_assert_eq!(sub.vertices.len(), sub.num_vertices());
        prop_assert!(sub.vertices.windows(2).all(|w| w[0] < w[1]), "local→orig not sorted");
        prop_assert!(sub.vertices.iter().all(|&o| (o as usize) < g.num_vertices()));
        prop_assert_eq!(sub.vertices[sub.seed_local], seed_vertex);
        // Every sampled edge exists in the parent graph with its weight.
        for v in 0..sub.num_vertices() {
            let dst = sub.original_id(v) as usize;
            for (&src_local, &w) in sub.graph.neighbors(v).iter().zip(sub.graph.edge_weights(v)) {
                let src = sub.original_id(src_local as usize);
                let at = g.neighbors(dst).binary_search(&src);
                prop_assert!(at.is_ok(), "edge ({}, {}) missing in parent", dst, src);
                prop_assert_eq!(w, g.edge_weights(dst)[at.unwrap()]);
            }
        }
    }

    #[test]
    fn subgraph_size_is_bounded_by_fanout_product(
        s in scenario_strategy(),
        f in fanout_strategy(),
    ) {
        let (g, seed_vertex, seed) = s;
        let sub = sample_neighborhood(&g, seed_vertex, &f, seed);
        // Worst case: every hop discovers cap-many fresh vertices per
        // frontier vertex — 1 + c0 + c0·c1 + …
        let mut bound = 1usize;
        let mut frontier = 1usize;
        for &cap in f.caps() {
            frontier *= cap;
            bound += frontier;
        }
        prop_assert!(
            sub.num_vertices() <= bound,
            "{} vertices exceeds bound {}",
            sub.num_vertices(),
            bound
        );
        prop_assert!(sub.num_vertices() <= g.num_vertices());
    }

    #[test]
    fn sampling_seed_changes_only_the_sample_not_validity(
        s in scenario_strategy(),
        f in fanout_strategy(),
    ) {
        let (g, seed_vertex, seed) = s;
        // Two different sampling seeds both produce valid subgraphs
        // containing the seed vertex (they may or may not differ).
        for sd in [seed, seed ^ 0xDEAD_BEEF] {
            let sub = sample_neighborhood(&g, seed_vertex, &f, sd);
            prop_assert_eq!(sub.vertices[sub.seed_local], seed_vertex);
            prop_assert!(sub.graph.num_edges() >= 1, "seed row must sample something");
        }
    }
}
