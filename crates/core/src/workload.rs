//! Workloads: a dataset topology plus a traced deep-GCN inference.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use sgcn_formats::{Beicsr, BeicsrConfig, CsrFeatures, DenseMatrix, FeatureFormat, FormatKind};
use sgcn_graph::builder::Normalization;
use sgcn_graph::datasets::{Dataset, DatasetId, SynthScale};
use sgcn_graph::CsrGraph;
use sgcn_model::features::generate_input_features;
use sgcn_model::{GcnVariant, ModelTrace, NetworkConfig, ReferenceExecutor};

/// Identifies one cached boundary encoding: the matrix between layers
/// `b - 1` and `b` (trace index `b`) under one storage choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum FormatKey {
    /// BEICSR storage under a specific config.
    Beicsr(usize, BeicsrConfig),
    /// A Fig. 3-style study format.
    Kind(usize, FormatKind),
    /// CSR of an extremely sparse input matrix (§V-F first-layer path).
    Csr(usize),
}

/// One cached encoding (the variant is implied by its [`FormatKey`]).
#[derive(Clone)]
pub(crate) enum CachedFormat {
    Beicsr(Arc<Beicsr>),
    Generic(Arc<dyn FeatureFormat + Send + Sync>),
    Csr(Arc<CsrFeatures>),
}

/// Per-workload storage-encoding cache, shared by every simulation of the
/// same (possibly cloned) workload. Encodings are pure functions of
/// `(matrix, storage config)`, so recalling one returns a bit-identical
/// format — the driver sweeps (cache sizes, strip heights, HBM
/// generations, SAC on/off, …) re-simulate the same workload under many
/// hardware/model variants and previously re-encoded every boundary each
/// time. Bounded: past [`FormatCache::CAP`] entries new encodings are
/// simply not cached (the early cross-sweep encodings stay hot). The
/// naive path (`SGCN_NAIVE=1`) never consults it.
#[derive(Clone, Default)]
pub(crate) struct FormatCache {
    inner: Arc<Mutex<HashMap<FormatKey, CachedFormat>>>,
}

impl FormatCache {
    /// Entry cap: one entry is one encoded boundary matrix (comparable in
    /// size to the dense matrix itself), so the cap bounds the cache to a
    /// small multiple of the trace it shadows.
    const CAP: usize = 192;

    /// Recalls or builds (and, below the cap, stores) an encoding.
    pub(crate) fn get_or_build(
        &self,
        key: FormatKey,
        build: impl FnOnce() -> CachedFormat,
    ) -> CachedFormat {
        if let Some(hit) = self.inner.lock().expect("format cache poisoned").get(&key) {
            return hit.clone();
        }
        // Encode outside the lock (concurrent builders of the same key
        // duplicate the work once; first insert wins).
        let built = build();
        let mut map = self.inner.lock().expect("format cache poisoned");
        if let Some(hit) = map.get(&key) {
            return hit.clone();
        }
        if map.len() < Self::CAP {
            map.insert(key, built.clone());
        }
        built
    }
}

impl fmt::Debug for FormatCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.inner.lock().map(|m| m.len()).unwrap_or(0);
        write!(f, "FormatCache({n} entries)")
    }
}

/// Everything an accelerator simulation consumes: the (scaled) topology,
/// the network shape, and the per-layer feature matrices with their
/// measured sparsity.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Dataset identity and synthesis record.
    pub dataset: Dataset,
    /// Network shape.
    pub network: NetworkConfig,
    /// Per-layer feature matrices (index 0 = input `X¹`).
    pub trace: ModelTrace,
    /// Cached per-boundary storage encodings (fast path only).
    pub(crate) format_cache: FormatCache,
}

impl Workload {
    /// Builds the standard workload for a catalog dataset: synthesized
    /// topology, per-layer sparsity targets from the dataset's published
    /// trajectory, and a fast-synthesized trace.
    pub fn build(id: DatasetId, scale: SynthScale, network: NetworkConfig, seed: u64) -> Self {
        let norm = match network.variant {
            GcnVariant::Gcn => Normalization::Symmetric,
            GcnVariant::GinConv { .. } => Normalization::Unit,
            GcnVariant::GraphSage { .. } => Normalization::RowMean,
        };
        let dataset = Dataset::synthesize(id, scale, norm);
        let targets: Vec<f64> = (0..network.layers)
            .map(|l| {
                if network.residual {
                    dataset.intermediate_sparsity(l, network.layers)
                } else {
                    dataset.traditional_sparsity(l, network.layers)
                }
            })
            .collect();
        let input = generate_input_features(
            dataset.graph.num_vertices(),
            dataset.input_features,
            dataset.spec.input_sparsity,
            seed ^ 0xA11CE,
        );
        let exec = ReferenceExecutor::new(&dataset.graph, network, seed);
        let trace = exec.synthesize_trace(&input, &targets);
        Workload {
            dataset,
            network,
            trace,
            format_cache: FormatCache::default(),
        }
    }

    /// Builds a workload whose intermediate features all have one uniform
    /// synthetic sparsity — the paper's Fig. 19 sweep.
    pub fn build_with_uniform_sparsity(
        id: DatasetId,
        scale: SynthScale,
        network: NetworkConfig,
        sparsity: f64,
        seed: u64,
    ) -> Self {
        let dataset = Dataset::synthesize(id, scale, Normalization::Symmetric);
        let targets = vec![sparsity; network.layers];
        let input = generate_input_features(
            dataset.graph.num_vertices(),
            dataset.input_features,
            dataset.spec.input_sparsity,
            seed ^ 0xA11CE,
        );
        let exec = ReferenceExecutor::new(&dataset.graph, network, seed);
        let trace = exec.synthesize_trace(&input, &targets);
        Workload {
            dataset,
            network,
            trace,
            format_cache: FormatCache::default(),
        }
    }

    /// The topology.
    pub fn graph(&self) -> &CsrGraph {
        &self.dataset.graph
    }

    /// Vertices in the (scaled) workload.
    pub fn vertices(&self) -> usize {
        self.dataset.graph.num_vertices()
    }

    /// Input feature matrix `X¹`.
    pub fn input_features(&self) -> &DenseMatrix {
        self.trace.layer_features(0)
    }

    /// Directed edges the aggregation traverses per layer (GraphSAGE's
    /// sampling shrinks this).
    pub fn effective_edges(&self) -> usize {
        sgcn_model::layer::effective_edges(&self.dataset.graph, self.network.variant)
    }

    /// Pre-encodes every boundary matrix (`1..=layers`) in each of the
    /// given study formats into the shared `FormatCache`, so the
    /// per-(class, format) cold simulations of one serving request
    /// encode each boundary once instead of once per hardware class.
    /// Dense is skipped (the simulator borrows the trace matrix
    /// directly and never consults the cache for it).
    pub fn precache_boundary_formats(&self, kinds: &[FormatKind]) {
        for &kind in kinds {
            if matches!(kind, FormatKind::Dense) {
                continue;
            }
            for b in 1..=self.network.layers {
                crate::accel::sim::precache_boundary_kind(self, b, kind);
            }
        }
    }

    /// Bytes of one topology stream pass (CSR row pointers + indices,
    /// plus edge weights unless the variant ignores them).
    pub fn topology_bytes_per_layer(&self) -> u64 {
        let edges = self.effective_edges() as u64;
        let vertices = self.vertices() as u64 + 1;
        let per_edge = match self.network.variant {
            // GINConv needs no edge weights (§VI-C): index only.
            GcnVariant::GinConv { .. } => 4,
            _ => 8,
        };
        vertices * 4 + edges * per_edge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net() -> NetworkConfig {
        NetworkConfig::deep_residual(4, 64)
    }

    #[test]
    fn build_produces_consistent_shapes() {
        let w = Workload::build(DatasetId::Cora, SynthScale::tiny(), tiny_net(), 1);
        assert_eq!(w.trace.num_layers(), 4);
        assert_eq!(w.input_features().rows(), w.vertices());
        assert_eq!(w.trace.layer_features(1).cols(), 64);
        // Intermediate sparsity near the catalog value.
        let avg = w.trace.avg_intermediate_sparsity();
        assert!(
            (avg - w.dataset.spec.feature_sparsity).abs() < 0.08,
            "avg {avg}"
        );
    }

    #[test]
    fn uniform_sparsity_workload() {
        let w = Workload::build_with_uniform_sparsity(
            DatasetId::Cora,
            SynthScale::tiny(),
            tiny_net(),
            0.25,
            3,
        );
        assert!((w.trace.avg_intermediate_sparsity() - 0.25).abs() < 0.04);
    }

    #[test]
    fn gin_topology_is_smaller() {
        let gcn = Workload::build(DatasetId::Cora, SynthScale::tiny(), tiny_net(), 1);
        let gin = Workload::build(
            DatasetId::Cora,
            SynthScale::tiny(),
            tiny_net().with_variant(GcnVariant::GinConv { eps: 0.0 }),
            1,
        );
        // Per effective edge, GIN streams half the bytes (no weights).
        let gcn_per_edge = gcn.topology_bytes_per_layer() as f64 / gcn.effective_edges() as f64;
        let gin_per_edge = gin.topology_bytes_per_layer() as f64 / gin.effective_edges() as f64;
        assert!(gin_per_edge < gcn_per_edge * 0.7);
    }

    #[test]
    fn sage_samples_fewer_edges() {
        let gcn = Workload::build(DatasetId::Reddit, SynthScale::tiny(), tiny_net(), 1);
        let sage = Workload::build(
            DatasetId::Reddit,
            SynthScale::tiny(),
            tiny_net().with_variant(GcnVariant::GraphSage { sample: 2 }),
            1,
        );
        assert!(sage.effective_edges() < gcn.effective_edges());
    }

    #[test]
    fn traditional_network_is_less_sparse() {
        let modern = Workload::build(DatasetId::PubMed, SynthScale::tiny(), tiny_net(), 1);
        let trad = Workload::build(
            DatasetId::PubMed,
            SynthScale::tiny(),
            NetworkConfig::traditional(4, 64),
            1,
        );
        assert!(
            trad.trace.avg_intermediate_sparsity() < modern.trace.avg_intermediate_sparsity() * 0.6
        );
    }
}
