//! Design ablation: BEICSR's embedded-bitmap and in-place choices (§V-A)
//! measured in isolation against a separate-index variant and a packed
//! variable-length variant.

use sgcn::experiments::ablation_beicsr_design;
use sgcn_bench::{banner, experiment_config, selected_datasets};

fn main() {
    banner("Ablation: BEICSR design choices");
    let cfg = experiment_config();
    println!("{}", ablation_beicsr_design(&cfg, &selected_datasets()));
    println!(
        "Expected shape: moving the bitmap to a separate array or packing rows\n\
         variable-length both increase DRAM traffic relative to the paper's\n\
         embedded in-place layout (rows ≥ 1.0)."
    );
}
