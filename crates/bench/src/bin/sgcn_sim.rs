//! `sgcn_sim` — command-line driver for one-off simulations.
//!
//! ```text
//! Usage: sgcn_sim [options]
//!   --dataset <CR|CS|PM|NL|RD|FK|YP|DB|GH>   (default PM)
//!   --accel   <sgcn|gcnax|hygcn|awb|engn|igcn|all>  (default all)
//!   --layers  <n>        network depth        (default 28)
//!   --width   <n>        feature width        (default 256)
//!   --cache   <kib>      cache capacity KiB   (default 64)
//!   --engines <n>        engine count         (default 8)
//!   --hbm     <1|2>      HBM generation       (default 2)
//!   --slice   <elems>    BEICSR slice width   (default 96)
//!   --vertices <n>       synth vertex cap     (default 2048)
//!   --variant <gcn|gin|sage>                  (default gcn)
//! ```

use sgcn::accel::AccelModel;
use sgcn::config::HwConfig;
use sgcn::workload::Workload;
use sgcn_graph::datasets::{DatasetId, SynthScale};
use sgcn_mem::{HbmGeneration, Traffic};
use sgcn_model::{GcnVariant, NetworkConfig};

struct Options {
    dataset: DatasetId,
    accel: String,
    layers: usize,
    width: usize,
    cache_kib: u64,
    engines: usize,
    hbm: HbmGeneration,
    slice: usize,
    vertices: usize,
    variant: GcnVariant,
}

fn usage() -> ! {
    eprintln!(
        "usage: sgcn_sim [--dataset D] [--accel A] [--layers N] [--width N] \
         [--cache KIB] [--engines N] [--hbm 1|2] [--slice N] [--vertices N] \
         [--variant gcn|gin|sage]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        dataset: DatasetId::PubMed,
        accel: "all".into(),
        layers: 28,
        width: 256,
        cache_kib: 64,
        engines: 8,
        hbm: HbmGeneration::Hbm2,
        slice: 96,
        vertices: 2048,
        variant: GcnVariant::Gcn,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].as_str();
        let val = args.get(i + 1).unwrap_or_else(|| usage()).as_str();
        match key {
            "--dataset" => {
                opts.dataset = DatasetId::ALL
                    .into_iter()
                    .find(|d| d.abbrev().eq_ignore_ascii_case(val))
                    .unwrap_or_else(|| usage());
            }
            "--accel" => opts.accel = val.to_lowercase(),
            "--layers" => opts.layers = val.parse().unwrap_or_else(|_| usage()),
            "--width" => opts.width = val.parse().unwrap_or_else(|_| usage()),
            "--cache" => opts.cache_kib = val.parse().unwrap_or_else(|_| usage()),
            "--engines" => opts.engines = val.parse().unwrap_or_else(|_| usage()),
            "--hbm" => {
                opts.hbm = match val {
                    "1" => HbmGeneration::Hbm1,
                    "2" => HbmGeneration::Hbm2,
                    _ => usage(),
                }
            }
            "--slice" => opts.slice = val.parse().unwrap_or_else(|_| usage()),
            "--vertices" => opts.vertices = val.parse().unwrap_or_else(|_| usage()),
            "--variant" => {
                opts.variant = match val {
                    "gcn" => GcnVariant::Gcn,
                    "gin" => GcnVariant::GinConv { eps: 0.0 },
                    "sage" => GcnVariant::GraphSage { sample: 8 },
                    _ => usage(),
                }
            }
            _ => usage(),
        }
        i += 2;
    }
    opts
}

fn lineup_for(name: &str, slice: usize) -> Vec<AccelModel> {
    match name {
        "all" => AccelModel::fig11_lineup(),
        "sgcn" => vec![AccelModel::sgcn_with_slice(slice)],
        "gcnax" => vec![AccelModel::gcnax()],
        "hygcn" => vec![AccelModel::hygcn()],
        "awb" | "awb-gcn" => vec![AccelModel::awb_gcn()],
        "engn" => vec![AccelModel::engn()],
        "igcn" | "i-gcn" => vec![AccelModel::igcn()],
        _ => usage(),
    }
}

fn main() {
    let opts = parse_args();
    let scale = SynthScale {
        max_vertices: opts.vertices,
        max_avg_degree: 24.0,
        max_input_features: 2048,
    };
    let network = NetworkConfig::deep_residual(opts.layers, opts.width).with_variant(opts.variant);
    let workload = Workload::build(opts.dataset, scale, network, 2023);
    let hw = HwConfig::default()
        .with_cache_kib(opts.cache_kib)
        .with_engines(opts.engines)
        .with_hbm(opts.hbm);

    println!(
        "{}: {} vertices, {} effective edges, {} layers × {} features, sparsity {:.1}%",
        workload.dataset.spec.name,
        workload.vertices(),
        workload.effective_edges(),
        opts.layers,
        opts.width,
        100.0 * workload.trace.avg_intermediate_sparsity()
    );
    println!(
        "platform: {} engines, {} KiB cache, {:?}\n",
        opts.engines, opts.cache_kib, opts.hbm
    );
    println!(
        "{:<10} {:>12} {:>9} {:>14} {:>11} {:>10} {:>8}",
        "accel", "cycles", "time(ms)", "DRAM bytes", "cache-hit%", "energy(mJ)", "TDP(W)"
    );
    for model in lineup_for(&opts.accel, opts.slice) {
        let r = model.simulate(&workload, &hw);
        println!(
            "{:<10} {:>12} {:>9.3} {:>14} {:>10.1}% {:>10.2} {:>8.2}",
            r.accelerator,
            r.cycles,
            r.time_ms(),
            r.dram_bytes(),
            100.0 * r.mem.cache.hit_rate(),
            r.energy.total_mj(),
            r.tdp_watts
        );
        for kind in Traffic::ALL {
            let t = r.mem.traffic(kind);
            if t.dram_bytes > 0 {
                println!("             {:<12} {:>12} B", kind.label(), t.dram_bytes);
            }
        }
    }
}
