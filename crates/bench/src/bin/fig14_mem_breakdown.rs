//! Fig. 14: off-chip memory access breakdown on Reddit.

use sgcn::experiments::fig14_memory_breakdown;
use sgcn_bench::{banner, experiment_config};
use sgcn_graph::datasets::DatasetId;

fn main() {
    banner("Fig 14: memory access breakdown (Reddit)");
    let cfg = experiment_config();
    let grid = fig14_memory_breakdown(&cfg, DatasetId::Reddit);
    println!("{grid}");
    println!(
        "Paper shape: HyGCN is dominated by duplicate feature reads; AWB-GCN by\n\
         partial-sum spills; GCNAX/I-GCN are balanced; SGCN cuts feature traffic\n\
         by ~54% via the sparse representation."
    );
}
