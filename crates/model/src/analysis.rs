//! Feature-space analysis: over-smoothing and disentanglement metrics.
//!
//! The paper's background (§III-A) recalls that GCNs deeper than ~5 layers
//! without residual connections collapse — *over-smoothing*: all vertex
//! features converge to the same point, which is also why their
//! intermediate sparsity stays low (§II-A interprets high sparsity as the
//! network finding "disentangled representations"). These metrics make
//! that story measurable on [`crate::ModelTrace`]s.

use sgcn_formats::DenseMatrix;

use crate::reference::ModelTrace;

/// Mean pairwise cosine similarity of the rows of `m`, estimated over a
/// deterministic sample of row pairs (full O(n²) above a few hundred rows
/// is wasteful). 1.0 = fully over-smoothed (all rows parallel).
pub fn mean_pairwise_cosine(m: &DenseMatrix) -> f64 {
    let n = m.rows();
    if n < 2 {
        return 0.0;
    }
    // Deterministic pair sample: stride-based, covers the matrix evenly.
    let pairs = 512.min(n * (n - 1) / 2);
    let mut sum = 0.0f64;
    let mut count = 0usize;
    let mut a = 0usize;
    let mut b = n / 2;
    for k in 0..pairs {
        if a == b {
            b = (b + 1) % n;
        }
        sum += cosine(m.row_slice(a), m.row_slice(b));
        count += 1;
        a = (a + 1) % n;
        b = (b + 1 + k % 3) % n;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Cosine similarity of two vectors (0 when either is a zero vector).
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine requires equal lengths");
    let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a.iter().zip(b) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Over-smoothing trajectory: mean pairwise cosine similarity of each
/// traced layer's features. A rising curve toward 1.0 = collapsing
/// representation.
pub fn oversmoothing_trajectory(trace: &ModelTrace) -> Vec<f64> {
    (0..=trace.num_layers())
        .map(|l| mean_pairwise_cosine(trace.layer_features(l)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::synthesize_features;

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn cosine_length_mismatch_panics() {
        let _ = cosine(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn identical_rows_are_fully_smoothed() {
        let m = DenseMatrix::from_vec(4, 3, [1.0, 2.0, 3.0].repeat(4));
        assert!((mean_pairwise_cosine(&m) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_positive_rows_are_not_fully_smoothed() {
        let m = synthesize_features(100, 64, 0.5, 3);
        let s = mean_pairwise_cosine(&m);
        assert!(s < 0.9, "random features should not be collapsed: {s}");
        assert!(s > 0.0);
    }

    #[test]
    fn trajectory_has_layerplus1_points() {
        use crate::{NetworkConfig, ReferenceExecutor};
        use sgcn_graph::{generate, Normalization};
        let g = generate::erdos_renyi(50, 4.0, 1, Normalization::Symmetric);
        let exec = ReferenceExecutor::new(&g, NetworkConfig::deep_residual(3, 16), 1);
        let input = synthesize_features(50, 16, 0.8, 2);
        let trace = exec.infer(&input, &[0.5, 0.5, 0.5]);
        let traj = oversmoothing_trajectory(&trace);
        assert_eq!(traj.len(), 4);
        assert!(traj.iter().all(|&v| (-1.0..=1.0 + 1e-9).contains(&v)));
    }

    #[test]
    fn aggregation_increases_smoothing() {
        use crate::layer::aggregate;
        use crate::GcnVariant;
        use sgcn_graph::{generate, Normalization};
        // Repeated symmetric aggregation without nonlinearity smooths
        // features — the over-smoothing mechanism itself.
        let g = generate::erdos_renyi(80, 8.0, 2, Normalization::Symmetric);
        let mut x = synthesize_features(80, 32, 0.3, 5);
        let before = mean_pairwise_cosine(&x);
        for _ in 0..6 {
            x = aggregate(&g, &x, GcnVariant::Gcn, 0);
        }
        let after = mean_pairwise_cosine(&x);
        assert!(after > before + 0.1, "before {before} after {after}");
    }
}
