//! Fig. 16: performance on GINConv and GraphSAGE aggregation variants.

use sgcn::experiments::fig16_variants;
use sgcn_bench::{banner, experiment_config, selected_datasets};
use sgcn_model::GcnVariant;

fn main() {
    banner("Fig 16: GCN variants");
    let cfg = experiment_config();
    let datasets = selected_datasets();
    println!(
        "{}",
        fig16_variants(&cfg, &datasets, GcnVariant::GinConv { eps: 0.0 })
    );
    println!(
        "{}",
        fig16_variants(&cfg, &datasets, GcnVariant::GraphSage { sample: 8 })
    );
    println!(
        "Paper shape: GINConv (no edge weights → feature traffic dominates more)\n\
         slightly raises SGCN's edge to 1.69×; GraphSAGE's edge sampling shrinks\n\
         aggregation and softens it to 1.53×, still a clear win."
    );
}
