//! Memory-layout arithmetic shared by all formats.
//!
//! The SGCN paper's traffic argument is entirely about *cacheline- and
//! burst-aligned* transfers (§IV, §V-A): a format's useful compression only
//! translates to DRAM-traffic reduction if the bytes it avoids reading fall
//! on cachelines that are never touched. This module centralises the
//! alignment math so every format and the memory simulator agree on it.

use std::fmt;

/// Cacheline size in bytes, matching the 64 B line assumed throughout the
/// paper (§V-A uses "64B cachelines"; HBM2 bursts are modelled at the same
/// granularity).
pub const CACHELINE_BYTES: u64 = 64;

/// Bytes per feature element. The evaluated accelerator uses 32-bit fixed
/// point for features and weights (Table III), so 4 bytes.
pub const ELEM_BYTES: u64 = 4;

/// A contiguous byte range in a format's private address space.
///
/// Spans are produced by [`crate::FeatureFormat`] implementations and later
/// rebased onto the simulated physical address space by the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// Starting byte offset.
    pub offset: u64,
    /// Length in bytes. Zero-length spans are legal and mean "no traffic".
    pub bytes: u32,
}

impl Span {
    /// Creates a span covering `bytes` bytes starting at `offset`.
    pub fn new(offset: u64, bytes: u32) -> Self {
        Span { offset, bytes }
    }

    /// The first byte past the end of the span.
    pub fn end(&self) -> u64 {
        self.offset + u64::from(self.bytes)
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    /// Number of cachelines this span touches once issued to memory.
    pub fn cachelines(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            let first = self.offset / CACHELINE_BYTES;
            let last = (self.end() - 1) / CACHELINE_BYTES;
            last - first + 1
        }
    }

    /// Traffic in bytes after rounding the span out to cacheline boundaries.
    pub fn cacheline_bytes(&self) -> u64 {
        self.cachelines() * CACHELINE_BYTES
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}..{:#x})", self.offset, self.end())
    }
}

/// Rounds `value` up to the next multiple of `align`.
///
/// # Panics
///
/// Panics if `align` is zero.
pub fn align_up(value: u64, align: u64) -> u64 {
    assert!(align > 0, "alignment must be non-zero");
    value.div_ceil(align) * align
}

/// Number of whole cachelines needed to hold `bytes` bytes starting at an
/// aligned address.
pub fn cachelines(bytes: u64) -> u64 {
    bytes.div_ceil(CACHELINE_BYTES)
}

/// Total cacheline-rounded traffic for a set of spans, counting a line once
/// per span that touches it (the memory system deduplicates via the cache;
/// this helper is for format-level accounting).
pub fn cacheline_bytes_covering(spans: &[Span]) -> u64 {
    spans.iter().map(Span::cacheline_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 64), 128);
        assert_eq!(align_up(7, 1), 7);
    }

    #[test]
    #[should_panic(expected = "alignment must be non-zero")]
    fn align_up_zero_align_panics() {
        let _ = align_up(1, 0);
    }

    #[test]
    fn span_cachelines_aligned() {
        assert_eq!(Span::new(0, 64).cachelines(), 1);
        assert_eq!(Span::new(0, 65).cachelines(), 2);
        assert_eq!(Span::new(0, 128).cachelines(), 2);
    }

    #[test]
    fn span_cachelines_unaligned_crosses_boundary() {
        // 16 bytes starting at offset 56 straddles two lines.
        assert_eq!(Span::new(56, 16).cachelines(), 2);
        // The same 16 bytes aligned fits in one.
        assert_eq!(Span::new(0, 16).cachelines(), 1);
    }

    #[test]
    fn span_empty() {
        let s = Span::new(100, 0);
        assert!(s.is_empty());
        assert_eq!(s.cachelines(), 0);
        assert_eq!(s.cacheline_bytes(), 0);
    }

    #[test]
    fn covering_sums_per_span() {
        let spans = [Span::new(0, 64), Span::new(60, 8)];
        assert_eq!(cacheline_bytes_covering(&spans), 64 + 128);
    }

    #[test]
    fn span_display() {
        assert_eq!(Span::new(64, 64).to_string(), "[0x40..0x80)");
    }
}
