//! The batched serving harness behind `BENCH_serve.json`.
//!
//! Replays a seeded stream of sampled-subgraph requests (GraphSAGE
//! fanout 10×5 on PubMed) through SGCN via the parallel driver,
//! aggregates the per-request [`sgcn::SimReport`]s into latency-cycle
//! percentiles and throughput, and emits `BENCH_serve.json`.
//!
//! Every field of the JSON is a pure function of the request stream —
//! the batch fans out over `sgcn_par::par_map`, which returns results in
//! stream order — so the file is **byte-identical at any
//! `SGCN_THREADS`** (wall-clock timings go to stdout only). Knobs:
//! `SGCN_REQUESTS` (stream length, default 1000; 0 renders the all-zero
//! summary instead of aborting), `SGCN_QUICK=1` (test-scale graph),
//! `SGCN_SERVE_OUT` (output path).

use sgcn::accel::AccelModel;
use sgcn::serving::{ServeSummary, ServingConfig, ServingContext};
use sgcn_bench::{banner, experiment_config};
use sgcn_graph::datasets::DatasetId;
use sgcn_graph::sampling::Fanouts;

fn main() {
    banner("BENCH_serve harness (sampled-subgraph request replay)");
    let cfg = experiment_config();
    let requests: usize = std::env::var("SGCN_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);

    let fanouts = Fanouts::new(vec![10, 5]);
    let label = format!(
        "{} fanout {} SGCN",
        DatasetId::PubMed.abbrev(),
        fanouts.label()
    );
    let ctx = ServingContext::new(ServingConfig {
        dataset: DatasetId::PubMed,
        scale: cfg.scale,
        fanouts,
        width: cfg.width,
        seed: cfg.seed,
    });
    let stream = ctx.request_stream(requests);

    let t0 = std::time::Instant::now();
    let batch = ctx.serve_batch(&stream, &AccelModel::sgcn(), &cfg.hw());
    let wall = t0.elapsed().as_secs_f64();

    let s = ServeSummary::from_reports(&batch);
    println!("requests:        {}", s.requests);
    println!(
        "subgraph size:   {:.1} vertices / {:.1} edges (avg)",
        s.avg_vertices, s.avg_edges
    );
    println!(
        "latency cycles:  p50 {} / p95 {} / p99 {} / max {}",
        s.p50_cycles, s.p95_cycles, s.p99_cycles, s.max_cycles
    );
    println!("sim throughput:  {:.1} req/s at 1 GHz", s.throughput_rps);
    println!(
        "host replay:     {wall:.2}s wall ({:.1} req/s on {} thread(s))",
        requests as f64 / wall,
        sgcn_par::threads()
    );

    let json = s.to_json(&label);
    let path = std::env::var("SGCN_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
