//! Service-level objectives for the queueing simulator: per-request
//! deadlines, admission control (load shedding), and violation
//! accounting.
//!
//! A deployed fleet does not let its queues grow without bound: each
//! request carries a latency budget (its SLO), the dispatcher *sheds*
//! requests it predicts cannot meet that budget, and completed requests
//! that still blew the deadline are reported as *violations*. This
//! module holds the knobs ([`SloConfig`]) and the bookkeeping
//! ([`SloStats`]); the enforcement lives in the event loop
//! ([`super::queueing::simulate_queue`]):
//!
//! * **Admission** — at arrival the dispatcher predicts the request's
//!   end-to-end latency on the engine the policy picked (its backlog
//!   plus the request's estimated service time). If the prediction
//!   exceeds the deadline and shedding is enabled, the request is
//!   rejected on the spot — it never touches an engine, never warms a
//!   cache, and is counted in [`SloStats::shed`].
//! * **Violations** — a completed request whose end-to-end latency
//!   exceeds the deadline counts as a violation (shed requests do not:
//!   the two outcomes partition the non-met SLOs by whether the system
//!   spent service capacity on them).
//! * **The `slo-aware` policy** ([`super::queueing::SchedPolicy`])
//!   complements admission by serving queued requests earliest-deadline
//!   first, spending slack where it buys the most.

/// The SLO knobs of one queueing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloConfig {
    /// End-to-end latency budget per request (cycles, from arrival).
    pub deadline_cycles: u64,
    /// Whether admission control sheds requests predicted to miss the
    /// deadline. With shedding off every request is served and misses
    /// surface as violations only.
    pub shed: bool,
}

impl SloConfig {
    /// A deadline with load shedding enabled — the production posture.
    ///
    /// # Panics
    ///
    /// Panics if `deadline_cycles == 0` (a zero budget sheds everything
    /// by definition; demand it explicitly via [`SloConfig::new`] so a
    /// forgotten knob cannot silently blackhole a run).
    pub fn shedding(deadline_cycles: u64) -> Self {
        assert!(
            deadline_cycles > 0,
            "a zero-cycle deadline sheds every request; construct it explicitly via SloConfig::new"
        );
        SloConfig {
            deadline_cycles,
            shed: true,
        }
    }

    /// Fully explicit constructor (any deadline, shedding on or off).
    pub fn new(deadline_cycles: u64, shed: bool) -> Self {
        SloConfig {
            deadline_cycles,
            shed,
        }
    }

    /// The admission decision: would a request with `predicted_wait`
    /// cycles of queueing ahead of an `estimated_service`-cycle job
    /// still meet the deadline? (Pure — the event loop calls this with
    /// the policy-chosen engine's backlog.)
    pub fn admits(&self, predicted_wait: u64, estimated_service: u64) -> bool {
        // Predicted end-to-end vs budget, with saturation so an
        // estimate beyond the deadline rejects instead of wrapping.
        estimated_service <= self.deadline_cycles
            && predicted_wait <= self.deadline_cycles - estimated_service
    }

    /// Whether a completed request's end-to-end latency violates the
    /// deadline.
    pub fn violated(&self, e2e_cycles: u64) -> bool {
        e2e_cycles > self.deadline_cycles
    }
}

/// Aggregate SLO bookkeeping of one run. Offered = completed + shed —
/// the conservation law the proptests pin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloStats {
    /// Requests that entered the system (completed + shed).
    pub offered: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests rejected at admission.
    pub shed: u64,
    /// Completed requests whose end-to-end latency exceeded the
    /// deadline (0 when no SLO is configured).
    pub violations: u64,
}

impl SloStats {
    /// `shed / offered` (0 when nothing was offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }

    /// `violations / completed` (0 when nothing completed).
    pub fn violation_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.violations as f64 / self.completed as f64
        }
    }
}

/// The deadline class of one request. A production stream mixes
/// latency-sensitive *interactive* traffic (tight deadline, shed on
/// overload, generous retries — a user is waiting) with *batch*
/// traffic (loose deadline, never shed, few retries — a pipeline will
/// re-run). The class is assigned per request from the seeded mix in
/// [`ClassPolicy`], so it is pure in `(seed, request index)` and
/// thread-schedule independent like every other arrival property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RequestClass {
    /// Latency-sensitive foreground traffic.
    Interactive = 0,
    /// Throughput-oriented background traffic.
    Batch = 1,
}

impl RequestClass {
    /// Number of classes (the length of every per-class summary array).
    pub const COUNT: usize = 2;

    /// Stable report label.
    pub fn label(&self) -> &'static str {
        match self {
            RequestClass::Interactive => "interactive",
            RequestClass::Batch => "batch",
        }
    }

    /// Index into per-class arrays.
    pub fn idx(&self) -> usize {
        *self as usize
    }
}

/// The per-class service contract: a deadline expressed in mean cold
/// services (materialized to cycles once the prepared stream's mean
/// service time is known), the shed switch, and the class's own retry
/// budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassSlo {
    /// Deadline in multiples of the stream's mean cold service time.
    pub deadline_services: f64,
    /// Whether admission control sheds this class on predicted misses.
    pub shed: bool,
    /// Dispatch-attempt ceiling for this class under failure drills.
    pub max_attempts: u32,
}

/// Deadline-class mix of one queueing run: the seeded interactive
/// fraction, both class contracts, and the preemption switch (an
/// arriving interactive request may preempt an in-service batch
/// request; the preempted work re-queues and its residual re-prices
/// against the warm cache). Mutually exclusive with the single-class
/// [`SloConfig`] knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassPolicy {
    /// Probability that a request is interactive, drawn pure from
    /// `(seed, request index)`.
    pub interactive_frac: f64,
    /// Contract of the interactive class.
    pub interactive: ClassSlo,
    /// Contract of the batch class.
    pub batch: ClassSlo,
    /// Whether interactive arrivals preempt in-service batch work.
    pub preempt: bool,
    /// Per-request preemption ceiling — a batch request preempted this
    /// many times can no longer be chosen as a victim, so conservation
    /// cannot livelock (every preempted request still terminates).
    pub max_preemptions: u32,
}

impl ClassPolicy {
    /// The default two-class contract: interactive sheds at 3 mean
    /// services with 3 attempts; batch never sheds, runs to a 12-mean-
    /// service deadline with 2 attempts.
    pub fn mix(interactive_frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&interactive_frac),
            "interactive fraction must be in [0, 1], got {interactive_frac}"
        );
        ClassPolicy {
            interactive_frac,
            interactive: ClassSlo {
                deadline_services: 3.0,
                shed: true,
                max_attempts: 3,
            },
            batch: ClassSlo {
                deadline_services: 12.0,
                shed: false,
                max_attempts: 2,
            },
            preempt: false,
            max_preemptions: 2,
        }
    }

    /// Enables batch preemption by interactive arrivals.
    pub fn with_preemption(mut self) -> Self {
        self.preempt = true;
        self
    }

    /// The contract of `class`.
    pub fn slo(&self, class: RequestClass) -> &ClassSlo {
        match class {
            RequestClass::Interactive => &self.interactive,
            RequestClass::Batch => &self.batch,
        }
    }

    /// Stable report label, e.g. `classes:0.30+preempt`.
    pub fn label(&self) -> String {
        let p = if self.preempt { "+preempt" } else { "" };
        format!("classes:{:.2}{p}", self.interactive_frac)
    }

    /// Parses the `SGCN_CLASSES` knob. `Some(None)` for the explicit
    /// single-class spellings (`none` / `off` / empty), `Some(Some(_))`
    /// for `mix:<frac>` and `mix:<frac>+preempt`, `None` for anything
    /// else (callers hard-error listing the valid spellings).
    pub fn parse(text: &str) -> Option<Option<ClassPolicy>> {
        let t = text.trim();
        if t.is_empty() || t == "none" || t == "off" {
            return Some(None);
        }
        let rest = t.strip_prefix("mix:")?;
        let (frac, preempt) = match rest.strip_suffix("+preempt") {
            Some(head) => (head, true),
            None => (rest, false),
        };
        let frac: f64 = frac.parse().ok()?;
        if !(0.0..=1.0).contains(&frac) || !frac.is_finite() {
            return None;
        }
        let policy = ClassPolicy::mix(frac);
        Some(Some(if preempt {
            policy.with_preemption()
        } else {
            policy
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_predicted_e2e_vs_budget() {
        let slo = SloConfig::shedding(1000);
        assert!(slo.admits(0, 1000), "exact fit admits");
        assert!(slo.admits(400, 600));
        assert!(!slo.admits(401, 600), "one cycle over rejects");
        // Service alone beyond the budget rejects even with no wait.
        assert!(!slo.admits(0, 1001));
        // Saturation: enormous estimates reject instead of wrapping.
        assert!(!slo.admits(u64::MAX, u64::MAX));
    }

    #[test]
    fn violation_is_strictly_over_deadline() {
        let slo = SloConfig::new(500, false);
        assert!(!slo.violated(500));
        assert!(slo.violated(501));
    }

    #[test]
    #[should_panic(expected = "zero-cycle deadline")]
    fn zero_deadline_shedding_panics() {
        let _ = SloConfig::shedding(0);
    }

    #[test]
    fn stats_rates_guard_zero_denominators() {
        let zero = SloStats::default();
        assert_eq!(zero.shed_rate(), 0.0);
        assert_eq!(zero.violation_rate(), 0.0);
        let s = SloStats {
            offered: 10,
            completed: 6,
            shed: 4,
            violations: 3,
        };
        assert!((s.shed_rate() - 0.4).abs() < 1e-12);
        assert!((s.violation_rate() - 0.5).abs() < 1e-12);
        // The all-shed run keeps every rate finite.
        let all_shed = SloStats {
            offered: 5,
            completed: 0,
            shed: 5,
            violations: 0,
        };
        assert_eq!(all_shed.shed_rate(), 1.0);
        assert_eq!(all_shed.violation_rate(), 0.0);
    }

    #[test]
    fn class_policy_parse_and_label_round_trip() {
        assert_eq!(ClassPolicy::parse(""), Some(None));
        assert_eq!(ClassPolicy::parse("none"), Some(None));
        assert_eq!(ClassPolicy::parse("off"), Some(None));
        let plain = ClassPolicy::parse("mix:0.3").unwrap().unwrap();
        assert!(!plain.preempt);
        assert_eq!(plain.label(), "classes:0.30");
        let preempting = ClassPolicy::parse("mix:0.3+preempt").unwrap().unwrap();
        assert!(preempting.preempt);
        assert_eq!(preempting.label(), "classes:0.30+preempt");
        assert!((preempting.interactive_frac - 0.3).abs() < 1e-12);
        // Interactive is the tight contract, batch the loose one.
        assert!(preempting.interactive.deadline_services < preempting.batch.deadline_services);
        assert!(preempting.interactive.shed && !preempting.batch.shed);
        for bad in [
            "mix:", "mix:x", "mix:1.5", "mix:-0.1", "mix:nan", "classes", "0.3",
        ] {
            assert_eq!(ClassPolicy::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    #[should_panic(expected = "interactive fraction")]
    fn out_of_range_mix_panics() {
        let _ = ClassPolicy::mix(1.2);
    }

    #[test]
    fn class_slo_lookup_matches_fields() {
        let p = ClassPolicy::mix(0.5);
        assert_eq!(
            p.slo(RequestClass::Interactive).max_attempts,
            p.interactive.max_attempts
        );
        assert_eq!(
            p.slo(RequestClass::Batch).max_attempts,
            p.batch.max_attempts
        );
        assert_eq!(RequestClass::Interactive.idx(), 0);
        assert_eq!(RequestClass::Batch.idx(), 1);
        assert_eq!(RequestClass::COUNT, 2);
    }
}
