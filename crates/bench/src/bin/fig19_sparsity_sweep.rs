//! Fig. 19: speedup across synthetic uniform feature sparsity 5–95% for
//! Dense, CSR and SGCN storage.

use sgcn::experiments::fig19_sparsity_sweep;
use sgcn_bench::{banner, experiment_config, quick_mode};
use sgcn_graph::datasets::DatasetId;

fn main() {
    banner("Fig 19: sparsity sweep");
    let cfg = experiment_config();
    let pts: Vec<u32> = if quick_mode() {
        vec![10, 30, 50, 70, 90]
    } else {
        (1..=19).map(|i| i * 5).collect()
    };
    println!("{}", fig19_sparsity_sweep(&cfg, &pts, DatasetId::PubMed));
    println!(
        "Paper shape: Dense wins only below ~5% sparsity; SGCN wins essentially\n\
         everywhere above; CSR breaks even only beyond ~90% where its column\n\
         indices finally undercut the bitmap."
    );
}
