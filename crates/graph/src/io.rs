//! Edge-list I/O.
//!
//! The synthetic catalog stands in for datasets we cannot ship, but a
//! downstream user with the real files (SNAP/Planetoid edge lists) can
//! load them here: whitespace-separated `src dst` pairs, `#`-prefixed
//! comments, blank lines ignored.

use std::fmt;
use std::io::{BufRead, Write};

use crate::builder::{GraphBuilder, Normalization};
use crate::csr::CsrGraph;

/// Errors returned by the edge-list parser.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseGraphError {
    /// A line did not contain two integers.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// A vertex ID was outside `0..num_vertices`.
    VertexOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending ID.
        id: usize,
    },
    /// An underlying I/O error (message only, to keep the type `Eq`).
    Io(String),
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseGraphError::Malformed { line } => {
                write!(f, "malformed edge at line {line}: expected `src dst`")
            }
            ParseGraphError::VertexOutOfRange { line, id } => {
                write!(f, "vertex id {id} out of range at line {line}")
            }
            ParseGraphError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ParseGraphError {}

impl From<std::io::Error> for ParseGraphError {
    fn from(e: std::io::Error) -> Self {
        ParseGraphError::Io(e.to_string())
    }
}

/// Reads an undirected edge list into a normalized [`CsrGraph`].
///
/// `num_vertices` fixes the vertex-ID space (IDs must be `< num_vertices`).
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed lines, out-of-range IDs, or
/// I/O failures.
///
/// # Example
///
/// ```
/// use sgcn_graph::io::read_edge_list;
/// use sgcn_graph::Normalization;
///
/// let text = "# a triangle\n0 1\n1 2\n2 0\n";
/// let g = read_edge_list(text.as_bytes(), 3, Normalization::Unit)?;
/// assert_eq!(g.num_edges(), 6);
/// # Ok::<(), sgcn_graph::io::ParseGraphError>(())
/// ```
pub fn read_edge_list<R: BufRead>(
    reader: R,
    num_vertices: usize,
    norm: Normalization,
) -> Result<CsrGraph, ParseGraphError> {
    let mut builder = GraphBuilder::new(num_vertices);
    let mut edges = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (a, b) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err(ParseGraphError::Malformed { line: line_no }),
        };
        let a: usize = a
            .parse()
            .map_err(|_| ParseGraphError::Malformed { line: line_no })?;
        let b: usize = b
            .parse()
            .map_err(|_| ParseGraphError::Malformed { line: line_no })?;
        for id in [a, b] {
            if id >= num_vertices {
                return Err(ParseGraphError::VertexOutOfRange { line: line_no, id });
            }
        }
        if a != b {
            edges.push((a, b));
        }
    }
    builder = builder.undirected_edges(edges);
    Ok(builder.build(norm))
}

/// Writes the graph's directed edges as `dst src` lines (weights are not
/// serialized; they are recomputed by the normalization on load).
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# {} vertices, {} directed edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (dst, src, _) in graph.iter_edges() {
        writeln!(writer, "{dst} {src}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_triangle_with_comments() {
        let text = "# comment\n\n0 1\n1 2\n0 2\n";
        let g = read_edge_list(text.as_bytes(), 3, Normalization::Unit).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn malformed_line_errors_with_position() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(text.as_bytes(), 3, Normalization::Unit).unwrap_err();
        assert_eq!(err, ParseGraphError::Malformed { line: 2 });
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn out_of_range_vertex_errors() {
        let text = "0 9\n";
        let err = read_edge_list(text.as_bytes(), 3, Normalization::Unit).unwrap_err();
        assert_eq!(err, ParseGraphError::VertexOutOfRange { line: 1, id: 9 });
    }

    #[test]
    fn single_token_line_is_malformed() {
        let err = read_edge_list("5\n".as_bytes(), 8, Normalization::Unit).unwrap_err();
        assert_eq!(err, ParseGraphError::Malformed { line: 1 });
    }

    #[test]
    fn self_loops_dropped_on_parse() {
        let g = read_edge_list("1 1\n0 1\n".as_bytes(), 2, Normalization::Unit).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn write_read_roundtrip() {
        let text = "0 1\n1 2\n2 3\n0 3\n";
        let g = read_edge_list(text.as_bytes(), 4, Normalization::Symmetric).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), 4, Normalization::Symmetric).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn extra_columns_tolerated() {
        // SNAP files sometimes carry weights/timestamps in later columns.
        let g = read_edge_list("0 1 0.5 12345\n".as_bytes(), 2, Normalization::Unit).unwrap();
        assert_eq!(g.num_edges(), 2);
    }
}
