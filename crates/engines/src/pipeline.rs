//! Phase pipelining.
//!
//! The baseline architecture pipelines the aggregation and combination
//! phases across tiles (§III-B: "others implement separate units and
//! pipeline two phases", which the SGCN architecture follows). With two
//! stages, tile *i*'s combination overlaps tile *i+1*'s aggregation; the
//! classic two-stage pipeline latency is the first stage's fill time plus
//! the per-step maxima.

/// Latency of a two-stage pipeline over per-item `(stage0, stage1)` times.
///
/// Returns `stage0[0] + Σ max(stage0[i+1], stage1[i]) + stage1[last]`-style
/// scheduling, computed exactly by simulating stage availability.
pub fn two_stage_pipeline(items: &[(u64, u64)]) -> u64 {
    let mut stage0_free = 0u64; // when the aggregation unit frees up
    let mut stage1_free = 0u64; // when the combination unit frees up
    for &(s0, s1) in items {
        let s0_done = stage0_free + s0;
        stage0_free = s0_done;
        let s1_start = s0_done.max(stage1_free);
        stage1_free = s1_start + s1;
    }
    stage0_free.max(stage1_free)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(two_stage_pipeline(&[]), 0);
    }

    #[test]
    fn single_item_is_sum() {
        assert_eq!(two_stage_pipeline(&[(10, 5)]), 15);
    }

    #[test]
    fn balanced_stages_overlap() {
        // 4 items of (10, 10): 10 fill + 4*10 drain-side = 50, vs 80 serial.
        assert_eq!(two_stage_pipeline(&[(10, 10); 4]), 50);
    }

    #[test]
    fn bottleneck_stage_dominates() {
        // Stage 1 is 3× slower: latency ≈ fill + 4×30.
        assert_eq!(two_stage_pipeline(&[(10, 30); 4]), 10 + 4 * 30);
        // Stage 0 slower: latency ≈ 4×30 + drain 10.
        assert_eq!(two_stage_pipeline(&[(30, 10); 4]), 4 * 30 + 10);
    }

    #[test]
    fn never_better_than_max_stage_sum() {
        let items = [(7, 13), (29, 3), (11, 17)];
        let total = two_stage_pipeline(&items);
        let s0: u64 = items.iter().map(|i| i.0).sum();
        let s1: u64 = items.iter().map(|i| i.1).sum();
        assert!(total >= s0.max(s1));
        assert!(total <= s0 + s1);
    }
}
