//! Failure-drill proptests: request conservation across the three
//! terminal states (completed + shed + failed = offered, exactly), the
//! retry budget as a hard ceiling on dispatch attempts, the outage
//! invariant (no request is ever served inside an engine's effective
//! down window), cold recovery (the first request an engine serves
//! after coming back up finds an empty cache), the SLO invariant under
//! drills, bit-exact determinism of drilled runs, and the arrival-trace
//! record→replay round trip.
//!
//! Like `proptest_traffic.rs`, the property bodies drive the event loop
//! with fabricated service profiles — no accelerator simulation inside
//! the loops.

use proptest::prelude::*;
use sgcn::serving::queueing::{
    simulate_queue, ArrivalTrace, FailureModel, Incident, PreparedRequest, QueueConfig,
    RetryPolicy, ScalePolicy, SchedPolicy, SloConfig, TrafficModel,
};
use sgcn::serving::Request;
use sgcn::{HwConfig, SimReport};

/// Fabricates a prepared request with a given cold service time, sampled
/// working set and feature-read DRAM footprint — the event loop consumes
/// nothing else of the report.
fn fab(index: usize, cycles: u64, feature_read_bytes: u64, vertices: Vec<u32>) -> PreparedRequest {
    let mut mem = sgcn_mem::MemReport::default();
    mem.per_class[1].dram_bytes = feature_read_bytes;
    PreparedRequest {
        request: Request {
            index,
            seed_vertex: vertices.first().copied().unwrap_or(0),
        },
        vertices,
        report: SimReport {
            accelerator: "fab",
            workload: "FAB".into(),
            cycles,
            agg_cycles: 0,
            comb_cycles: 0,
            mem_cycles: 0,
            macs: 0,
            mem,
            energy: Default::default(),
            tdp_watts: 0.0,
            layers: Vec::new(),
        },
        stats: Default::default(),
        class_reports: Vec::new(),
        formats: Vec::new(),
        lite_reports: Vec::new(),
        lite_vertices: Vec::new(),
    }
}

fn fab_stream(profile: &[(u64, u32)]) -> Vec<PreparedRequest> {
    profile
        .iter()
        .enumerate()
        .map(|(i, &(cycles, pool))| {
            let vertices: Vec<u32> = (pool..pool + 6).collect();
            fab(i, cycles, 4096, vertices)
        })
        .collect()
}

/// Strategy: a failure model. Scripted incidents are built per-engine
/// disjoint (gap-then-duration accumulation), matching the guarantee
/// [`FailureModel::Mtbf`] materialization gives.
fn faults_strategy(engines: usize) -> impl Strategy<Value = FailureModel> {
    let scripted =
        proptest::collection::vec((0..engines, 1_000u64..3_000_000, 1_000u64..2_000_000), 0..5)
            .prop_map(|draws| {
                let mut cursor = [0u64; 16];
                let mut incidents = Vec::new();
                for (engine, gap, dur) in draws {
                    let down_at = cursor[engine] + gap;
                    let up_at = down_at + dur;
                    cursor[engine] = up_at;
                    incidents.push(Incident {
                        engine,
                        down_at,
                        up_at,
                    });
                }
                FailureModel::Scripted(incidents)
            });
    prop_oneof![
        Just(FailureModel::None),
        scripted,
        (2u32..30, 1u32..12, 1usize..4).prop_map(|(mtbf, mttr, k)| FailureModel::Mtbf {
            mtbf_services: mtbf as f64,
            mttr_services: mttr as f64,
            incidents_per_engine: k,
        }),
    ]
}

/// Strategy: a full drill scenario — fabricated stream, engines, seed,
/// load, policy, traffic, faults, retry budget, optional autoscale and
/// SLO.
#[allow(clippy::type_complexity)]
fn drill_strategy() -> impl Strategy<Value = (Vec<PreparedRequest>, QueueConfig)> {
    (
        proptest::collection::vec((1_000u64..2_000_000, 0u32..40), 1..40),
        1usize..5,
        0u64..1_000,
        1u32..30,
        0usize..SchedPolicy::ALL.len(),
        prop_oneof![
            Just(TrafficModel::Exponential),
            Just(TrafficModel::bursty_default()),
            Just(TrafficModel::diurnal_default()),
            (1usize..8).prop_map(|clients| TrafficModel::ClosedLoop { clients }),
        ],
        proptest::option::of((10_000u64..5_000_000, proptest::bool::ANY)),
    )
        .prop_flat_map(
            |(profile, engines, seed, load_x10, policy_at, traffic, slo)| {
                (
                    Just((profile, engines, seed, load_x10, policy_at, traffic, slo)),
                    faults_strategy(engines),
                    (1u32..5, 0u64..10_000),
                    proptest::option::of(1usize..engines + 1),
                )
            },
        )
        .prop_map(
            |(
                (profile, engines, seed, load_x10, policy_at, traffic, slo),
                faults,
                retry,
                floor,
            )| {
                let prepared = fab_stream(&profile);
                let mut cfg = QueueConfig::new(
                    engines,
                    SchedPolicy::ALL[policy_at],
                    load_x10 as f64 / 10.0,
                    seed,
                )
                .with_traffic(traffic)
                .with_faults(faults)
                .with_retry(RetryPolicy::new(retry.0, retry.1));
                if let Some((deadline, shed)) = slo {
                    cfg = cfg.with_slo(SloConfig::new(deadline, shed));
                }
                if let Some(min) = floor {
                    cfg = cfg.with_autoscale(ScalePolicy::with_floor(min));
                }
                (prepared, cfg)
            },
        )
}

/// The effective per-engine down windows of a run: the scripted/MTBF
/// incident list replayed through the event-loop guards (a down event
/// on an already-down engine is absorbed; the earliest up event
/// recovers it). Returns `(engine, down, up)` triples.
fn effective_outages(cfg: &QueueConfig, mean_service: f64) -> Vec<(usize, u64, u64)> {
    let plan = cfg.faults.materialize(cfg.seed, cfg.engines, mean_service);
    let mut events: Vec<(u64, u8, usize)> = Vec::new();
    for inc in plan.incidents() {
        events.push((inc.down_at, 1, inc.engine));
        events.push((inc.up_at, 0, inc.engine));
    }
    events.sort_unstable();
    let mut down_since: Vec<Option<u64>> = vec![None; cfg.engines];
    let mut outages = Vec::new();
    for (t, kind, e) in events {
        match kind {
            0 => {
                if let Some(since) = down_since[e].take() {
                    outages.push((e, since, t));
                }
            }
            _ => {
                if down_since[e].is_none() {
                    down_since[e] = Some(t);
                }
            }
        }
    }
    for (e, since) in down_since.into_iter().enumerate() {
        if let Some(since) = since {
            outages.push((e, since, u64::MAX));
        }
    }
    outages
}

fn mean_service(prepared: &[PreparedRequest]) -> f64 {
    prepared.iter().map(|p| p.report.cycles as f64).sum::<f64>() / prepared.len() as f64
}

proptest! {
    #[test]
    fn drills_conserve_requests_across_three_terminal_states(
        scenario in drill_strategy(),
    ) {
        let (prepared, cfg) = scenario;
        let hw = HwConfig::default();
        let out = simulate_queue(&prepared, &cfg, &hw, 256);

        // Conservation: completed + shed + failed = offered, exactly,
        // with the indices partitioning the stream.
        prop_assert_eq!(
            out.records.len() + out.shed.len() + out.failed.len(),
            prepared.len()
        );
        let s = &out.summary;
        prop_assert_eq!(
            s.completed + s.shed as usize + s.failed as usize,
            s.requests
        );
        let mut seen: Vec<usize> = out
            .records
            .iter()
            .map(|r| r.index)
            .chain(out.shed.iter().map(|s| s.index))
            .chain(out.failed.iter().map(|f| f.index))
            .collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..prepared.len()).collect::<Vec<_>>());

        // Nothing fails without faults; nothing sheds without shedding.
        if cfg.faults.is_none() {
            prop_assert!(out.failed.is_empty());
        }
        if !cfg.slo.map(|s| s.shed).unwrap_or(false) {
            prop_assert!(out.shed.is_empty());
        }

        // The retry budget is a hard ceiling on dispatch attempts.
        for f in &out.failed {
            prop_assert!(
                f.attempts <= cfg.retry.max_attempts,
                "request {} consumed {} attempts with a budget of {}",
                f.index, f.attempts, cfg.retry.max_attempts
            );
        }
        prop_assert!(
            s.retries <= (cfg.retry.max_attempts as u64 - 1) * prepared.len() as u64,
            "{} retries exceed the fleet-wide budget", s.retries
        );

        // Drill accounting renders finite and in range.
        prop_assert!(s.availability >= 0.0 && s.availability <= 1.0 + 1e-9);
        prop_assert!(s.failed_rate >= 0.0 && s.failed_rate <= 1.0);
        prop_assert!(s.utilization >= 0.0 && s.utilization <= 1.0 + 1e-9);
        prop_assert!(s.peak_engines <= cfg.engines);
        let json = s.to_json("drill-prop");
        prop_assert!(
            !json.contains("inf") && !json.contains("NaN") && !json.contains("nan"),
            "non-finite field in {}", json
        );

        // Bit-exact determinism survives the drills.
        let again = simulate_queue(&prepared, &cfg, &hw, 256);
        prop_assert_eq!(&again, &out);
        prop_assert_eq!(&again.summary.to_json("drill-prop"), &json);
    }

    #[test]
    fn no_request_is_served_inside_an_effective_outage(
        scenario in drill_strategy(),
    ) {
        let (prepared, cfg) = scenario;
        let out = simulate_queue(&prepared, &cfg, &HwConfig::default(), 256);
        let outages = effective_outages(&cfg, mean_service(&prepared));
        for r in &out.records {
            for &(e, down, up) in &outages {
                if r.engine == e {
                    prop_assert!(
                        r.finish <= down || r.start >= up,
                        "request {} served on engine {} during [{}, {})",
                        r.index, e, down, up
                    );
                }
            }
        }
        // Failed requests died at a kill or abandonment instant no
        // earlier than their arrival.
        for f in &out.failed {
            prop_assert!(f.at >= f.arrival);
        }
    }

    #[test]
    fn recovered_engines_serve_their_first_request_cold(
        scenario in drill_strategy(),
    ) {
        let (prepared, cfg) = scenario;
        let out = simulate_queue(&prepared, &cfg, &HwConfig::default(), 256);
        let outages = effective_outages(&cfg, mean_service(&prepared));
        // For every recovery, the first request the engine serves after
        // coming back up finds a power-cycled (empty) cache.
        for &(e, _, up) in &outages {
            if up == u64::MAX {
                continue;
            }
            if let Some(first) = out
                .records
                .iter()
                .filter(|r| r.engine == e && r.start >= up)
                .min_by_key(|r| (r.start, r.index))
            {
                prop_assert_eq!(
                    first.warm.hits, 0,
                    "request {} on engine {} found a warm cache right after recovery at {}",
                    first.index, e, up
                );
            }
        }
    }

    #[test]
    fn violations_match_deadline_exceedance_under_drills(
        scenario in drill_strategy(),
    ) {
        let (prepared, cfg) = scenario;
        let out = simulate_queue(&prepared, &cfg, &HwConfig::default(), 256);
        let expected = match &cfg.slo {
            Some(slo) => out
                .records
                .iter()
                .filter(|r| r.e2e_cycles() > slo.deadline_cycles)
                .count() as u64,
            None => 0,
        };
        prop_assert_eq!(out.summary.violations, expected);
        prop_assert!(out.summary.violations <= out.summary.completed as u64);
    }

    #[test]
    fn recorded_traces_replay_bit_exactly(
        scenario in drill_strategy(),
    ) {
        let (prepared, cfg) = scenario;
        let hw = HwConfig::default();
        let original = simulate_queue(&prepared, &cfg, &hw, 256);
        let trace = original.arrival_trace();
        prop_assert_eq!(trace.len(), prepared.len());
        let parsed = ArrivalTrace::parse(&trace.to_json()).expect("round-trips");
        prop_assert_eq!(&parsed, &trace);
        let replay = simulate_queue(&prepared, &cfg.clone().with_trace(parsed), &hw, 256);
        prop_assert_eq!(&replay, &original);
        prop_assert_eq!(
            replay.summary.to_json("drill-prop"),
            original.summary.to_json("drill-prop")
        );
    }
}
