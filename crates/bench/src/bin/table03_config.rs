//! Table III: the evaluated system configuration.

use sgcn::config::HwConfig;
use sgcn_bench::{banner, experiment_config};

fn main() {
    banner("Table III: system configuration");
    let hw = HwConfig::default();
    let scaled = experiment_config().hw();
    println!("Accelerator engine");
    println!(
        "  frequency            : {} GHz",
        hw.frequency_hz as f64 / 1e9
    );
    println!(
        "  combination          : {}× {}x{} systolic array",
        hw.combination_engines, hw.systolic.rows, hw.systolic.cols
    );
    println!(
        "  aggregation          : {}× {}-way SIMD",
        hw.aggregation_engines, hw.simd_lanes
    );
    println!("Global cache");
    println!(
        "  capacity             : {} KB ({} KB scaled for experiments)",
        hw.cache.capacity_bytes / 1024,
        scaled.cache.capacity_bytes / 1024
    );
    println!("  ways                 : {}", hw.cache.ways);
    println!("  replacement          : LRU");
    println!("Off-chip memory");
    println!("  spec                 : HBM2");
    println!(
        "  peak bandwidth       : {} GB/s ({}% achievable)",
        hw.dram.peak_bytes_per_cycle as u64,
        (hw.dram.efficiency * 100.0) as u64
    );
    println!("  channels             : {}", hw.dram.channels);
    println!(
        "  banks                : {} per channel (4×4)",
        hw.dram.banks_per_channel
    );
}
