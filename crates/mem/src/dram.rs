//! HBM DRAM model.
//!
//! Replaces the paper's DRAMsim3 + HBM2 setup (Table III: 8 channels, 4×4
//! banks, 256 GB/s peak) with an in-crate model that captures what the
//! BEICSR design actually exercises: burst-granular transfers, channel
//! interleaving, per-bank row-buffer locality, and a per-channel service
//! clock whose maximum gives the elapsed memory time. HBM1 halves the
//! per-channel bandwidth (Fig. 18's scalability study).

/// HBM generation selector (Fig. 18 compares both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HbmGeneration {
    /// First-generation HBM: 128 GB/s peak.
    Hbm1,
    /// HBM2, the paper's default: 256 GB/s peak (Table III).
    #[default]
    Hbm2,
}

/// Physical address mapping — how bursts spread over channels and banks.
///
/// §IV's second design goal says the compression format "should be aware
/// of the memory subsystem and exploit it"; which mapping the subsystem
/// uses changes what "exploiting" means, so the model makes it explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressMapping {
    /// Fine channel interleave: consecutive bursts round-robin over
    /// channels, rows span a contiguous region (default; maximizes
    /// streaming bandwidth).
    #[default]
    ChannelInterleaved,
    /// Bank-first interleave: consecutive rows land on different banks of
    /// the same channel before switching channels (spreads strided
    /// accesses over banks, narrows streaming parallelism).
    BankInterleaved,
}

/// DRAM geometry and timing, in accelerator cycles (1 GHz per Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Independent channels (Table III: 8).
    pub channels: usize,
    /// Banks per channel (Table III: 4×4 = 16).
    pub banks_per_channel: usize,
    /// Burst (minimum transfer) size in bytes.
    pub burst_bytes: u64,
    /// Row-buffer (page) size in bytes per bank.
    pub row_bytes: u64,
    /// Aggregate peak bandwidth in bytes per accelerator cycle.
    pub peak_bytes_per_cycle: f64,
    /// Fraction of peak bandwidth actually achievable on the data bus
    /// (refresh, read/write turnaround, rank-to-rank bubbles). DRAMsim3
    /// measures ~70–80% for mixed access streams.
    pub efficiency: f64,
    /// Extra service cycles charged on a row-buffer miss
    /// (precharge + activate).
    pub row_miss_penalty: u64,
    /// Physical address mapping.
    pub mapping: AddressMapping,
}

impl DramConfig {
    /// The paper's HBM2 module at a 1 GHz accelerator clock: 256 GB/s peak
    /// → 256 B/cycle aggregate.
    pub fn hbm2() -> Self {
        DramConfig {
            channels: 8,
            banks_per_channel: 16,
            burst_bytes: 64,
            row_bytes: 2048,
            peak_bytes_per_cycle: 256.0,
            efficiency: 0.75,
            row_miss_penalty: 28,
            mapping: AddressMapping::ChannelInterleaved,
        }
    }

    /// First-generation HBM at half the bandwidth.
    pub fn hbm1() -> Self {
        DramConfig {
            peak_bytes_per_cycle: 128.0,
            ..DramConfig::hbm2()
        }
    }

    /// Selects by generation.
    pub fn for_generation(gen: HbmGeneration) -> Self {
        match gen {
            HbmGeneration::Hbm1 => DramConfig::hbm1(),
            HbmGeneration::Hbm2 => DramConfig::hbm2(),
        }
    }

    /// Per-channel bandwidth in bytes per cycle.
    pub fn channel_bytes_per_cycle(&self) -> f64 {
        self.peak_bytes_per_cycle / self.channels as f64
    }

    /// Service cycles for one burst on its channel (no row penalty),
    /// derated by the achievable-bandwidth efficiency.
    pub fn burst_cycles(&self) -> f64 {
        self.burst_bytes as f64
            / (self.channel_bytes_per_cycle() * self.efficiency.clamp(0.05, 1.0))
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::hbm2()
    }
}

/// Access counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DramStats {
    /// Read bursts serviced.
    pub read_bursts: u64,
    /// Write bursts serviced.
    pub write_bursts: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses.
    pub row_misses: u64,
}

impl DramStats {
    /// All bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Row-buffer hit rate in `[0, 1]`.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// Channel occupancy charged per row miss. HBM carries commands on a
/// separate command/address bus, so a miss costs the data bus almost
/// nothing; the activate latency itself lands on the bank clock below.
const MISS_CMD_CYCLES: f64 = 1.0;

/// Sentinel for a closed row (row indices derived from addresses stay far
/// below this).
const NO_ROW: u64 = u64::MAX;

/// The HBM device model: open-row tracking per bank, service-time
/// accumulation per channel, activate time accumulated per bank (banks
/// activate in parallel — bank-level parallelism hides most of the row
/// penalty when misses spread across banks).
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    /// Open row per (channel, bank), flattened channel-major;
    /// [`NO_ROW`] = closed. Flat storage keeps the per-burst row check a
    /// single indexed load instead of two pointer chases.
    open_rows: Vec<u64>,
    /// Accumulated data/command busy cycles per channel.
    busy: Vec<f64>,
    /// Accumulated activate/precharge busy cycles per (channel, bank),
    /// flattened channel-major.
    bank_busy: Vec<f64>,
    stats: DramStats,
    /// Precomputed address-arithmetic divisors (shift/mask when the
    /// geometry is a power of two — the hot path of every burst).
    burst_div: crate::fastdiv::FastDiv,
    channel_div: crate::fastdiv::FastDiv,
    row_div: crate::fastdiv::FastDiv,
    bank_div: crate::fastdiv::FastDiv,
    /// [`DramConfig::burst_cycles`], evaluated once.
    burst_cycles: f64,
}

impl Dram {
    /// Creates an idle device.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate.
    pub fn new(config: DramConfig) -> Self {
        assert!(
            config.channels > 0 && config.banks_per_channel > 0 && config.burst_bytes > 0,
            "degenerate DRAM geometry"
        );
        Dram {
            open_rows: vec![NO_ROW; config.channels * config.banks_per_channel],
            busy: vec![0.0; config.channels],
            bank_busy: vec![0.0; config.channels * config.banks_per_channel],
            stats: DramStats::default(),
            burst_div: crate::fastdiv::FastDiv::new(config.burst_bytes),
            channel_div: crate::fastdiv::FastDiv::new(config.channels as u64),
            row_div: crate::fastdiv::FastDiv::new((config.row_bytes / config.burst_bytes).max(1)),
            bank_div: crate::fastdiv::FastDiv::new(config.banks_per_channel as u64),
            burst_cycles: config.burst_cycles(),
            config,
        }
    }

    /// Geometry/timing.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Services a single burst-aligned access at `addr` (the burst
    /// containing it). Returns the service cycles charged to its channel.
    #[inline]
    pub fn access(&mut self, addr: u64, is_write: bool) -> f64 {
        let burst = self.burst_div.div(addr);
        let (channel, bank, row) = match self.config.mapping {
            AddressMapping::ChannelInterleaved => {
                let channel = self.channel_div.rem(burst) as usize;
                let within = self.channel_div.div(burst);
                let row_global = self.row_div.div(within);
                let bank = self.bank_div.rem(row_global) as usize;
                (channel, bank, self.bank_div.div(row_global))
            }
            AddressMapping::BankInterleaved => {
                // Rows fill one channel's banks first: row index cycles
                // banks, then channels, then advances the row.
                let row_global = self.row_div.div(burst);
                let bank = self.bank_div.rem(row_global) as usize;
                let after_bank = self.bank_div.div(row_global);
                let channel = self.channel_div.rem(after_bank) as usize;
                (channel, bank, self.channel_div.div(after_bank))
            }
        };

        let slot = channel * self.config.banks_per_channel + bank;
        let open = &mut self.open_rows[slot];
        let mut cycles = self.burst_cycles;
        if *open == row {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
            *open = row;
            // The activate/precharge latency lands on the bank (banks
            // overlap); the channel pays only command-bus occupancy.
            cycles += MISS_CMD_CYCLES;
            self.bank_busy[slot] += self.config.row_miss_penalty as f64 + self.burst_cycles;
        }
        self.busy[channel] += cycles;
        if is_write {
            self.stats.write_bursts += 1;
            self.stats.bytes_written += self.config.burst_bytes;
        } else {
            self.stats.read_bursts += 1;
            self.stats.bytes_read += self.config.burst_bytes;
        }
        cycles
    }

    /// Services `count` accesses at `stride_bytes` intervals from `addr`
    /// — the batched DRAM walk behind the line-run replay (a compacted
    /// read run's miss sub-runs, a streaming write run, an uncached
    /// topology stream). When the stride equals the burst size (cache
    /// line == DRAM burst, the universal configuration) the
    /// channel/bank/row decomposition advances incrementally instead of
    /// re-dividing the address per burst; otherwise each access falls
    /// back to [`Dram::access`]. Either way the per-burst sequence —
    /// including the order the `f64` channel/bank clocks accumulate in —
    /// is identical to calling [`Dram::access`] per address, so every
    /// counter and clock stays bit-identical.
    pub fn access_run(&mut self, addr: u64, count: u64, stride_bytes: u64, is_write: bool) {
        if count == 0 {
            return;
        }
        if stride_bytes != self.config.burst_bytes {
            for i in 0..count {
                self.access(addr + i * stride_bytes, is_write);
            }
            return;
        }
        let channels = self.config.channels as u64;
        let banks = self.config.banks_per_channel as u64;
        let bursts_per_row = (self.config.row_bytes / self.config.burst_bytes).max(1);
        let burst = self.burst_div.div(addr);
        let burst_cycles = self.burst_cycles;
        let miss_bank_cycles = self.config.row_miss_penalty as f64 + burst_cycles;

        // Walk (channel, bank, row) incrementally from the first burst's
        // decomposition; the wrap chain mirrors how each index is a
        // quotient/remainder of the previous one.
        match self.config.mapping {
            AddressMapping::ChannelInterleaved => {
                let mut channel = self.channel_div.rem(burst);
                let within = self.channel_div.div(burst);
                let mut win_in_row = within % bursts_per_row;
                let row_global = self.row_div.div(within);
                let mut bank = self.bank_div.rem(row_global);
                let mut row = self.bank_div.div(row_global);
                for _ in 0..count {
                    let slot = (channel * banks + bank) as usize;
                    let mut cycles = burst_cycles;
                    if self.open_rows[slot] == row {
                        self.stats.row_hits += 1;
                    } else {
                        self.stats.row_misses += 1;
                        self.open_rows[slot] = row;
                        cycles += MISS_CMD_CYCLES;
                        self.bank_busy[slot] += miss_bank_cycles;
                    }
                    self.busy[channel as usize] += cycles;
                    channel += 1;
                    if channel == channels {
                        channel = 0;
                        win_in_row += 1;
                        if win_in_row == bursts_per_row {
                            win_in_row = 0;
                            bank += 1;
                            if bank == banks {
                                bank = 0;
                                row += 1;
                            }
                        }
                    }
                }
            }
            AddressMapping::BankInterleaved => {
                let mut win_in_row = burst % bursts_per_row;
                let row_global = self.row_div.div(burst);
                let mut bank = self.bank_div.rem(row_global);
                let after_bank = self.bank_div.div(row_global);
                let mut channel = self.channel_div.rem(after_bank);
                let mut row = self.channel_div.div(after_bank);
                for _ in 0..count {
                    let slot = (channel * banks + bank) as usize;
                    let mut cycles = burst_cycles;
                    if self.open_rows[slot] == row {
                        self.stats.row_hits += 1;
                    } else {
                        self.stats.row_misses += 1;
                        self.open_rows[slot] = row;
                        cycles += MISS_CMD_CYCLES;
                        self.bank_busy[slot] += miss_bank_cycles;
                    }
                    self.busy[channel as usize] += cycles;
                    win_in_row += 1;
                    if win_in_row == bursts_per_row {
                        win_in_row = 0;
                        bank += 1;
                        if bank == banks {
                            bank = 0;
                            channel += 1;
                            if channel == channels {
                                channel = 0;
                                row += 1;
                            }
                        }
                    }
                }
            }
        }
        // Byte/burst totals are order-free integers: book them in bulk.
        let bytes = count * self.config.burst_bytes;
        if is_write {
            self.stats.write_bursts += count;
            self.stats.bytes_written += bytes;
        } else {
            self.stats.read_bursts += count;
            self.stats.bytes_read += bytes;
        }
    }

    /// The original burst-service routine, kept verbatim as the
    /// `SGCN_NAIVE=1` perf baseline: every address split re-derives its
    /// divisors and `burst_cycles` re-divides on each call. Produces
    /// bit-identical state and statistics to [`Dram::access`].
    pub fn access_reference(&mut self, addr: u64, is_write: bool) -> f64 {
        let burst = addr / self.config.burst_bytes;
        let bursts_per_row = (self.config.row_bytes / self.config.burst_bytes).max(1);
        let (channel, bank, row) = match self.config.mapping {
            AddressMapping::ChannelInterleaved => {
                let channel = (burst % self.config.channels as u64) as usize;
                let within = burst / self.config.channels as u64;
                let row_global = within / bursts_per_row;
                let bank = (row_global % self.config.banks_per_channel as u64) as usize;
                (
                    channel,
                    bank,
                    row_global / self.config.banks_per_channel as u64,
                )
            }
            AddressMapping::BankInterleaved => {
                let row_global = burst / bursts_per_row;
                let bank = (row_global % self.config.banks_per_channel as u64) as usize;
                let after_bank = row_global / self.config.banks_per_channel as u64;
                let channel = (after_bank % self.config.channels as u64) as usize;
                (channel, bank, after_bank / self.config.channels as u64)
            }
        };

        let slot = channel * self.config.banks_per_channel + bank;
        let open = &mut self.open_rows[slot];
        let mut cycles = self.config.burst_cycles();
        if *open == row {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
            *open = row;
            cycles += MISS_CMD_CYCLES;
            self.bank_busy[slot] +=
                self.config.row_miss_penalty as f64 + self.config.burst_cycles();
        }
        self.busy[channel] += cycles;
        if is_write {
            self.stats.write_bursts += 1;
            self.stats.bytes_written += self.config.burst_bytes;
        } else {
            self.stats.read_bursts += 1;
            self.stats.bytes_read += self.config.burst_bytes;
        }
        cycles
    }

    /// Elapsed memory time so far: the busiest channel's data time or the
    /// busiest bank's activate time, whichever binds (channels and banks
    /// operate in parallel).
    pub fn elapsed_cycles(&self) -> u64 {
        let chan = self.busy.iter().copied().fold(0.0f64, f64::max);
        let bank = self.bank_busy.iter().copied().fold(0.0f64, f64::max);
        chan.max(bank).ceil() as u64
    }

    /// Achieved bandwidth utilization in `[0, 1]` over `elapsed` cycles
    /// (caller supplies the overall execution time).
    pub fn bandwidth_utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let moved = self.stats.total_bytes() as f64;
        (moved / (self.config.peak_bytes_per_cycle * elapsed as f64)).min(1.0)
    }

    /// Clears the per-channel and per-bank clocks (e.g. between layers),
    /// keeping row state and counters.
    pub fn reset_time(&mut self) {
        self.busy.fill(0.0);
        self.bank_busy.fill(0.0);
    }

    /// Zeroes the counters and clocks but keeps the open-row state — the
    /// warm-reuse hook: a serving engine that survives across requests
    /// starts each request with fresh statistics on a warm device.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
        self.reset_time();
    }

    /// Power-cycle reset: counters, clocks **and** the open-row state —
    /// the failure-drill hook. A device coming back from a crash holds
    /// nothing, so its first access to every bank pays the full
    /// activation again.
    pub fn reset_cold(&mut self) {
        self.reset_stats();
        self.open_rows.fill(NO_ROW);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm2_headline_numbers() {
        let c = DramConfig::hbm2();
        assert_eq!(c.channels, 8);
        assert_eq!(c.banks_per_channel, 16);
        assert!((c.channel_bytes_per_cycle() - 32.0).abs() < 1e-12);
        // 64 B over 32 B/cycle at 75% achievable efficiency.
        assert!((c.burst_cycles() - 64.0 / 24.0).abs() < 1e-12);
        assert!((DramConfig::hbm1().peak_bytes_per_cycle - 128.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_stream_mostly_row_hits() {
        let mut d = Dram::new(DramConfig::hbm2());
        for i in 0..1024u64 {
            d.access(i * 64, false);
        }
        let s = d.stats();
        assert!(s.row_hit_rate() > 0.9, "hit rate {}", s.row_hit_rate());
        assert_eq!(s.bytes_read, 1024 * 64);
    }

    #[test]
    fn random_stride_causes_row_misses() {
        let mut d = Dram::new(DramConfig::hbm2());
        // Stride far beyond a row per access, same channel alignment.
        let mut addr = 0u64;
        for _ in 0..256 {
            d.access(addr, false);
            addr += 1 << 20;
        }
        assert!(d.stats().row_hit_rate() < 0.6);
    }

    #[test]
    fn channels_run_in_parallel() {
        let cfg = DramConfig::hbm2();
        let mut d = Dram::new(cfg);
        // 8 bursts hitting 8 different channels: elapsed ≈ one burst's
        // service, not 8×.
        for ch in 0..8u64 {
            d.access(ch * 64, false);
        }
        let elapsed = d.elapsed_cycles();
        let serial = (cfg.burst_cycles() + cfg.row_miss_penalty as f64) * 8.0;
        assert!(
            (elapsed as f64) < serial / 4.0,
            "elapsed {elapsed} vs serial {serial}"
        );
    }

    #[test]
    fn same_channel_serializes() {
        let cfg = DramConfig::hbm2();
        let mut d = Dram::new(cfg);
        for i in 0..8u64 {
            d.access(i * 64 * 8, false); // all map to channel 0
        }
        assert!(d.elapsed_cycles() as f64 >= cfg.burst_cycles() * 8.0);
    }

    #[test]
    fn utilization_bounded() {
        let mut d = Dram::new(DramConfig::hbm2());
        for i in 0..64u64 {
            d.access(i * 64, true);
        }
        let e = d.elapsed_cycles();
        let u = d.bandwidth_utilization(e);
        assert!(u > 0.0 && u <= 1.0);
        assert_eq!(d.stats().bytes_written, 64 * 64);
    }

    #[test]
    fn bank_interleaved_streaming_uses_one_channel_at_a_time() {
        // A sequential stream under bank-first mapping stays on one
        // channel for banks×row_bytes before moving on — lower streaming
        // parallelism than the channel-interleaved default.
        let chan_cfg = DramConfig::hbm2();
        let bank_cfg = DramConfig {
            mapping: AddressMapping::BankInterleaved,
            ..DramConfig::hbm2()
        };
        let run = |cfg: DramConfig| {
            let mut d = Dram::new(cfg);
            for i in 0..512u64 {
                d.access(i * 64, false);
            }
            d.elapsed_cycles()
        };
        assert!(run(bank_cfg) > run(chan_cfg));
    }

    #[test]
    fn bank_interleaved_spreads_row_strides_over_banks() {
        // Strided accesses at the row granularity hit different banks
        // under bank-first mapping → row-miss latency overlaps.
        let cfg = DramConfig {
            mapping: AddressMapping::BankInterleaved,
            ..DramConfig::hbm2()
        };
        let mut d = Dram::new(cfg);
        for i in 0..64u64 {
            d.access(i * cfg.row_bytes, false);
        }
        // All misses, but spread across banks/channels: the elapsed time
        // is far below the serial activate time.
        let serial = 64.0 * (cfg.row_miss_penalty as f64 + cfg.burst_cycles());
        assert!((d.elapsed_cycles() as f64) < serial / 4.0);
    }

    #[test]
    fn reset_time_keeps_counters() {
        let mut d = Dram::new(DramConfig::hbm2());
        d.access(0, false);
        d.reset_time();
        assert_eq!(d.elapsed_cycles(), 0);
        assert_eq!(d.stats().read_bursts, 1);
    }
}
