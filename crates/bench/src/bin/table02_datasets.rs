//! Table II: the benchmark dataset catalog, full-scale stats and the
//! synthesized (scaled) instantiation actually simulated.

use sgcn::experiments::table02_datasets;
use sgcn_bench::{banner, experiment_config};

fn main() {
    banner("Table II: datasets");
    println!("{}", table02_datasets(&experiment_config()));
    println!(
        "Full-scale columns come from the paper's Table II; SynthV/SynthE are\n\
         the scaled synthetic graphs (see DESIGN.md, Substitutions) and Scale is\n\
         the vertex scale factor."
    );
}
