//! Property-based tests on the storage formats: every format must
//! round-trip arbitrary matrices, and BEICSR's structural invariants
//! (in-place offsets, alignment, bitmap consistency) must hold for all
//! shapes and sparsity patterns.

use proptest::prelude::*;
use sgcn_formats::{
    Beicsr, BeicsrConfig, Bitmap, BlockedEllpack, BsrFeatures, ColRange, CooFeatures, CsrFeatures,
    DenseMatrix, FeatureFormat, PackedBeicsr, SeparateBitmapCsr, CACHELINE_BYTES,
};

/// Strategy: a small dense matrix with a mix of zeros and non-zeros.
fn matrix_strategy() -> impl Strategy<Value = DenseMatrix> {
    (1usize..12, 1usize..40).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            prop_oneof![3 => Just(0.0f32), 2 => -10.0f32..10.0],
            rows * cols,
        )
        .prop_map(move |data| {
            // Avoid -0.0 (compares equal to 0.0 but is not bit-identical,
            // and the formats canonicalize it away as a zero).
            let data = data
                .into_iter()
                .map(|v| if v == 0.0 { 0.0 } else { v })
                .collect();
            DenseMatrix::from_vec(rows, cols, data)
        })
    })
}

proptest! {
    #[test]
    fn csr_roundtrip(m in matrix_strategy()) {
        let f = CsrFeatures::encode(&m);
        for r in 0..m.rows() {
            prop_assert_eq!(f.decode_row(r), m.row(r));
        }
    }

    #[test]
    fn coo_roundtrip(m in matrix_strategy()) {
        let f = CooFeatures::encode(&m);
        for r in 0..m.rows() {
            prop_assert_eq!(f.decode_row(r), m.row(r));
        }
    }

    #[test]
    fn bsr_roundtrip(m in matrix_strategy()) {
        let f = BsrFeatures::encode(&m);
        for r in 0..m.rows() {
            prop_assert_eq!(f.decode_row(r), m.row(r));
        }
    }

    #[test]
    fn ellpack_roundtrip(m in matrix_strategy()) {
        let f = BlockedEllpack::encode(&m);
        for r in 0..m.rows() {
            prop_assert_eq!(f.decode_row(r), m.row(r));
        }
    }

    #[test]
    fn ablation_formats_roundtrip(m in matrix_strategy()) {
        // The design-ablation variants (separate bitmap array, packed
        // variable-length rows) must also reproduce every row exactly.
        let sep = SeparateBitmapCsr::encode(&m);
        let packed = PackedBeicsr::encode(&m);
        for r in 0..m.rows() {
            prop_assert_eq!(sep.decode_row(r), m.row(r), "separate-bitmap row {}", r);
            prop_assert_eq!(packed.decode_row(r), m.row(r), "packed row {}", r);
        }
    }

    #[test]
    fn beicsr_roundtrip_all_configs(m in matrix_strategy(), slice in 1usize..20) {
        for cfg in [BeicsrConfig::non_sliced(), BeicsrConfig::sliced(slice), BeicsrConfig::default()] {
            let f = Beicsr::encode(&m, cfg);
            for r in 0..m.rows() {
                prop_assert_eq!(f.decode_row(r), m.row(r));
            }
        }
    }

    #[test]
    fn beicsr_slots_are_aligned_and_disjoint(m in matrix_strategy(), slice in 1usize..20) {
        let f = Beicsr::encode(&m, BeicsrConfig::sliced(slice));
        let mut prev_end = 0u64;
        for r in 0..m.rows() {
            for s in 0..f.num_slices() {
                let off = f.slot_offset(r, s);
                prop_assert_eq!(off % CACHELINE_BYTES, 0, "slot ({}, {}) unaligned", r, s);
                prop_assert!(off >= prev_end || off == 0 && prev_end == 0);
                let span = f.slot_read_span(r, s);
                prop_assert!(span.end() <= off + f.slot_bytes());
                prev_end = off + f.slot_bytes();
            }
        }
        prop_assert_eq!(f.capacity_bytes(), prev_end);
    }

    #[test]
    fn beicsr_nnz_consistent_with_bitmap(m in matrix_strategy()) {
        let f = Beicsr::encode(&m, BeicsrConfig::sliced(8));
        for r in 0..m.rows() {
            for s in 0..f.num_slices() {
                prop_assert_eq!(f.slot_nnz(r, s), f.slot_bitmap(r, s).count_ones());
                prop_assert_eq!(f.slot_values(r, s).len(), f.slot_nnz(r, s));
                // Packed values are exactly the non-zeros in order.
                let start = s * f.slice_elems();
                let end = (start + f.slice_elems()).min(m.cols());
                let expect: Vec<f32> = m.row(r)[start..end]
                    .iter()
                    .copied()
                    .filter(|&v| v != 0.0)
                    .collect();
                prop_assert_eq!(f.slot_values(r, s), &expect[..]);
            }
        }
    }

    #[test]
    fn slice_spans_subset_of_row_spans_bytes(m in matrix_strategy()) {
        // Reading a window never costs more raw bytes than the whole row
        // plus one bitmap re-read per covering slice.
        let f = Beicsr::encode(&m, BeicsrConfig::sliced(8));
        let cols = m.cols();
        for r in 0..m.rows() {
            let full: u64 = f.row_spans(r).iter().map(|s| u64::from(s.bytes)).sum();
            let half: u64 = f
                .slice_spans(r, ColRange::new(0, cols / 2))
                .iter()
                .map(|s| u64::from(s.bytes))
                .sum();
            prop_assert!(half <= full + f.bitmap_bytes() * f.num_slices() as u64);
        }
    }

    #[test]
    fn capacity_is_at_least_payload(m in matrix_strategy()) {
        // Every format must reserve at least the bytes of its non-zeros.
        let payload = m.count_nonzeros() as u64 * 4;
        let formats: Vec<Box<dyn FeatureFormat>> = vec![
            Box::new(CsrFeatures::encode(&m)),
            Box::new(CooFeatures::encode(&m)),
            Box::new(BsrFeatures::encode(&m)),
            Box::new(BlockedEllpack::encode(&m)),
            Box::new(Beicsr::encode(&m, BeicsrConfig::default())),
            Box::new(SeparateBitmapCsr::encode(&m)),
            Box::new(PackedBeicsr::encode(&m)),
        ];
        for f in formats {
            prop_assert!(
                f.capacity_bytes() >= payload,
                "{} capacity {} < payload {}",
                f.format_name(),
                f.capacity_bytes(),
                payload
            );
        }
    }

    #[test]
    fn write_spans_equal_read_footprint_for_beicsr(m in matrix_strategy()) {
        let f = Beicsr::encode(&m, BeicsrConfig::default());
        for r in 0..m.rows() {
            prop_assert_eq!(f.write_spans(r), f.row_spans(r));
        }
    }

    #[test]
    fn word_level_iter_ones_matches_naive_bit_loop(values in proptest::collection::vec(
        prop_oneof![2 => Just(0.0f32), 1 => -4.0f32..4.0],
        0..300,
    )) {
        // The trailing_zeros-based iterator must enumerate exactly the
        // positions a per-bit get() loop finds, in order — including
        // bitmaps whose length is not a multiple of 64.
        let bm = Bitmap::from_values(&values);
        let word_level: Vec<usize> = bm.iter_ones().collect();
        let naive: Vec<usize> = (0..bm.len()).filter(|&i| bm.get(i)).collect();
        prop_assert_eq!(&word_level, &naive);
        prop_assert_eq!(word_level.len(), bm.count_ones());
    }

    #[test]
    fn word_level_from_values_matches_per_bit_set(values in proptest::collection::vec(
        prop_oneof![1 => Just(0.0f32), 1 => -2.0f32..2.0],
        0..300,
    )) {
        // Word-at-a-time construction must equal a bitmap built bit by bit.
        let word_level = Bitmap::from_values(&values);
        let mut per_bit = Bitmap::new(values.len());
        for (i, &v) in values.iter().enumerate() {
            if v != 0.0 {
                per_bit.set(i, true);
            }
        }
        prop_assert_eq!(word_level, per_bit);
    }

    #[test]
    fn word_level_encoder_matches_reference(m in matrix_strategy(), slice in 1usize..20) {
        // The in-place word-level encoder must produce a value equal to
        // the original per-bit reference encoder for every config.
        for cfg in [BeicsrConfig::non_sliced(), BeicsrConfig::sliced(slice), BeicsrConfig::default()] {
            let fast = Beicsr::encode(&m, cfg);
            let reference = Beicsr::encode_reference(&m, cfg);
            for r in 0..m.rows() {
                prop_assert_eq!(fast.decode_row(r), reference.decode_row(r));
                for s in 0..fast.num_slices() {
                    prop_assert_eq!(fast.slot_nnz(r, s), reference.slot_nnz(r, s));
                    prop_assert_eq!(fast.slot_bitmap(r, s), reference.slot_bitmap(r, s));
                    prop_assert_eq!(fast.slot_values(r, s), reference.slot_values(r, s));
                }
            }
        }
    }

    #[test]
    fn for_each_spans_match_allocating_spans(
        m in matrix_strategy(),
        slice in 1usize..20,
        window in (0usize..30, 1usize..30),
    ) {
        // The allocation-free visitors must emit exactly the spans the
        // Vec-returning methods produce, for every format the simulator
        // can drive — the hot-path overrides and the default-impl
        // formats (BSR, ELLPACK, the ablation variants) alike.
        let formats: Vec<Box<dyn FeatureFormat>> = vec![
            Box::new(m.clone()),
            Box::new(CsrFeatures::encode(&m)),
            Box::new(Beicsr::encode(&m, BeicsrConfig::sliced(slice))),
            Box::new(Beicsr::encode(&m, BeicsrConfig::non_sliced())),
            Box::new(CooFeatures::encode(&m)),
            Box::new(BsrFeatures::encode(&m)),
            Box::new(BlockedEllpack::encode(&m)),
            Box::new(SeparateBitmapCsr::encode(&m)),
            Box::new(PackedBeicsr::encode(&m)),
        ];
        // Windows with non-zero starts exercise the rank()/partition_point
        // paths the aggregation sweep hits for every slice after the first.
        let start = window.0.min(m.cols().saturating_sub(1));
        let range = ColRange::new(start, (start + window.1).min(m.cols()));
        for f in formats {
            for r in 0..m.rows() {
                let mut visited = Vec::new();
                f.for_each_row_span(r, &mut |s| visited.push(s));
                prop_assert_eq!(&visited, &f.row_spans(r), "{} row {}", f.format_name(), r);
                visited.clear();
                f.for_each_slice_span(r, range, &mut |s| visited.push(s));
                prop_assert_eq!(&visited, &f.slice_spans(r, range), "{} slice {}", f.format_name(), r);
                visited.clear();
                f.for_each_write_span(r, &mut |s| visited.push(s));
                prop_assert_eq!(&visited, &f.write_spans(r), "{} write {}", f.format_name(), r);
            }
        }
    }
}
