//! 2-D tiling of the adjacency matrix.
//!
//! GCNAX-style accelerators partition `Ã` into row (destination) × column
//! (source) tiles so the feature working set of one tile fits in the global
//! cache (§V-C, Fig. 7a). SGCN keeps the same tiling but changes *how
//! engines sweep inside a tile* (sparsity-aware cooperation, implemented in
//! the core crate).

use std::fmt;

use crate::csr::CsrGraph;

/// A half-open vertex ID range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct VertexRange {
    /// First vertex (inclusive).
    pub start: usize,
    /// Last vertex (exclusive).
    pub end: usize,
}

impl VertexRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "invalid vertex range {start}..{end}");
        VertexRange { start, end }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `v` lies in the range.
    pub fn contains(&self, v: usize) -> bool {
        v >= self.start && v < self.end
    }

    /// Iterates the vertex IDs.
    pub fn iter(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

impl fmt::Display for VertexRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// One tile of the 2-D partition: a destination-range × source-range block
/// of `Ã`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Tile {
    /// Destination (row) vertex range.
    pub dst: VertexRange,
    /// Source (column) vertex range.
    pub src: VertexRange,
}

/// A regular 2-D tiling of an `n × n` adjacency matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tiling {
    vertices: usize,
    dst_tile: usize,
    src_tile: usize,
}

impl Tiling {
    /// Creates a tiling with the given tile heights/widths (in vertices).
    ///
    /// # Panics
    ///
    /// Panics if either tile dimension is zero.
    pub fn new(vertices: usize, dst_tile: usize, src_tile: usize) -> Self {
        assert!(
            dst_tile > 0 && src_tile > 0,
            "tile dimensions must be non-zero"
        );
        Tiling {
            vertices,
            dst_tile,
            src_tile,
        }
    }

    /// A single tile spanning the whole matrix (no tiling, as in HyGCN).
    pub fn whole(vertices: usize) -> Self {
        Tiling::new(vertices, vertices.max(1), vertices.max(1))
    }

    /// Number of destination (row) tiles.
    pub fn dst_tiles(&self) -> usize {
        self.vertices.div_ceil(self.dst_tile).max(1)
    }

    /// Number of source (column) tiles.
    pub fn src_tiles(&self) -> usize {
        self.vertices.div_ceil(self.src_tile).max(1)
    }

    /// Destination range of row-tile `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn dst_range(&self, i: usize) -> VertexRange {
        assert!(i < self.dst_tiles(), "dst tile {i} out of range");
        VertexRange::new(
            i * self.dst_tile,
            ((i + 1) * self.dst_tile).min(self.vertices),
        )
    }

    /// Source range of column-tile `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn src_range(&self, j: usize) -> VertexRange {
        assert!(j < self.src_tiles(), "src tile {j} out of range");
        VertexRange::new(
            j * self.src_tile,
            ((j + 1) * self.src_tile).min(self.vertices),
        )
    }

    /// Iterates tiles in the row-product order the paper's baseline uses:
    /// for each destination tile, sweep source tiles.
    pub fn iter_row_major(&self) -> impl Iterator<Item = Tile> + '_ {
        (0..self.dst_tiles()).flat_map(move |i| {
            (0..self.src_tiles()).map(move |j| Tile {
                dst: self.dst_range(i),
                src: self.src_range(j),
            })
        })
    }

    /// Count of edges falling inside `tile`.
    pub fn edges_in_tile(&self, graph: &CsrGraph, tile: Tile) -> usize {
        tile.dst
            .iter()
            .map(|v| graph.neighbors_in(v, tile.src).0.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, Normalization};

    #[test]
    fn ranges_cover_exactly() {
        let t = Tiling::new(10, 4, 3);
        assert_eq!(t.dst_tiles(), 3);
        assert_eq!(t.src_tiles(), 4);
        assert_eq!(t.dst_range(2), VertexRange::new(8, 10));
        assert_eq!(t.src_range(3), VertexRange::new(9, 10));
        let total: usize = (0..t.dst_tiles()).map(|i| t.dst_range(i).len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn row_major_iteration_order() {
        let t = Tiling::new(4, 2, 2);
        let tiles: Vec<Tile> = t.iter_row_major().collect();
        assert_eq!(tiles.len(), 4);
        assert_eq!(tiles[0].dst, VertexRange::new(0, 2));
        assert_eq!(tiles[0].src, VertexRange::new(0, 2));
        assert_eq!(tiles[1].src, VertexRange::new(2, 4));
        assert_eq!(tiles[2].dst, VertexRange::new(2, 4));
    }

    #[test]
    fn edges_in_tiles_partition_edge_set() {
        let g = GraphBuilder::new(6)
            .undirected_edge(0, 5)
            .undirected_edge(1, 2)
            .undirected_edge(3, 4)
            .build(Normalization::Unit);
        let t = Tiling::new(6, 2, 3);
        let sum: usize = t
            .iter_row_major()
            .map(|tile| t.edges_in_tile(&g, tile))
            .sum();
        assert_eq!(sum, g.num_edges());
    }

    #[test]
    fn whole_tiling_is_one_tile() {
        let t = Tiling::whole(100);
        assert_eq!(t.dst_tiles(), 1);
        assert_eq!(t.src_tiles(), 1);
        assert_eq!(t.iter_row_major().count(), 1);
    }

    #[test]
    fn vertex_range_helpers() {
        let r = VertexRange::new(3, 7);
        assert_eq!(r.len(), 4);
        assert!(r.contains(3) && r.contains(6) && !r.contains(7));
        assert_eq!(r.to_string(), "3..7");
    }
}
