//! Set-associative global cache.
//!
//! Models the accelerator's on-chip global cache (Table III: 512 KB,
//! 16-way, LRU, 64 B lines) "resembling a last-level cache in modern CPUs"
//! (§III-B). Accesses are line-granular; the [`crate::MemorySystem`] breaks
//! byte spans into lines before probing.
//!
//! Two implementations share the replacement semantics bit for bit:
//!
//! * [`Cache`] — the fast path: one flat `Box<[u64]>` tag array with
//!   each set's tags kept in recency order (slot 0 = MRU). A probe is a
//!   linear scan over one set's (≤ 16) contiguous tags; promotions shift
//!   a few in-L1 words in place; no per-access heap traffic or per-set
//!   pointer chasing. Because hot lines sit at MRU, repeated probes of
//!   the same line short-circuit on the first compare — the dominant
//!   pattern when spans are swept line by line. (A per-way recency-stamp
//!   variant was measured slower; see the [`Cache`] docs.)
//! * [`ListCache`] — the original recency-list model (`Vec` per set,
//!   `remove`/`insert` on every promotion). Kept as the executable
//!   specification: the equivalence tests below drive both on randomized
//!   traces and demand identical [`CacheStats`], and the `SGCN_NAIVE=1`
//!   benchmark baseline runs it end to end.

/// Replacement policy for the global cache.
///
/// Table III specifies LRU; the alternatives exist for the replacement
/// ablation (`ablation_cache_policy` in `sgcn-bench`) — the paper's §V-C
/// motivates SAC precisely by LRU's thrashing pattern on oversized
/// working sets, the problem BIP-style insertion policies attack
/// (Qureshi et al., ISCA'07, the paper's reference \[61\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (the paper's configuration).
    #[default]
    Lru,
    /// First-in first-out: insertion order, no recency promotion.
    Fifo,
    /// Bimodal insertion: new lines insert at LRU position except one in
    /// `1/32` inserted at MRU — thrash-resistant for cyclic working sets.
    Bip,
}

/// Selects which cache implementation a [`crate::MemorySystem`] drives.
///
/// Both produce bit-identical statistics; `List` exists as the reference
/// baseline for the perf harness (`SGCN_NAIVE=1`) and equivalence tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CacheEngine {
    /// Flat recency-ordered tag array — the allocation-free fast path
    /// (default).
    #[default]
    Flat,
    /// Per-set recency `Vec`s — the original naive model.
    List,
}

impl CacheEngine {
    /// `List` when `SGCN_NAIVE=1` is set, `Flat` otherwise — how the
    /// benchmark harness forces the naive baseline end to end.
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("SGCN_NAIVE").ok().as_deref())
    }

    /// The selection rule behind [`CacheEngine::from_env`], split out so
    /// tests can drive it without mutating the process environment.
    pub fn from_env_value(naive: Option<&str>) -> Self {
        if naive == Some("1") {
            CacheEngine::List
        } else {
            CacheEngine::Flat
        }
    }
}

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl Default for CacheConfig {
    /// The paper's Table III cache: 512 KB, 16-way, 64 B lines, LRU.
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 512 * 1024,
            ways: 16,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
        }
    }
}

impl CacheConfig {
    /// Convenience constructor with capacity in KiB.
    pub fn with_capacity_kib(kib: u64) -> Self {
        CacheConfig {
            capacity_bytes: kib * 1024,
            ..CacheConfig::default()
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways/line, or capacity not
    /// a multiple of `ways × line_bytes`).
    pub fn sets(&self) -> usize {
        assert!(
            self.ways > 0 && self.line_bytes > 0,
            "degenerate cache geometry"
        );
        let set_bytes = self.ways as u64 * self.line_bytes;
        assert!(
            self.capacity_bytes.is_multiple_of(set_bytes) && self.capacity_bytes > 0,
            "capacity {} not a multiple of way×line {}",
            self.capacity_bytes,
            set_bytes
        );
        (self.capacity_bytes / set_bytes) as usize
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Line accesses that hit.
    pub hits: u64,
    /// Line accesses that missed.
    pub misses: u64,
    /// Evictions of valid lines.
    pub evictions: u64,
}

impl CacheStats {
    /// Total line accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

use crate::fastdiv::FastDiv;

/// A set-associative cache over 64 B (configurable) lines with a
/// selectable replacement policy (LRU by default) — the allocation-free
/// fast path.
///
/// All sets live in **one** flat `Box<[u64]>` tag array (row-major,
/// `ways` slots per set), with each set's tags kept in recency order
/// (slot 0 = MRU). A probe is a linear scan over ≤ `ways` contiguous
/// words; promotions shift a handful of in-L1 words with `copy_within`.
/// Compared to the original per-set `Vec` lists ([`ListCache`]) this
/// removes the per-set heap indirection and all per-access allocation,
/// and because hot lines sit at MRU, a repeated probe short-circuits on
/// the first compare. (A per-way recency-stamp variant was measured
/// too: the extra min-stamp scan on every miss made it ~25% slower than
/// this layout on thrashing traces, so the in-place recency order won.)
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Line-byte divider (shift when power-of-two).
    line_div: FastDiv,
    /// Set divider (mask when power-of-two).
    set_div: FastDiv,
    /// Line tags, `sets × ways`, each set's slice in recency order
    /// (slot 0 = MRU); only the first `len[set]` slots are valid.
    tags: Box<[u64]>,
    /// Valid-way count per set.
    len: Box<[u8]>,
    stats: CacheStats,
    /// Deterministic counter driving BIP's bimodal insertion.
    bip_counter: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`CacheConfig::sets`])
    /// or the associativity exceeds 255.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(
            config.ways <= u8::MAX as usize,
            "associativity above 255 unsupported"
        );
        Cache {
            config,
            line_div: FastDiv::new(config.line_bytes),
            set_div: FastDiv::new(sets as u64),
            tags: vec![0; sets * config.ways].into_boxed_slice(),
            len: vec![0; sets].into_boxed_slice(),
            stats: CacheStats::default(),
            bip_counter: 0,
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Probes the line containing `addr`; fills on miss, evicting per the
    /// configured policy. Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_line(self.line_div.div(addr))
    }

    /// Probes a line by index (the span fast path already has the line
    /// number; see [`Cache::access`]).
    #[inline]
    pub fn access_line(&mut self, line: u64) -> bool {
        self.probe_at(self.set_div.rem(line) as usize, line)
    }

    /// The probe body with the set index already known — the run replay
    /// walks consecutive sets incrementally instead of re-deriving
    /// `line % sets` per line.
    #[inline]
    fn probe_at(&mut self, set: usize, line: u64) -> bool {
        let ways = self.config.ways;
        let base = set * ways;
        let n = self.len[set] as usize;
        let set_tags = &mut self.tags[base..base + ways];

        let mut pos = usize::MAX;
        for (w, &t) in set_tags[..n].iter().enumerate() {
            if t == line {
                pos = w;
                break;
            }
        }
        if pos != usize::MAX {
            // FIFO does not promote on hit; LRU and BIP do. A repeat
            // probe finds the line at MRU and the shift is a no-op.
            if !matches!(self.config.policy, ReplacementPolicy::Fifo) {
                set_tags.copy_within(0..pos, 1);
                set_tags[0] = line;
            }
            self.stats.hits += 1;
            return true;
        }

        // Miss: evict the LRU slot when full, then insert at MRU (LRU and
        // FIFO) or at the LRU end (BIP's bimodal cold insert).
        let filled = if n == ways {
            self.stats.evictions += 1;
            ways
        } else {
            self.len[set] = (n + 1) as u8;
            n + 1
        };
        let at_mru = match self.config.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => true,
            ReplacementPolicy::Bip => {
                self.bip_counter = self.bip_counter.wrapping_add(1);
                self.bip_counter.is_multiple_of(32)
            }
        };
        if at_mru {
            set_tags.copy_within(0..filled - 1, 1);
            set_tags[0] = line;
        } else {
            set_tags[filled - 1] = line;
        }
        self.stats.misses += 1;
        false
    }

    /// Probes `lines` consecutive lines starting at `first_line` — the
    /// line-run replay behind `MemorySystem::access_lines`. One set-index
    /// computation covers the whole run (consecutive lines map to
    /// consecutive sets), and every maximal sub-run of consecutive
    /// *misses* is reported to `on_miss_run` as `(first missed line,
    /// count)` so the caller can batch the DRAM walk. Counter-for-counter
    /// and state-for-state identical to probing each line through
    /// [`Cache::access_line`] in ascending order. Returns the hit count.
    pub fn probe_run(
        &mut self,
        first_line: u64,
        lines: u64,
        mut on_miss_run: impl FnMut(u64, u64),
    ) -> u64 {
        let Cache {
            config,
            tags,
            len,
            stats,
            bip_counter,
            ..
        } = self;
        let ways = config.ways;
        let policy = config.policy;
        let nsets = len.len();
        let mut set = self.set_div.rem(first_line) as usize;
        let mut line = first_line;
        let mut remaining = lines;
        let mut hits = 0u64;
        let mut evictions = 0u64;
        let mut miss_start = 0u64;
        let mut miss_len = 0u64;
        // Walk the run in contiguous set segments (consecutive lines map
        // to consecutive sets): one bounds check per segment, then the
        // tag array streams through `chunks_exact_mut`.
        while remaining > 0 {
            let seg = remaining.min((nsets - set) as u64) as usize;
            let tags_seg = &mut tags[set * ways..(set + seg) * ways];
            let len_seg = &mut len[set..set + seg];
            for (set_tags, n_slot) in tags_seg.chunks_exact_mut(ways).zip(len_seg.iter_mut()) {
                let n = *n_slot as usize;
                let mut pos = usize::MAX;
                for (w, &t) in set_tags[..n].iter().enumerate() {
                    if t == line {
                        pos = w;
                        break;
                    }
                }
                if pos != usize::MAX {
                    if pos > 0 && !matches!(policy, ReplacementPolicy::Fifo) {
                        set_tags.copy_within(0..pos, 1);
                        set_tags[0] = line;
                    }
                    hits += 1;
                    if miss_len > 0 {
                        on_miss_run(miss_start, miss_len);
                        miss_len = 0;
                    }
                } else {
                    let filled = if n == ways {
                        evictions += 1;
                        ways
                    } else {
                        *n_slot = (n + 1) as u8;
                        n + 1
                    };
                    let at_mru = match policy {
                        ReplacementPolicy::Lru | ReplacementPolicy::Fifo => true,
                        ReplacementPolicy::Bip => {
                            *bip_counter = bip_counter.wrapping_add(1);
                            bip_counter.is_multiple_of(32)
                        }
                    };
                    if at_mru {
                        set_tags.copy_within(0..filled - 1, 1);
                        set_tags[0] = line;
                    } else {
                        set_tags[filled - 1] = line;
                    }
                    if miss_len == 0 {
                        miss_start = line;
                    }
                    miss_len += 1;
                }
                line += 1;
            }
            remaining -= seg as u64;
            set = 0;
        }
        if miss_len > 0 {
            on_miss_run(miss_start, miss_len);
        }
        stats.hits += hits;
        stats.misses += lines - hits;
        stats.evictions += evictions;
        hits
    }

    /// Books `n` additional hits without touching contents — the seam
    /// accounting of the line-run replay: a compacted read run's seam
    /// lines would each have re-probed the line touched immediately
    /// before (a guaranteed hit that never moves replacement state), so
    /// the replay skips the probe and records the hits here.
    #[inline]
    pub fn count_repeat_hits(&mut self, n: u64) {
        self.stats.hits += n;
    }

    /// Non-mutating presence probe of the line containing `addr`: no
    /// fill, no promotion, no statistics. The warm-reuse scheduling path
    /// uses this to *ask* whether a request's working set is resident
    /// before committing it to an engine.
    #[inline]
    pub fn peek(&self, addr: u64) -> bool {
        self.peek_line(self.line_div.div(addr))
    }

    /// Non-mutating presence probe by line index (see [`Cache::peek`]).
    #[inline]
    pub fn peek_line(&self, line: u64) -> bool {
        let ways = self.config.ways;
        let set = self.set_div.rem(line) as usize;
        let base = set * ways;
        let n = self.len[set] as usize;
        self.tags[base..base + n].contains(&line)
    }

    /// Invalidates the line containing `addr` if present (used by streaming
    /// writes that bypass the cache, so later reads see fresh data).
    /// Returns `true` if a line was dropped.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        self.invalidate_line(self.line_div.div(addr))
    }

    /// Invalidates a line by index (the span fast path already has the
    /// line number; see [`Cache::access_line`]).
    #[inline]
    pub fn invalidate_line(&mut self, line: u64) -> bool {
        let ways = self.config.ways;
        let set = self.set_div.rem(line) as usize;
        let base = set * ways;
        let n = self.len[set] as usize;
        let set_tags = &mut self.tags[base..base + ways];
        match set_tags[..n].iter().position(|&t| t == line) {
            Some(w) => {
                set_tags.copy_within(w + 1..n, w);
                self.len[set] = (n - 1) as u8;
                true
            }
            None => false,
        }
    }

    /// Invalidates `lines` consecutive lines starting at `first_line`
    /// (the streaming-write line-run replay), walking the consecutive
    /// sets incrementally. Identical state to calling
    /// [`Cache::invalidate_line`] per line in ascending order.
    pub fn invalidate_run(&mut self, first_line: u64, lines: u64) {
        let ways = self.config.ways;
        let nsets = self.len.len();
        let mut set = self.set_div.rem(first_line) as usize;
        for line in first_line..first_line + lines {
            let n = self.len[set] as usize;
            let base = set * ways;
            let set_tags = &mut self.tags[base..base + ways];
            if let Some(w) = set_tags[..n].iter().position(|&t| t == line) {
                set_tags.copy_within(w + 1..n, w);
                self.len[set] = (n - 1) as u8;
            }
            set += 1;
            if set == nsets {
                set = 0;
            }
        }
    }

    /// Invalidates all lines, keeping the statistics.
    pub fn flush(&mut self) {
        self.len.fill(0);
    }

    /// Resets the statistics, keeping cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

/// The original recency-list cache: per set, a `Vec` of line tags kept in
/// recency order (index 0 = MRU), with `remove`/`insert` on every
/// promotion. Behaviourally identical to [`Cache`] — kept as the
/// executable reference and the `SGCN_NAIVE=1` benchmark baseline.
#[derive(Debug, Clone)]
pub struct ListCache {
    config: CacheConfig,
    sets: usize,
    lines: Vec<Vec<u64>>,
    stats: CacheStats,
    bip_counter: u64,
}

impl ListCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        ListCache {
            config,
            sets,
            lines: vec![Vec::with_capacity(config.ways); sets],
            stats: CacheStats::default(),
            bip_counter: 0,
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Probes the line containing `addr`; fills on miss, evicting per the
    /// configured policy. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes;
        let set = (line % self.sets as u64) as usize;
        let policy = self.config.policy;
        let ways = &mut self.lines[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            // FIFO does not promote on hit; LRU and BIP do.
            if !matches!(policy, ReplacementPolicy::Fifo) {
                let tag = ways.remove(pos);
                ways.insert(0, tag);
            }
            self.stats.hits += 1;
            true
        } else {
            if ways.len() == self.config.ways {
                ways.pop();
                self.stats.evictions += 1;
            }
            let at_mru = match policy {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => true,
                ReplacementPolicy::Bip => {
                    self.bip_counter = self.bip_counter.wrapping_add(1);
                    self.bip_counter.is_multiple_of(32)
                }
            };
            if at_mru {
                ways.insert(0, line);
            } else {
                ways.push(line);
            }
            self.stats.misses += 1;
            false
        }
    }

    /// Books `n` additional hits without touching contents (see
    /// [`Cache::count_repeat_hits`] — both engines account seams
    /// identically).
    #[inline]
    pub fn count_repeat_hits(&mut self, n: u64) {
        self.stats.hits += n;
    }

    /// Non-mutating presence probe of the line containing `addr` (see
    /// [`Cache::peek`] — both engines answer identically).
    pub fn peek(&self, addr: u64) -> bool {
        self.peek_line(addr / self.config.line_bytes)
    }

    /// Non-mutating presence probe by line index.
    pub fn peek_line(&self, line: u64) -> bool {
        let set = (line % self.sets as u64) as usize;
        self.lines[set].contains(&line)
    }

    /// Invalidates the line containing `addr` if present. Returns `true`
    /// if a line was dropped.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes;
        let set = (line % self.sets as u64) as usize;
        let ways = &mut self.lines[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            ways.remove(pos);
            true
        } else {
            false
        }
    }

    /// Invalidates all lines, keeping the statistics.
    pub fn flush(&mut self) {
        for set in &mut self.lines {
            set.clear();
        }
    }

    /// Resets the statistics, keeping cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
        })
    }

    #[test]
    fn default_matches_table3() {
        let c = CacheConfig::default();
        assert_eq!(c.capacity_bytes, 512 * 1024);
        assert_eq!(c.ways, 16);
        assert_eq!(c.sets(), 512);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with line_idx % 4 == 0: addresses 0, 256, 512.
        c.access(0);
        c.access(256);
        c.access(0); // 0 is MRU, 256 LRU
        c.access(512); // evicts 256
        assert!(c.access(0), "0 should survive");
        assert!(!c.access(256), "256 was evicted");
        assert_eq!(c.stats().evictions, 2); // 256 evicted, then 0 or 512
    }

    #[test]
    fn working_set_within_capacity_all_hits() {
        let mut c = tiny();
        let lines: Vec<u64> = (0..8).map(|i| i * 64).collect(); // exactly capacity
        for &a in &lines {
            c.access(a);
        }
        for &a in &lines {
            assert!(c.access(a), "line {a} should hit");
        }
        assert_eq!(c.stats().hit_rate(), 0.5);
    }

    #[test]
    fn thrashing_working_set_misses() {
        let mut c = tiny();
        // 16 distinct lines in a 8-line cache, cycled twice: all misses.
        for _ in 0..2 {
            for i in 0..16u64 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 32);
    }

    #[test]
    fn flush_clears_contents_not_stats() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert!(!c.access(0));
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn peek_reports_presence_without_touching_state() {
        let mut c = tiny();
        assert!(!c.peek(0), "cold cache holds nothing");
        c.access(0);
        c.access(256); // same set as line 0 (4 sets, stride 256 B)
        let before = c.stats();
        assert!(c.peek(0));
        assert!(c.peek(256));
        assert!(!c.peek(512));
        assert_eq!(c.stats(), before, "peek must not count as an access");
        // Peek must not promote: line 0 is still LRU, so inserting a third
        // line into the set evicts it.
        c.peek(0);
        c.access(512);
        assert!(!c.peek(0), "peek promoted the LRU line");
        assert!(c.peek(256));
    }

    #[test]
    fn invalidate_drops_line_and_short_circuit() {
        let mut c = tiny();
        c.access(0);
        assert!(c.access(0), "repeat probe hits via short-circuit");
        assert!(c.invalidate(0), "line present");
        assert!(!c.invalidate(0), "already gone");
        assert!(!c.access(0), "invalidate must clear the repeat fast path");
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            capacity_bytes: 1000,
            ways: 3,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
        });
    }

    fn with_policy(policy: ReplacementPolicy) -> Cache {
        Cache::new(CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
            policy,
        })
    }

    #[test]
    fn fifo_does_not_promote_on_hit() {
        let mut c = with_policy(ReplacementPolicy::Fifo);
        // Set 0: lines 0, 256. Hit 0, then insert 512: FIFO evicts 0 (the
        // oldest insertion) even though it was just touched.
        c.access(0);
        c.access(256);
        assert!(c.access(0));
        c.access(512);
        assert!(!c.access(0), "FIFO evicted the oldest-inserted line");
        // LRU, by contrast, keeps the recently touched line.
        let mut l = with_policy(ReplacementPolicy::Lru);
        l.access(0);
        l.access(256);
        assert!(l.access(0));
        l.access(512);
        assert!(l.access(0), "LRU kept the recently used line");
    }

    #[test]
    fn bip_resists_cyclic_thrash() {
        // Cyclic working set slightly over capacity: LRU gets zero hits,
        // BIP retains a fraction of the set.
        let lines: Vec<u64> = (0..12u64).map(|i| i * 64 * 4).collect(); // all map set 0? no: stride 256 → sets cycle
        let run = |policy| {
            let mut c = with_policy(policy);
            for _ in 0..50 {
                for &a in &lines {
                    c.access(a);
                }
            }
            c.stats().hits
        };
        let lru_hits = run(ReplacementPolicy::Lru);
        let bip_hits = run(ReplacementPolicy::Bip);
        assert!(
            bip_hits > lru_hits,
            "BIP {bip_hits} hits should beat LRU {lru_hits} under thrash"
        );
    }

    #[test]
    fn policies_agree_when_working_set_fits() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Bip,
        ] {
            let mut c = with_policy(policy);
            let lines: Vec<u64> = (0..8u64).map(|i| i * 64).collect();
            for _ in 0..3 {
                for &a in &lines {
                    c.access(a);
                }
            }
            assert_eq!(c.stats().misses, 8, "{policy:?} compulsory misses only");
        }
    }

    #[test]
    fn engine_from_env_defaults_to_flat() {
        // The test environment does not set SGCN_NAIVE.
        assert_eq!(CacheEngine::from_env(), CacheEngine::Flat);
        // The selection rule itself (driven without touching the
        // process environment).
        assert_eq!(CacheEngine::from_env_value(None), CacheEngine::Flat);
        assert_eq!(CacheEngine::from_env_value(Some("0")), CacheEngine::Flat);
        assert_eq!(CacheEngine::from_env_value(Some("")), CacheEngine::Flat);
        assert_eq!(CacheEngine::from_env_value(Some("1")), CacheEngine::List);
    }

    mod equivalence {
        //! The flat cache must be a drop-in replacement for the recency
        //! list: identical hit/miss/eviction streams on randomized traces,
        //! for every policy, including interleaved invalidates/flushes.

        use super::*;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};

        fn drive(policy: ReplacementPolicy, seed: u64, ops: usize) {
            let config = CacheConfig {
                capacity_bytes: 4 * 1024,
                ways: 4,
                line_bytes: 64,
                policy,
            };
            let mut flat = Cache::new(config);
            let mut list = ListCache::new(config);
            let mut rng = SmallRng::seed_from_u64(seed);
            for op in 0..ops {
                // Addresses over 4× capacity with some repeat pressure.
                let addr = rng.gen_range(0u64..16 * 1024);
                match rng.gen_range(0u32..100) {
                    0..=79 => {
                        let (h1, h2) = (flat.access(addr), list.access(addr));
                        assert_eq!(h1, h2, "{policy:?} op {op}: access({addr}) diverged");
                    }
                    80..=89 => {
                        // Repeat probe of the previous address region to
                        // exercise the short-circuit path.
                        let (h1, h2) = (flat.access(addr & !63), list.access(addr & !63));
                        assert_eq!(h1, h2, "{policy:?} op {op}: repeat access diverged");
                    }
                    90..=97 => {
                        let (i1, i2) = (flat.invalidate(addr), list.invalidate(addr));
                        assert_eq!(i1, i2, "{policy:?} op {op}: invalidate({addr}) diverged");
                    }
                    98 => {
                        let (p1, p2) = (flat.peek(addr), list.peek(addr));
                        assert_eq!(p1, p2, "{policy:?} op {op}: peek({addr}) diverged");
                    }
                    _ => {
                        flat.flush();
                        list.flush();
                    }
                }
                assert_eq!(
                    flat.stats(),
                    list.stats(),
                    "{policy:?} op {op}: stats diverged"
                );
            }
        }

        #[test]
        fn flat_matches_list_on_random_traces() {
            for policy in [
                ReplacementPolicy::Lru,
                ReplacementPolicy::Fifo,
                ReplacementPolicy::Bip,
            ] {
                for seed in 0..8 {
                    drive(policy, 0xC0FFEE ^ seed, 4000);
                }
            }
        }

        #[test]
        fn flat_matches_list_under_same_line_bursts() {
            // Dense same-line repeats stress the last-line fast path.
            let config = CacheConfig {
                capacity_bytes: 1024,
                ways: 2,
                line_bytes: 64,
                policy: ReplacementPolicy::Bip,
            };
            let mut flat = Cache::new(config);
            let mut list = ListCache::new(config);
            let mut rng = SmallRng::seed_from_u64(99);
            for _ in 0..2000 {
                let addr = rng.gen_range(0u64..4096);
                let repeats = rng.gen_range(1usize..5);
                for _ in 0..repeats {
                    assert_eq!(flat.access(addr), list.access(addr));
                }
            }
            assert_eq!(flat.stats(), list.stats());
        }
    }
}
