//! The online queueing harness behind `BENCH_queue.json`.
//!
//! Puts the sampled-subgraph serving path behind live traffic: a seeded
//! arrival process (open-loop exponential/bursty/diurnal or a closed
//! loop of K clients) feeds an N-engine event-driven scheduler whose
//! engines keep their feature caches **warm across requests**
//! (`sgcn::serving::queueing`). The fleet may be heterogeneous (mixed
//! fast/slow engine classes, optional cross-engine work stealing), and
//! an SLO deadline turns on admission control. The summary reports
//! queueing delay and end-to-end latency percentiles over completed
//! requests, shed/violation counts, fleet utilization, makespan and
//! warm-cache reuse.
//!
//! Every field of the JSON is a pure function of `(stream, knobs)` — the
//! only parallel stage returns results in stream order and the event
//! loop is serial — so the file is **byte-identical at any
//! `SGCN_THREADS`** (wall-clock timings go to stdout only). Knobs:
//!
//! * `SGCN_REQUESTS` — stream length (default 1000; 0 renders the
//!   all-zero summary instead of aborting),
//! * `SGCN_LOAD` — offered load ρ (default 0.8),
//! * `SGCN_ENGINES` — engine count (default 4),
//! * `SGCN_POLICY` — `fifo` / `least` / `affinity` / `slo` / `cost` /
//!   `shard` (default `affinity`),
//! * `SGCN_TRAFFIC` — `exp` / `bursty` / `diurnal` / `closed[:K]`
//!   (default `exp`),
//! * `SGCN_SLO_CYCLES` — end-to-end deadline in cycles with load
//!   shedding on; 0 = no SLO (default 0),
//! * `SGCN_FLEET` — `uniform` / `steal` / `mixed` / `mixed-steal` / a
//!   comma-separated scale list, optionally `+steal` (default
//!   `uniform`),
//! * `SGCN_LINEUP` — heterogeneous hardware lineup: `uniform` / `eco` /
//!   `mixed`, optionally `+steal`-suffixed, giving every engine a real
//!   per-class accelerator platform (overrides `SGCN_FLEET`); or
//!   `sweep` to run the lineup × routing-policy capacity planner and
//!   write `BENCH_lineup.json` (`SGCN_LINEUP_OUT`) instead of a single
//!   run (default: unset — legacy scalar fleet),
//! * `SGCN_FORMATS` — per-request serving-format dispatch (needs
//!   `SGCN_LINEUP`): `fixed:<format>` pins every request to one palette
//!   format, `adaptive` lets the cost model pick `(engine, format)` per
//!   request, `sweep` runs every fixed format plus adaptive and writes
//!   `BENCH_format.json` (`SGCN_FORMAT_OUT`) with an "adaptive vs best
//!   fixed p99" verdict (default: unset — native format),
//! * `SGCN_HOTSPOT` — hot-seed pool size, 0 = uniform traffic
//!   (default `requests / 6`),
//! * `SGCN_FAULTS` — failure drill: `none` / `mtbf[:M,R[,K]]` /
//!   `script:E@DOWN+DUR;…` (default `none`),
//! * `SGCN_RETRIES` — retry budget `A[:BACKOFF]` — max dispatch
//!   attempts per request, optional redrive backoff in cycles (default
//!   `3`),
//! * `SGCN_AUTOSCALE` — elastic fleet: `none` / `auto[:MIN[:PROV]]`
//!   (default `none`),
//! * `SGCN_CLASSES` — deadline classes: `none` / `mix:FRAC` /
//!   `mix:FRAC+preempt` — a seeded interactive/batch mix with per-class
//!   deadlines, shed switches and retry budgets; `+preempt` lets
//!   arriving interactive requests preempt in-service batch work
//!   (default `none`),
//! * `SGCN_DEGRADE` — brownout ladder: `none` /
//!   `brownout[:DOWN,UP[,COOLDOWN]]` — under backlog pressure the fleet
//!   steps adaptive → cheapest fixed format → lite fanouts and back
//!   (needs `SGCN_LINEUP` and `SGCN_FORMATS=adaptive`; default `none`),
//! * `SGCN_LOG_INGEST` — ingest a real timestamp log (one timestamp per
//!   line) as the arrival process, rescaled so the stream's offered
//!   load matches `SGCN_LOAD`; missing/malformed files are hard errors,
//! * `SGCN_CAPACITY=sweep` — run the capacity planner (fleet sizes ×
//!   class mixes under a drills-on overload) and write
//!   `BENCH_capacity.json` (`SGCN_CAPACITY_OUT`) instead of a single
//!   run,
//! * `SGCN_SHARDS` — sharded feature store: a shard count ≥ 1 wires the
//!   single run through a contiguous-range shard plan (cross-shard
//!   neighbor rows pay a modeled network bill), or `sweep` to run the
//!   shard-count × hub-replication × routing grid plus a million-vertex
//!   power-law plan and write `BENCH_shard.json` (`SGCN_SHARD_OUT`)
//!   with a locality-wins verdict (default: unset — no sharding),
//! * `SGCN_REPLICATE` — hub vertices replicated to every shard, by
//!   descending degree (needs `SGCN_SHARDS`; default 0),
//! * `SGCN_TRACE_RECORD` — write the run's arrival trace to this path,
//! * `SGCN_TRACE_REPLAY` — replay a recorded arrival trace from this
//!   path instead of generating traffic,
//! * `SGCN_QUICK=1` — test-scale graph, `SGCN_QUEUE_OUT` — output path.
//!
//! Every enum-valued knob is strict: an unknown value aborts with a
//! message listing the valid spellings (silent fallbacks would make a
//! typo'd CI matrix cell silently re-run the default scenario).

use sgcn::accel::AccelModel;
use sgcn::serving::queueing::{
    feature_row_bytes, prepare, prepare_degraded, prepare_lineup, prepare_matrix, simulate_queue,
    ArrivalTrace, ClassPolicy, DegradePolicy, EngineLineup, FailureModel, FleetSpec, FormatPolicy,
    QueueConfig, QueueSummary, RequestClass, RetryPolicy, ScalePolicy, SchedPolicy, ServeFormat,
    ShardPlan, SloConfig, TrafficModel,
};
use sgcn::serving::{ServingConfig, ServingContext};
use sgcn_bench::{banner, experiment_config};
use sgcn_graph::datasets::DatasetId;
use sgcn_graph::generate::power_law;
use sgcn_graph::sampling::Fanouts;
use sgcn_graph::Normalization;

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses an enum-valued knob, aborting on unknown values with the list
/// of valid spellings — never a silent fallback.
fn knob<T>(key: &str, value: &str, valid: &str, parse: impl FnOnce(&str) -> Option<T>) -> T {
    parse(value).unwrap_or_else(|| panic!("unknown {key} {value:?} — valid values: {valid}"))
}

/// Valid spellings per knob, surfaced verbatim in abort messages.
const POLICY_VALUES: &str = "fifo, least, affinity, slo, cost, shard";
const TRAFFIC_VALUES: &str = "exp, bursty, diurnal, closed[:CLIENTS]";
const FLEET_VALUES: &str =
    "uniform, steal, mixed, mixed-steal, or a comma-separated scale list (optionally +steal)";
const LINEUP_VALUES: &str = "uniform, eco, mixed (each optionally +steal), or sweep";
const FAULTS_VALUES: &str = "none, mtbf[:MTBF,MTTR[,KILLED]], script:ENGINE@DOWN+DUR;...";
const RETRY_VALUES: &str = "ATTEMPTS[:BACKOFF_CYCLES]";
const AUTOSCALE_VALUES: &str = "none, auto[:MIN[:PROVISION_CYCLES]]";
const CLASSES_VALUES: &str = "none, mix:FRAC, mix:FRAC+preempt (FRAC in [0,1])";
const DEGRADE_VALUES: &str = "none, brownout, brownout:DOWN,UP[,COOLDOWN] (DOWN > UP >= 0)";
const CAPACITY_VALUES: &str = "sweep";
const SHARDS_VALUES: &str = "a shard count >= 1, or sweep";
const REPLICATE_VALUES: &str = "a non-negative hub-replication count";
const TRACE_FORMAT: &str = "an arrival-trace JSON written by SGCN_TRACE_RECORD \
     ({\"trace\": \"sgcn-arrivals\", \"version\": 1, \"traffic\": ..., \"times\": [...]})";

/// The lineup × routing-policy capacity planner behind
/// `BENCH_lineup.json`: uniform vs mixed hardware lineups × {least-
/// loaded, cache-affinity, cost-aware} under bursty traffic, one
/// per-class preparation shared by every cell, plus a `cheapest_p99`
/// verdict — the cell minimizing p99 × cost units (ties to the cheaper
/// lineup, then sweep order). Every byte of the JSON is a pure function
/// of `(stream, knobs)`.
fn lineup_sweep(requests: usize, engines: usize, load: f64, hotspot: usize) {
    let cfg = experiment_config();
    let hw = cfg.hw();
    let fanouts = Fanouts::new(vec![10, 5]);
    let label = format!(
        "{} fanout {} SGCN x{engines} lineup sweep bursty load {load:.2}",
        DatasetId::PubMed.abbrev(),
        fanouts.label()
    );
    let ctx = ServingContext::new(ServingConfig {
        dataset: DatasetId::PubMed,
        scale: cfg.scale,
        fanouts,
        width: cfg.width,
        seed: cfg.seed,
    });
    let stream = if hotspot == 0 {
        ctx.request_stream(requests)
    } else {
        ctx.hotspot_stream(requests, hotspot)
    };
    let lineups = [
        EngineLineup::uniform(engines, hw),
        EngineLineup::mixed(engines, hw),
    ];
    let policies = [
        SchedPolicy::LeastLoaded,
        SchedPolicy::CacheAffinity,
        SchedPolicy::CostAware,
    ];
    let t0 = std::time::Instant::now();
    // Both lineups share the same two hardware classes, so one
    // per-class preparation (the only parallel stage) serves all cells.
    let prepared = prepare_lineup(&ctx, &stream, &AccelModel::sgcn(), &lineups[1]);
    let row_bytes = feature_row_bytes(&ctx);
    let mut cells: Vec<(String, &'static str, QueueSummary)> = Vec::new();
    for lineup in &lineups {
        for policy in policies {
            let qcfg = QueueConfig::new(engines, policy, load, cfg.seed)
                .with_traffic(TrafficModel::bursty_default())
                .with_lineup(lineup.clone());
            let s = simulate_queue(&prepared, &qcfg, &hw, row_bytes).summary;
            println!(
                "  {:>16} {:>14}: p50e {:>9} / p99e {:>9} cycles, warm {:>5.1}%, {:.2} cost units",
                lineup.label(),
                policy.label(),
                s.p50_e2e_cycles,
                s.p99_e2e_cycles,
                s.warm_hit_rate * 100.0,
                s.cost_units
            );
            cells.push((lineup.label(), policy.label(), s));
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let best = cells
        .iter()
        .min_by(|a, b| {
            let ka = a.2.p99_e2e_cycles as f64 * a.2.cost_units;
            let kb = b.2.p99_e2e_cycles as f64 * b.2.cost_units;
            ka.total_cmp(&kb)
                .then(a.2.cost_units.total_cmp(&b.2.cost_units))
        })
        .expect("the sweep has cells");
    println!(
        "cheapest p99:    {} with {} — p99 {} cycles at {:.2} cost units",
        best.0, best.1, best.2.p99_e2e_cycles, best.2.cost_units
    );
    println!(
        "host replay:     {wall:.2}s wall ({} cells on {} thread(s))",
        cells.len(),
        sgcn_par::threads()
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"label\": \"{label}\",\n"));
    json.push_str(&format!("  \"requests\": {requests},\n"));
    json.push_str(&format!("  \"engines\": {engines},\n"));
    json.push_str(&format!("  \"offered_load\": {load:.6},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, (lineup, policy, s)) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"lineup\": \"{lineup}\", \"policy\": \"{policy}\", \"cost_units\": {:.3}, \
             \"completed\": {}, \"p50_e2e_cycles\": {}, \"p99_e2e_cycles\": {}, \
             \"makespan_cycles\": {}, \"utilization\": {:.6}, \"warm_hit_rate\": {:.6}}}{}\n",
            s.cost_units,
            s.completed,
            s.p50_e2e_cycles,
            s.p99_e2e_cycles,
            s.makespan_cycles,
            s.utilization,
            s.warm_hit_rate,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"cheapest_p99\": {{\"lineup\": \"{}\", \"policy\": \"{}\", \"cost_units\": {:.3}, \
         \"p99_e2e_cycles\": {}}}\n",
        best.0, best.1, best.2.cost_units, best.2.p99_e2e_cycles
    ));
    json.push_str("}\n");
    let path = std::env::var("SGCN_LINEUP_OUT").unwrap_or_else(|_| "BENCH_lineup.json".into());
    std::fs::write(&path, &json).expect("write BENCH_lineup.json");
    println!("wrote {path}");
}

/// The serving-format dispatch planner behind `BENCH_format.json`:
/// every fixed palette format plus adaptive per-request dispatch on the
/// **mixed** lineup, routed `cost-aware` under bursty traffic. One
/// `(class, format)` matrix preparation is shared by every cell. The
/// verdict compares adaptive's p99 against the best single fixed
/// format — the paper's Fig. 3 claim ("format choice dominates cost")
/// turned into an online scheduling win. Every byte of the JSON is a
/// pure function of `(stream, knobs)`.
fn format_sweep(requests: usize, engines: usize, load: f64, hotspot: usize) {
    let cfg = experiment_config();
    let hw = cfg.hw();
    let fanouts = Fanouts::new(vec![10, 5]);
    let label = format!(
        "{} fanout {} SGCN x{engines} format sweep mixed cost-aware bursty load {load:.2}",
        DatasetId::PubMed.abbrev(),
        fanouts.label()
    );
    let ctx = ServingContext::new(ServingConfig {
        dataset: DatasetId::PubMed,
        scale: cfg.scale,
        fanouts,
        width: cfg.width,
        seed: cfg.seed,
    });
    let stream = if hotspot == 0 {
        ctx.request_stream(requests)
    } else {
        ctx.hotspot_stream(requests, hotspot)
    };
    let lineup = EngineLineup::mixed(engines, hw);
    let policies: Vec<FormatPolicy> = ServeFormat::PALETTE
        .iter()
        .map(|&f| FormatPolicy::Fixed(f))
        .chain(std::iter::once(FormatPolicy::Adaptive))
        .collect();
    let t0 = std::time::Instant::now();
    // One (class, format) matrix preparation (the only parallel stage)
    // serves every policy cell.
    let prepared = prepare_matrix(
        &ctx,
        &stream,
        &AccelModel::sgcn(),
        &lineup,
        &ServeFormat::PALETTE,
    );
    let row_bytes = feature_row_bytes(&ctx);
    let mut cells: Vec<(String, QueueSummary)> = Vec::new();
    for policy in &policies {
        let qcfg = QueueConfig::new(engines, SchedPolicy::CostAware, load, cfg.seed)
            .with_traffic(TrafficModel::bursty_default())
            .with_lineup(lineup.clone())
            .with_format(*policy);
        let s = simulate_queue(&prepared, &qcfg, &hw, row_bytes).summary;
        println!(
            "  {:>20}: p50e {:>9} / p99e {:>9} cycles, warm {:>5.1}%, pred err {:>5.2}%",
            policy.label(),
            s.p50_e2e_cycles,
            s.p99_e2e_cycles,
            s.warm_hit_rate * 100.0,
            s.format_pred_err * 100.0
        );
        cells.push((policy.label(), s));
    }
    let wall = t0.elapsed().as_secs_f64();
    let (adaptive_label, adaptive) = cells.last().expect("the sweep has an adaptive cell");
    let best_fixed = cells[..cells.len() - 1]
        .iter()
        .min_by(|a, b| {
            (a.1.p99_e2e_cycles, a.1.makespan_cycles)
                .cmp(&(b.1.p99_e2e_cycles, b.1.makespan_cycles))
        })
        .expect("the sweep has fixed cells");
    let wins = adaptive.p99_e2e_cycles <= best_fixed.1.p99_e2e_cycles;
    println!(
        "verdict:         {adaptive_label} p99 {} vs best fixed ({}) p99 {} — adaptive {}",
        adaptive.p99_e2e_cycles,
        best_fixed.0,
        best_fixed.1.p99_e2e_cycles,
        if wins { "wins (<=)" } else { "LOSES" }
    );
    println!(
        "host replay:     {wall:.2}s wall ({} cells on {} thread(s))",
        cells.len(),
        sgcn_par::threads()
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"label\": \"{label}\",\n"));
    json.push_str(&format!("  \"requests\": {requests},\n"));
    json.push_str(&format!("  \"engines\": {engines},\n"));
    json.push_str(&format!("  \"offered_load\": {load:.6},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, (policy, s)) in cells.iter().enumerate() {
        let dispatch: Vec<String> = s
            .format_dispatch
            .iter()
            .map(|(f, c)| format!("\"{f}\": {c}"))
            .collect();
        json.push_str(&format!(
            "    {{\"format_policy\": \"{policy}\", \"completed\": {}, \
             \"p50_e2e_cycles\": {}, \"p99_e2e_cycles\": {}, \"makespan_cycles\": {}, \
             \"utilization\": {:.6}, \"warm_hit_rate\": {:.6}, \"format_pred_err\": {:.6}, \
             \"format_dispatch\": {{{}}}}}{}\n",
            s.completed,
            s.p50_e2e_cycles,
            s.p99_e2e_cycles,
            s.makespan_cycles,
            s.utilization,
            s.warm_hit_rate,
            s.format_pred_err,
            dispatch.join(", "),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"verdict\": {{\"adaptive_p99_e2e_cycles\": {}, \"best_fixed\": \"{}\", \
         \"best_fixed_p99_e2e_cycles\": {}, \"adaptive_beats_best_fixed\": {}}}\n",
        adaptive.p99_e2e_cycles, best_fixed.0, best_fixed.1.p99_e2e_cycles, wins
    ));
    json.push_str("}\n");
    let path = std::env::var("SGCN_FORMAT_OUT").unwrap_or_else(|_| "BENCH_format.json".into());
    std::fs::write(&path, &json).expect("write BENCH_format.json");
    println!("wrote {path}");
}

/// Per-class "SLO met" verdict of one capacity cell: the class had
/// offered traffic and at most 10% of it ended badly — shed, failed,
/// or completed past the class deadline.
fn class_met(s: &QueueSummary, c: usize) -> (u64, bool) {
    let offered = s.class_completed[c] + s.class_shed[c] + s.class_failed[c];
    let bad = s.class_shed[c] + s.class_failed[c] + s.class_violations[c];
    (offered, offered > 0 && bad * 10 <= offered)
}

/// The interactive class's shed fraction of its own offered traffic.
fn interactive_shed_rate(s: &QueueSummary) -> f64 {
    let i = RequestClass::Interactive.idx();
    let offered = s.class_completed[i] + s.class_shed[i] + s.class_failed[i];
    if offered == 0 {
        0.0
    } else {
        s.class_shed[i] as f64 / offered as f64
    }
}

/// The capacity planner behind `BENCH_capacity.json`: fleet sizes ×
/// class mixes under a drills-on overload (bursty traffic at ρ ≥ 1.2
/// with MTBF faults), every cell protected by deadline classes with
/// preemption and the brownout ladder. The plan reports the minimum
/// fleet meeting each class's SLO (≤ 10% bad outcomes) per mix, and the
/// verdict re-runs the base fleet with preemption + brownout disabled
/// on the same seed — the overload-resilience claim (better interactive
/// p99 *and* shed rate) as a committed, drift-checked number. Every
/// byte of the JSON is a pure function of `(stream, knobs)`.
fn capacity_plan(requests: usize, engines: usize, load: f64, hotspot: usize) {
    let cfg = experiment_config();
    let hw = cfg.hw();
    // Capacity planning is an overload exercise: keep ρ well over 1 so
    // both the fleet sizing and the protected-vs-baseline verdict bite.
    let rho = load.max(1.2);
    let fanouts = Fanouts::new(vec![10, 5]);
    let label = format!(
        "{} fanout {} SGCN capacity plan mixed cost-aware bursty load {rho:.2} mtbf drills",
        DatasetId::PubMed.abbrev(),
        fanouts.label()
    );
    let ctx = ServingContext::new(ServingConfig {
        dataset: DatasetId::PubMed,
        scale: cfg.scale,
        fanouts,
        width: cfg.width,
        seed: cfg.seed,
    });
    let stream = if hotspot == 0 {
        ctx.request_stream(requests)
    } else {
        ctx.hotspot_stream(requests, hotspot)
    };
    let fleet_sizes = [2usize, 3, 4, 6, 8, 12, 16];
    let mixes = [0.3f64, 0.6];
    let t0 = std::time::Instant::now();
    // One (class, format, lite) preparation serves every cell: the
    // mixed lineup's hardware classes are engine-count independent.
    let prepared = prepare_degraded(
        &ctx,
        &stream,
        &AccelModel::sgcn(),
        &EngineLineup::mixed(engines.max(2), hw),
        &ServeFormat::PALETTE,
    );
    let row_bytes = feature_row_bytes(&ctx);
    let base = |e: usize| {
        QueueConfig::new(e, SchedPolicy::CostAware, rho, cfg.seed)
            .with_traffic(TrafficModel::bursty_default())
            .with_lineup(EngineLineup::mixed(e, hw))
            .with_format(FormatPolicy::Adaptive)
            .with_faults(FailureModel::mtbf_default())
            .with_retry(RetryPolicy::default())
    };
    // Record the base fleet's offered-arrival timeline once, then pin
    // the SAME absolute timeline on every cell through the replay seam.
    // Without it each fleet size would re-normalize the traffic model
    // to its own capacity — every cell would see the same relative
    // overload and no fleet could ever catch up, which is the opposite
    // of a capacity question.
    let trace = simulate_queue(
        &prepared,
        &base(engines).with_classes(ClassPolicy::mix(mixes[0])),
        &hw,
        row_bytes,
    )
    .arrival_trace();
    let scenario = |e: usize, classes: ClassPolicy, brownout: bool| {
        let mut qc = base(e).with_trace(trace.clone()).with_classes(classes);
        if brownout {
            qc = qc.with_degrade(DegradePolicy::default());
        }
        simulate_queue(&prepared, &qc, &hw, row_bytes).summary
    };
    let iv = RequestClass::Interactive.idx();
    let bt = RequestClass::Batch.idx();
    let mut cells: Vec<(usize, f64, QueueSummary)> = Vec::new();
    for &mix in &mixes {
        for &e in &fleet_sizes {
            let s = scenario(e, ClassPolicy::mix(mix).with_preemption(), true);
            let (_, met_i) = class_met(&s, iv);
            let (_, met_b) = class_met(&s, bt);
            println!(
                "  mix {mix:.2} x{e}: int p99 {:>9} (met {}), batch p99 {:>9} (met {}), \
                 {} preempted, {} degraded",
                s.class_p99_e2e[iv], met_i, s.class_p99_e2e[bt], met_b, s.preemptions, s.degraded
            );
            cells.push((e, mix, s));
        }
    }
    // The acceptance comparison: same fleet, same seed, protection off.
    let protected = scenario(engines, ClassPolicy::mix(mixes[0]).with_preemption(), true);
    let baseline = scenario(engines, ClassPolicy::mix(mixes[0]), false);
    let p99_better = protected.class_p99_e2e[iv] < baseline.class_p99_e2e[iv];
    let shed_better = interactive_shed_rate(&protected) < interactive_shed_rate(&baseline);
    let improved = p99_better && shed_better;
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "verdict:         x{engines} mix {:.2} — interactive p99 {} vs {} baseline, \
         shed {:.1}% vs {:.1}% — protection {}",
        mixes[0],
        protected.class_p99_e2e[iv],
        baseline.class_p99_e2e[iv],
        interactive_shed_rate(&protected) * 100.0,
        interactive_shed_rate(&baseline) * 100.0,
        if improved { "wins" } else { "DOES NOT WIN" }
    );
    println!(
        "host replay:     {wall:.2}s wall ({} cells on {} thread(s))",
        cells.len() + 2,
        sgcn_par::threads()
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"label\": \"{label}\",\n"));
    json.push_str(&format!("  \"requests\": {requests},\n"));
    json.push_str(&format!("  \"offered_load\": {rho:.6},\n"));
    json.push_str(&format!(
        "  \"fleet_sizes\": [{}],\n",
        fleet_sizes
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "  \"class_mixes\": [{}],\n",
        mixes
            .iter()
            .map(|m| format!("{m:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"cells\": [\n");
    for (i, (e, mix, s)) in cells.iter().enumerate() {
        let (off_i, met_i) = class_met(s, iv);
        let (off_b, met_b) = class_met(s, bt);
        json.push_str(&format!(
            "    {{\"engines\": {e}, \"mix\": {mix:.2}, \"completed\": {}, \"shed\": {}, \
             \"failed\": {}, \"preemptions\": {}, \"degraded\": {}, \
             \"interactive\": {{\"offered\": {off_i}, \"completed\": {}, \"shed\": {}, \
             \"violations\": {}, \"p99_e2e_cycles\": {}, \"met\": {met_i}}}, \
             \"batch\": {{\"offered\": {off_b}, \"completed\": {}, \"shed\": {}, \
             \"violations\": {}, \"p99_e2e_cycles\": {}, \"met\": {met_b}}}}}{}\n",
            s.completed,
            s.shed,
            s.failed,
            s.preemptions,
            s.degraded,
            s.class_completed[iv],
            s.class_shed[iv],
            s.class_violations[iv],
            s.class_p99_e2e[iv],
            s.class_completed[bt],
            s.class_shed[bt],
            s.class_violations[bt],
            s.class_p99_e2e[bt],
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"plan\": [\n");
    for (mi, &mix) in mixes.iter().enumerate() {
        let min_for = |c: usize| {
            cells
                .iter()
                .find(|(_, m, s)| *m == mix && class_met(s, c).1)
                .map_or(0, |(e, ..)| *e)
        };
        json.push_str(&format!(
            "    {{\"mix\": {mix:.2}, \"min_engines\": {{\"interactive\": {}, \"batch\": {}}}}}{}\n",
            min_for(iv),
            min_for(bt),
            if mi + 1 < mixes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"verdict\": {{\"engines\": {engines}, \"mix\": {:.2}, \
         \"protected\": {{\"interactive_p99_e2e_cycles\": {}, \"interactive_shed_rate\": {:.6}, \
         \"preemptions\": {}, \"degraded\": {}}}, \
         \"baseline\": {{\"interactive_p99_e2e_cycles\": {}, \"interactive_shed_rate\": {:.6}}}, \
         \"improved_interactive_p99\": {p99_better}, \"improved_interactive_shed\": {shed_better}, \
         \"improved\": {improved}}}\n",
        mixes[0],
        protected.class_p99_e2e[iv],
        interactive_shed_rate(&protected),
        protected.preemptions,
        protected.degraded,
        baseline.class_p99_e2e[iv],
        interactive_shed_rate(&baseline),
    ));
    json.push_str("}\n");
    let path = std::env::var("SGCN_CAPACITY_OUT").unwrap_or_else(|_| "BENCH_capacity.json".into());
    std::fs::write(&path, &json).expect("write BENCH_capacity.json");
    println!("wrote {path}");
}

/// The sharded-store planner behind `BENCH_shard.json`: shard count ×
/// hub replication × {shard-oblivious least-loaded, shard-affinity}
/// routing under bursty traffic, one shared preparation for every cell.
/// A million-vertex power-law graph (2²⁰ vertices at paper scale, 2¹⁶
/// in quick mode) exercises the plan builder at the scale the ROADMAP
/// asks for — plan stats only, the serving cells run on the suite
/// dataset. The verdict totals cross-shard bytes across every
/// `(shards, hubs)` point: locality wins iff shard-affinity completes
/// exactly as many requests as least-loaded everywhere and moves
/// strictly fewer bytes overall. Every byte of the JSON is a pure
/// function of `(stream, knobs)`.
fn shard_sweep(requests: usize, engines: usize, load: f64, hotspot: usize) {
    let cfg = experiment_config();
    let hw = cfg.hw();
    let fanouts = Fanouts::new(vec![10, 5]);
    let label = format!(
        "{} fanout {} SGCN x{engines} shard sweep bursty load {load:.2}",
        DatasetId::PubMed.abbrev(),
        fanouts.label()
    );
    let ctx = ServingContext::new(ServingConfig {
        dataset: DatasetId::PubMed,
        scale: cfg.scale,
        fanouts,
        width: cfg.width,
        seed: cfg.seed,
    });
    let stream = if hotspot == 0 {
        ctx.request_stream(requests)
    } else {
        ctx.hotspot_stream(requests, hotspot)
    };
    let t0 = std::time::Instant::now();
    // One preparation (the only parallel stage) serves every cell: the
    // shard plan changes routing and the network bill, not the work.
    let prepared = prepare(&ctx, &stream, &AccelModel::sgcn(), &hw);
    let row_bytes = feature_row_bytes(&ctx);
    let shard_counts = [2usize, 4, 8];
    let hub_counts = [0usize, 64];
    let policies = [SchedPolicy::LeastLoaded, SchedPolicy::ShardAffinity];
    let mut cells: Vec<(String, &'static str, QueueSummary)> = Vec::new();
    for &sh in &shard_counts {
        for &hubs in &hub_counts {
            let plan = ShardPlan::from_graph(&ctx.dataset.graph, sh, hubs);
            for policy in policies {
                let qcfg = QueueConfig::new(engines, policy, load, cfg.seed)
                    .with_traffic(TrafficModel::bursty_default())
                    .with_sharding(plan.clone());
                let s = simulate_queue(&prepared, &qcfg, &hw, row_bytes).summary;
                println!(
                    "  {:>9} {:>14}: net {:>10} B / {:>9} cycles, remote {:>5.1}%, p99e {:>9}",
                    plan.label(),
                    policy.label(),
                    s.net_bytes,
                    s.net_cycles,
                    s.remote_rate * 100.0,
                    s.p99_e2e_cycles
                );
                cells.push((plan.label(), policy.label(), s));
            }
        }
    }
    // Locality verdict: pair each (shards, hubs) point's oblivious and
    // affine cells — they interleave in sweep order.
    let oblivious: Vec<&QueueSummary> = cells
        .iter()
        .filter(|(_, p, _)| *p == SchedPolicy::LeastLoaded.label())
        .map(|(.., s)| s)
        .collect();
    let affine: Vec<&QueueSummary> = cells
        .iter()
        .filter(|(_, p, _)| *p == SchedPolicy::ShardAffinity.label())
        .map(|(.., s)| s)
        .collect();
    let equal_completed = oblivious
        .iter()
        .zip(&affine)
        .all(|(o, a)| o.completed == a.completed);
    let oblivious_bytes: u64 = oblivious.iter().map(|s| s.net_bytes).sum();
    let affinity_bytes: u64 = affine.iter().map(|s| s.net_bytes).sum();
    let locality_wins = equal_completed && affinity_bytes < oblivious_bytes;

    // The ROADMAP's million-vertex axis: build a paper-scale power-law
    // plan and report its shape. Quick mode drops to 2^16 vertices so
    // the golden/test path stays fast.
    let scale_pow: u32 = if sgcn_bench::quick_mode() { 16 } else { 20 };
    let pl_vertices = 1usize << scale_pow;
    let pl_hubs = pl_vertices / 256;
    let pl_shards = 8usize;
    let graph = power_law(pl_vertices, 8.0, 2.1, cfg.seed, Normalization::Unit);
    let plan = ShardPlan::from_graph(&graph, pl_shards, pl_hubs);
    let max_degree = plan.hubs().first().map_or(0, |&v| graph.degree(v as usize));
    let hub_min_degree = plan.hubs().last().map_or(0, |&v| graph.degree(v as usize));
    let stored_rows: u64 = (0..pl_shards).map(|s| plan.stored_rows(s)).sum();
    let replicated_rows = stored_rows - pl_vertices as u64;
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "paper scale:     {} plan over 2^{scale_pow} power-law vertices ({} edges) — \
         hub degree {hub_min_degree}..={max_degree}, {replicated_rows} replicated rows",
        plan.label(),
        graph.num_edges()
    );
    println!(
        "verdict:         shard-affinity {affinity_bytes} B vs least-loaded {oblivious_bytes} B \
         cross-shard (equal completions: {equal_completed}) — locality {}",
        if locality_wins {
            "wins"
        } else {
            "DOES NOT WIN"
        }
    );
    println!(
        "host replay:     {wall:.2}s wall ({} cells on {} thread(s))",
        cells.len(),
        sgcn_par::threads()
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"label\": \"{label}\",\n"));
    json.push_str(&format!("  \"requests\": {requests},\n"));
    json.push_str(&format!("  \"engines\": {engines},\n"));
    json.push_str(&format!("  \"offered_load\": {load:.6},\n"));
    json.push_str(&format!(
        "  \"paper_scale\": {{\"vertices\": {pl_vertices}, \"edges\": {}, \"alpha\": 2.1, \
         \"shards\": {pl_shards}, \"hubs\": {pl_hubs}, \"max_degree\": {max_degree}, \
         \"hub_min_degree\": {hub_min_degree}, \"stored_rows\": {stored_rows}, \
         \"replicated_rows\": {replicated_rows}}},\n",
        graph.num_edges()
    ));
    json.push_str("  \"cells\": [\n");
    for (i, (shards, policy, s)) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": \"{shards}\", \"policy\": \"{policy}\", \"completed\": {}, \
             \"net_bytes\": {}, \"net_cycles\": {}, \"remote_rate\": {:.6}, \
             \"p99_e2e_cycles\": {}, \"makespan_cycles\": {}, \"warm_hit_rate\": {:.6}}}{}\n",
            s.completed,
            s.net_bytes,
            s.net_cycles,
            s.remote_rate,
            s.p99_e2e_cycles,
            s.makespan_cycles,
            s.warm_hit_rate,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"verdict\": {{\"oblivious_net_bytes\": {oblivious_bytes}, \
         \"affinity_net_bytes\": {affinity_bytes}, \"equal_completed\": {equal_completed}, \
         \"locality_wins\": {locality_wins}}}\n"
    ));
    json.push_str("}\n");
    let path = std::env::var("SGCN_SHARD_OUT").unwrap_or_else(|_| "BENCH_shard.json".into());
    std::fs::write(&path, &json).expect("write BENCH_shard.json");
    println!("wrote {path}");
}

fn main() {
    banner("BENCH_queue harness (online queueing, multi-engine co-scheduling)");
    let cfg = experiment_config();
    let requests: usize = env_parse("SGCN_REQUESTS", 1000);
    let load: f64 = env_parse("SGCN_LOAD", 0.8);
    let engines: usize = env_parse("SGCN_ENGINES", 4);
    let policy = std::env::var("SGCN_POLICY")
        .ok()
        .map(|v| knob("SGCN_POLICY", &v, POLICY_VALUES, SchedPolicy::parse))
        .unwrap_or(SchedPolicy::CacheAffinity);
    let traffic = std::env::var("SGCN_TRAFFIC")
        .ok()
        .map(|v| knob("SGCN_TRAFFIC", &v, TRAFFIC_VALUES, TrafficModel::parse))
        .unwrap_or(TrafficModel::Exponential);
    let slo_cycles: u64 = env_parse("SGCN_SLO_CYCLES", 0);
    let fleet = std::env::var("SGCN_FLEET")
        .ok()
        .map(|v| {
            knob("SGCN_FLEET", &v, FLEET_VALUES, |v| {
                FleetSpec::parse(v, engines)
            })
        })
        .unwrap_or_else(|| FleetSpec::uniform(engines));
    let hotspot: usize = env_parse("SGCN_HOTSPOT", (requests / 6).max(1));
    if let Ok(v) = std::env::var("SGCN_CAPACITY") {
        knob("SGCN_CAPACITY", &v, CAPACITY_VALUES, |v| {
            (v.trim() == "sweep").then_some(())
        });
        capacity_plan(requests, engines, load, hotspot);
        return;
    }
    let shards_spec = std::env::var("SGCN_SHARDS").ok();
    let replicate_spec = std::env::var("SGCN_REPLICATE").ok();
    if replicate_spec.is_some() && shards_spec.is_none() {
        panic!("SGCN_REPLICATE needs a shard plan to replicate into — set SGCN_SHARDS ({SHARDS_VALUES})");
    }
    if shards_spec.as_deref().map(str::trim) == Some("sweep") {
        shard_sweep(requests, engines, load, hotspot);
        return;
    }
    let shards: Option<usize> = shards_spec.map(|v| {
        knob("SGCN_SHARDS", &v, SHARDS_VALUES, |v| {
            v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
        })
    });
    let replicate: usize = replicate_spec.map_or(0, |v| {
        knob("SGCN_REPLICATE", &v, REPLICATE_VALUES, |v| {
            v.trim().parse::<usize>().ok()
        })
    });
    let lineup_spec = std::env::var("SGCN_LINEUP").ok();
    let format_spec = std::env::var("SGCN_FORMATS").ok();
    if format_spec.as_deref().map(str::trim) == Some("sweep") {
        format_sweep(requests, engines, load, hotspot);
        return;
    }
    let format = format_spec
        .map(|v| {
            knob(
                "SGCN_FORMATS",
                &v,
                &format!("{}, sweep", FormatPolicy::valid_values()),
                FormatPolicy::parse,
            )
        })
        .unwrap_or_default();
    if format != FormatPolicy::default() && lineup_spec.is_none() {
        panic!(
            "SGCN_FORMATS={} needs a hardware lineup — set SGCN_LINEUP ({LINEUP_VALUES})",
            format.label()
        );
    }
    if lineup_spec.as_deref().map(str::trim) == Some("sweep") {
        lineup_sweep(requests, engines, load, hotspot);
        return;
    }
    let lineup = lineup_spec.map(|v| {
        knob("SGCN_LINEUP", &v, LINEUP_VALUES, |v| {
            EngineLineup::parse(v, engines, cfg.hw())
        })
    });
    let faults = std::env::var("SGCN_FAULTS")
        .ok()
        .map(|v| knob("SGCN_FAULTS", &v, FAULTS_VALUES, FailureModel::parse))
        .unwrap_or(FailureModel::None);
    let retry = std::env::var("SGCN_RETRIES")
        .ok()
        .map(|v| knob("SGCN_RETRIES", &v, RETRY_VALUES, RetryPolicy::parse))
        .unwrap_or_default();
    let autoscale = std::env::var("SGCN_AUTOSCALE")
        .ok()
        .map(|v| knob("SGCN_AUTOSCALE", &v, AUTOSCALE_VALUES, ScalePolicy::parse))
        .unwrap_or(None);
    let classes = std::env::var("SGCN_CLASSES")
        .ok()
        .map(|v| knob("SGCN_CLASSES", &v, CLASSES_VALUES, ClassPolicy::parse))
        .unwrap_or(None);
    let degrade = std::env::var("SGCN_DEGRADE")
        .ok()
        .map(|v| knob("SGCN_DEGRADE", &v, DEGRADE_VALUES, DegradePolicy::parse))
        .unwrap_or(None);
    if classes.is_some() && slo_cycles > 0 {
        panic!(
            "SGCN_CLASSES and SGCN_SLO_CYCLES are mutually exclusive — per-class deadlines \
             replace the single-class SLO"
        );
    }
    if degrade.is_some() && (lineup.is_none() || format != FormatPolicy::Adaptive) {
        panic!(
            "SGCN_DEGRADE needs a hardware lineup and adaptive dispatch to step down from — \
             set SGCN_LINEUP ({LINEUP_VALUES}) and SGCN_FORMATS=adaptive"
        );
    }
    // File knobs follow the same hard-error convention as enum knobs: a
    // missing or malformed path aborts with the expected format instead
    // of silently re-running generated traffic.
    let replay = std::env::var("SGCN_TRACE_REPLAY").ok().map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("cannot read SGCN_TRACE_REPLAY {path:?}: {e} — expected {TRACE_FORMAT}")
        });
        ArrivalTrace::parse(&text).unwrap_or_else(|| {
            panic!("SGCN_TRACE_REPLAY {path:?} is not an arrival trace — expected {TRACE_FORMAT}")
        })
    });
    let log_ingest = std::env::var("SGCN_LOG_INGEST").ok();
    if replay.is_some() && log_ingest.is_some() {
        panic!("SGCN_TRACE_REPLAY and SGCN_LOG_INGEST both set — pick one arrival source");
    }

    let fanouts = Fanouts::new(vec![10, 5]);
    let mut label = format!(
        "{} fanout {} SGCN x{engines} {} {} {}",
        DatasetId::PubMed.abbrev(),
        fanouts.label(),
        policy.label(),
        traffic.label(),
        lineup
            .as_ref()
            .map_or_else(|| fleet.label(), EngineLineup::label)
    );
    if format != FormatPolicy::default() {
        label = format!("{label} {}", format.label());
    }
    if !faults.is_none() || autoscale.is_some() {
        label = format!(
            "{label} {} {} {}",
            faults.label(),
            retry.label(),
            autoscale
                .as_ref()
                .map_or_else(|| "none".to_string(), ScalePolicy::label)
        );
    }
    if let Some(pol) = &classes {
        label = format!("{label} {}", pol.label());
    }
    if let Some(pol) = &degrade {
        label = format!("{label} {}", pol.label());
    }
    if log_ingest.is_some() {
        label = format!("{label} log-ingest");
    }
    let ctx = ServingContext::new(ServingConfig {
        dataset: DatasetId::PubMed,
        scale: cfg.scale,
        fanouts,
        width: cfg.width,
        seed: cfg.seed,
    });
    let stream = if hotspot == 0 {
        ctx.request_stream(requests)
    } else {
        ctx.hotspot_stream(requests, hotspot)
    };

    let mut qcfg = QueueConfig::new(engines, policy, load, cfg.seed)
        .with_traffic(traffic)
        .with_fleet(fleet)
        .with_faults(faults)
        .with_retry(retry)
        .with_format(format);
    if let Some(sh) = shards {
        let plan = ShardPlan::from_graph(&ctx.dataset.graph, sh, replicate);
        label = format!("{label} shards {}", plan.label());
        qcfg = qcfg.with_sharding(plan);
    }
    if let Some(lineup) = lineup {
        qcfg = qcfg.with_lineup(lineup);
    }
    if slo_cycles > 0 {
        qcfg = qcfg.with_slo(SloConfig::shedding(slo_cycles));
    }
    if let Some(scale) = autoscale {
        qcfg = qcfg.with_autoscale(scale);
    }
    if let Some(pol) = classes {
        qcfg = qcfg.with_classes(pol);
    }
    if let Some(pol) = degrade {
        qcfg = qcfg.with_degrade(pol);
    }
    if let Some(trace) = replay {
        assert_eq!(
            trace.len(),
            requests,
            "SGCN_TRACE_REPLAY has {} arrivals but SGCN_REQUESTS is {requests}",
            trace.len()
        );
        qcfg = qcfg.with_trace(trace);
    }
    let t0 = std::time::Instant::now();
    // Prepare before traffic materializes: log ingestion rescales the
    // real log's gaps against the prepared stream's mean cold service,
    // so the replayed timeline offers exactly SGCN_LOAD to this fleet.
    let prepared = match (&qcfg.lineup, qcfg.format) {
        (Some(lineup), _) if qcfg.degrade.is_some() => prepare_degraded(
            &ctx,
            &stream,
            &AccelModel::sgcn(),
            lineup,
            &ServeFormat::PALETTE,
        ),
        (Some(lineup), FormatPolicy::Fixed(ServeFormat::Native)) => {
            prepare_lineup(&ctx, &stream, &AccelModel::sgcn(), lineup)
        }
        (Some(lineup), _) => prepare_matrix(
            &ctx,
            &stream,
            &AccelModel::sgcn(),
            lineup,
            &ServeFormat::PALETTE,
        ),
        (None, _) => prepare(&ctx, &stream, &AccelModel::sgcn(), &cfg.hw()),
    };
    if let Some(path) = log_ingest {
        let mean_service = prepared.iter().map(|p| p.report.cycles).sum::<u64>() as f64
            / prepared.len().max(1) as f64;
        let gap = if engines > 0 && load > 0.0 {
            mean_service / (engines as f64 * load)
        } else {
            mean_service
        };
        let trace = ArrivalTrace::from_timestamp_file(&path, gap);
        assert_eq!(
            trace.len(),
            requests,
            "SGCN_LOG_INGEST {path:?} has {} arrivals but SGCN_REQUESTS is {requests} — \
             set SGCN_REQUESTS to the log's line count",
            trace.len()
        );
        qcfg = qcfg.with_trace(trace);
    }
    let out = simulate_queue(&prepared, &qcfg, &cfg.hw(), feature_row_bytes(&ctx));
    let wall = t0.elapsed().as_secs_f64();

    let s = &out.summary;
    println!("requests:        {} ({} hot seeds)", s.requests, hotspot);
    println!(
        "fleet:           {} engines ({}), {} policy, {} traffic, offered load {:.2}",
        s.engines, s.fleet, s.policy, s.traffic, s.offered_load
    );
    if s.deadline_cycles > 0 {
        println!(
            "slo:             deadline {} cycles — {} completed, {} shed ({:.1}%), {} violations ({:.1}%)",
            s.deadline_cycles,
            s.completed,
            s.shed,
            s.shed_rate * 100.0,
            s.violations,
            s.violation_rate * 100.0
        );
    }
    println!(
        "queueing delay:  p50 {} / p95 {} / p99 {} / max {} cycles",
        s.p50_wait_cycles, s.p95_wait_cycles, s.p99_wait_cycles, s.max_wait_cycles
    );
    println!(
        "end-to-end:      p50 {} / p95 {} / p99 {} / max {} cycles",
        s.p50_e2e_cycles, s.p95_e2e_cycles, s.p99_e2e_cycles, s.max_e2e_cycles
    );
    println!(
        "fleet health:    makespan {} cycles, utilization {:.1}%, {:.1} req/s at 1 GHz",
        s.makespan_cycles,
        s.utilization * 100.0,
        s.throughput_rps
    );
    println!(
        "warm reuse:      {}/{} lines hit ({:.1}%)",
        s.warm_hits,
        s.warm_lines,
        s.warm_hit_rate * 100.0
    );
    if s.shards != "none" {
        println!(
            "sharding:        {} — {} cross-shard bytes, {} network cycles, remote rate {:.1}%",
            s.shards,
            s.net_bytes,
            s.net_cycles,
            s.remote_rate * 100.0
        );
    }
    if s.format_policy != "fixed:native" {
        let parts: Vec<String> = s
            .format_dispatch
            .iter()
            .filter(|(_, c)| *c > 0)
            .map(|(f, c)| format!("{f} {c}"))
            .collect();
        println!(
            "format dispatch: {} — {} (pred err {:.2}%)",
            s.format_policy,
            parts.join(", "),
            s.format_pred_err * 100.0
        );
    }
    if s.classes != "none" {
        let i = RequestClass::Interactive.idx();
        let b = RequestClass::Batch.idx();
        println!(
            "classes:         {} — interactive {} done / {} shed / p99e {} cycles, \
             batch {} done / {} shed / p99e {} cycles, {} preemptions",
            s.classes,
            s.class_completed[i],
            s.class_shed[i],
            s.class_p99_e2e[i],
            s.class_completed[b],
            s.class_shed[b],
            s.class_p99_e2e[b],
            s.preemptions
        );
    }
    if s.degrade != "none" {
        println!(
            "brownout:        {} — {} degraded completions, rung residency full {} / \
             cheap-fixed {} / lite {} cycles",
            s.degrade, s.degraded, s.mode_cycles[0], s.mode_cycles[1], s.mode_cycles[2]
        );
    }
    if s.faults != "none" || s.autoscale != "none" {
        println!(
            "drills:          faults {} — {} incidents, {} retries, {} failed ({:.1}%)",
            s.faults,
            s.incidents,
            s.retries,
            s.failed,
            s.failed_rate * 100.0
        );
        println!(
            "                 availability {:.1}%, retry budget {}, autoscale {} (peak {} engines)",
            s.availability * 100.0,
            s.retry,
            s.autoscale,
            s.peak_engines
        );
    }
    for (e, (&busy, &served)) in out.engine_busy.iter().zip(&out.engine_served).enumerate() {
        println!("  engine {e}: {served} requests, {busy} busy cycles");
    }
    println!(
        "host replay:     {wall:.2}s wall ({:.1} req/s on {} thread(s))",
        if wall > 0.0 {
            requests as f64 / wall
        } else {
            0.0
        },
        sgcn_par::threads()
    );

    if let Ok(path) = std::env::var("SGCN_TRACE_RECORD") {
        let trace = out.arrival_trace();
        std::fs::write(&path, trace.to_json()).expect("write arrival trace");
        println!("recorded {} arrivals to {path}", trace.len());
    }

    let json = s.to_json(&label);
    let path = std::env::var("SGCN_QUEUE_OUT").unwrap_or_else(|_| "BENCH_queue.json".into());
    std::fs::write(&path, &json).expect("write BENCH_queue.json");
    println!("wrote {path}");
}
