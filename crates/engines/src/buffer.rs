//! Prefetch stream buffers.
//!
//! "A graph reader reads the … vertex indices and the corresponding edges.
//! From the edge information, the feature reader fetches the feature
//! vectors … Together, these modules feed the SIMD cores to continuously
//! process the aggregation without being stalled. Each module has a small
//! buffer to temporarily store prefetched values to avoid stalls from
//! upstream backpressure." (§III-B)
//!
//! [`StreamBuffer`] models such a producer→consumer FIFO at cycle
//! granularity: a producer with a fixed fill rate, a consumer draining on
//! demand, and occupancy/stall accounting. Used to size reader buffers
//! and verify the no-stall claim for balanced rates.

/// Occupancy and stall counters for a stream buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStats {
    /// Cycles the consumer stalled on an empty buffer.
    pub consumer_stalls: u64,
    /// Cycles the producer stalled on a full buffer (backpressure).
    pub producer_stalls: u64,
    /// Items moved end to end.
    pub items: u64,
    /// Peak occupancy observed.
    pub peak_occupancy: usize,
}

/// A fixed-capacity producer/consumer FIFO with per-cycle accounting.
#[derive(Debug, Clone)]
pub struct StreamBuffer {
    capacity: usize,
    occupancy: usize,
    stats: BufferStats,
}

impl StreamBuffer {
    /// Creates an empty buffer holding up to `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be non-zero");
        StreamBuffer {
            capacity,
            occupancy: 0,
            stats: BufferStats::default(),
        }
    }

    /// Capacity in items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Counters so far.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// One producer cycle attempting to push `items`; returns how many
    /// were accepted (the rest is backpressure).
    pub fn produce(&mut self, items: usize) -> usize {
        let space = self.capacity - self.occupancy;
        let accepted = items.min(space);
        if accepted < items {
            self.stats.producer_stalls += 1;
        }
        self.occupancy += accepted;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.occupancy);
        accepted
    }

    /// One consumer cycle attempting to pop `items`; returns how many were
    /// delivered (a shortfall is a consumer stall).
    pub fn consume(&mut self, items: usize) -> usize {
        let delivered = items.min(self.occupancy);
        if delivered < items {
            self.stats.consumer_stalls += 1;
        }
        self.occupancy -= delivered;
        self.stats.items += delivered as u64;
        delivered
    }

    /// Runs a closed-loop simulation for `cycles` cycles with constant
    /// producer and consumer rates (items per cycle) and returns the
    /// stats. Useful for sizing: with `produce_rate ≥ consume_rate` and a
    /// buffer deep enough to cover the initial fill, the consumer never
    /// stalls after warm-up.
    pub fn simulate_rates(
        &mut self,
        produce_rate: usize,
        consume_rate: usize,
        cycles: u64,
    ) -> BufferStats {
        for _ in 0..cycles {
            self.produce(produce_rate);
            self.consume(consume_rate);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_rates_never_stall_after_warmup() {
        let mut b = StreamBuffer::new(8);
        b.produce(4); // warm-up fill
        let stats = b.simulate_rates(2, 2, 1000);
        assert_eq!(stats.consumer_stalls, 0);
        assert_eq!(stats.items, 2 * 1000);
    }

    #[test]
    fn slow_producer_starves_consumer() {
        let mut b = StreamBuffer::new(8);
        let stats = b.simulate_rates(1, 2, 100);
        assert!(stats.consumer_stalls > 50, "{stats:?}");
    }

    #[test]
    fn fast_producer_hits_backpressure() {
        let mut b = StreamBuffer::new(4);
        let stats = b.simulate_rates(3, 1, 100);
        assert!(stats.producer_stalls > 50, "{stats:?}");
        assert_eq!(stats.peak_occupancy, 4);
    }

    #[test]
    fn produce_consume_accounting() {
        let mut b = StreamBuffer::new(2);
        assert_eq!(b.produce(5), 2);
        assert_eq!(b.occupancy(), 2);
        assert_eq!(b.consume(1), 1);
        assert_eq!(b.consume(5), 1);
        assert_eq!(b.stats().items, 2);
        assert_eq!(b.stats().consumer_stalls, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        let _ = StreamBuffer::new(0);
    }
}
