//! The parallel prefix-sum unit.
//!
//! In the sparse aggregator (§V-D, step 2′) the bitmap at the head of a
//! BEICSR entry "is processed by a parallel prefix sum unit to convert the
//! 1's in the bitmap to a reversed index to the non-zero values". This is
//! the only extra logic SGCN adds to the baseline aggregator (§V-F). We
//! model a Kogge–Stone scan: `log2(width)` stages of `width` adders.

use sgcn_formats::Bitmap;

/// A fixed-width parallel prefix-sum (scan) unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefixSumUnit {
    width: usize,
}

impl PrefixSumUnit {
    /// Creates a unit over `width` bitmap bits (one cacheline's worth of
    /// elements in the paper's design).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "prefix-sum width must be non-zero");
        PrefixSumUnit { width }
    }

    /// Unit width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of scan stages (combinational depth) — `ceil(log2(width))`.
    pub fn stages(&self) -> u32 {
        (self.width.max(2) - 1).ilog2() + 1
    }

    /// Exclusive scan over the first `width` bits of `bitmap`: `out[i]` is
    /// the packed-value index of element `i` (valid where the bit is set).
    /// Implemented as the hardware's Kogge–Stone network would compute it.
    pub fn scan(&self, bitmap: &Bitmap) -> Vec<u32> {
        let n = self.width.min(bitmap.len());
        // Inclusive Kogge–Stone...
        let mut incl: Vec<u32> = (0..n).map(|i| u32::from(bitmap.get(i))).collect();
        let mut shift = 1;
        while shift < n {
            let prev = incl.clone();
            for i in shift..n {
                incl[i] += prev[i - shift];
            }
            shift <<= 1;
        }
        // ...converted to the exclusive form the accumulator indexes with.
        let mut out = vec![0u32; n];
        if n > 1 {
            out[1..n].copy_from_slice(&incl[..n - 1]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_software_reference() {
        let bm = Bitmap::from_values(&[1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
        let unit = PrefixSumUnit::new(8);
        assert_eq!(unit.scan(&bm), bm.prefix_sums());
    }

    #[test]
    fn paper_example() {
        // Fig. 8: bitmap 1 0 1 1 0 → reversed indices 0 _ 1 2 _.
        let bm = Bitmap::from_values(&[1.0, 0.0, 2.0, 3.0, 0.0]);
        let unit = PrefixSumUnit::new(5);
        let scan = unit.scan(&bm);
        assert_eq!(scan[0], 0);
        assert_eq!(scan[2], 1);
        assert_eq!(scan[3], 2);
    }

    #[test]
    fn stage_depth_is_logarithmic() {
        assert_eq!(PrefixSumUnit::new(2).stages(), 1);
        assert_eq!(PrefixSumUnit::new(16).stages(), 4);
        assert_eq!(PrefixSumUnit::new(17).stages(), 5);
        assert_eq!(PrefixSumUnit::new(96).stages(), 7);
    }

    #[test]
    fn wider_bitmap_than_unit_truncates() {
        let bm = Bitmap::from_values(&[1.0; 32]);
        let unit = PrefixSumUnit::new(16);
        let scan = unit.scan(&bm);
        assert_eq!(scan.len(), 16);
        assert_eq!(scan[15], 15);
    }

    #[test]
    fn all_zero_bitmap_scans_to_zero() {
        let bm = Bitmap::new(16);
        let unit = PrefixSumUnit::new(16);
        assert!(unit.scan(&bm).iter().all(|&v| v == 0));
    }
}
