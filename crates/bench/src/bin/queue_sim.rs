//! The online queueing harness behind `BENCH_queue.json`.
//!
//! Puts the sampled-subgraph serving path behind live traffic: a seeded
//! arrival process (open-loop exponential/bursty/diurnal or a closed
//! loop of K clients) feeds an N-engine event-driven scheduler whose
//! engines keep their feature caches **warm across requests**
//! (`sgcn::serving::queueing`). The fleet may be heterogeneous (mixed
//! fast/slow engine classes, optional cross-engine work stealing), and
//! an SLO deadline turns on admission control. The summary reports
//! queueing delay and end-to-end latency percentiles over completed
//! requests, shed/violation counts, fleet utilization, makespan and
//! warm-cache reuse.
//!
//! Every field of the JSON is a pure function of `(stream, knobs)` — the
//! only parallel stage returns results in stream order and the event
//! loop is serial — so the file is **byte-identical at any
//! `SGCN_THREADS`** (wall-clock timings go to stdout only). Knobs:
//!
//! * `SGCN_REQUESTS` — stream length (default 1000; 0 renders the
//!   all-zero summary instead of aborting),
//! * `SGCN_LOAD` — offered load ρ (default 0.8),
//! * `SGCN_ENGINES` — engine count (default 4),
//! * `SGCN_POLICY` — `fifo` / `least` / `affinity` / `slo` (default
//!   `affinity`),
//! * `SGCN_TRAFFIC` — `exp` / `bursty` / `diurnal` / `closed[:K]`
//!   (default `exp`),
//! * `SGCN_SLO_CYCLES` — end-to-end deadline in cycles with load
//!   shedding on; 0 = no SLO (default 0),
//! * `SGCN_FLEET` — `uniform` / `steal` / `mixed` / `mixed-steal` / a
//!   comma-separated scale list, optionally `+steal` (default
//!   `uniform`),
//! * `SGCN_LINEUP` — heterogeneous hardware lineup: `uniform` / `eco` /
//!   `mixed`, optionally `+steal`-suffixed, giving every engine a real
//!   per-class accelerator platform (overrides `SGCN_FLEET`); or
//!   `sweep` to run the lineup × routing-policy capacity planner and
//!   write `BENCH_lineup.json` (`SGCN_LINEUP_OUT`) instead of a single
//!   run (default: unset — legacy scalar fleet),
//! * `SGCN_FORMATS` — per-request serving-format dispatch (needs
//!   `SGCN_LINEUP`): `fixed:<format>` pins every request to one palette
//!   format, `adaptive` lets the cost model pick `(engine, format)` per
//!   request, `sweep` runs every fixed format plus adaptive and writes
//!   `BENCH_format.json` (`SGCN_FORMAT_OUT`) with an "adaptive vs best
//!   fixed p99" verdict (default: unset — native format),
//! * `SGCN_HOTSPOT` — hot-seed pool size, 0 = uniform traffic
//!   (default `requests / 6`),
//! * `SGCN_FAULTS` — failure drill: `none` / `mtbf[:M,R[,K]]` /
//!   `script:E@DOWN+DUR;…` (default `none`),
//! * `SGCN_RETRIES` — retry budget `A[:BACKOFF]` — max dispatch
//!   attempts per request, optional redrive backoff in cycles (default
//!   `3`),
//! * `SGCN_AUTOSCALE` — elastic fleet: `none` / `auto[:MIN[:PROV]]`
//!   (default `none`),
//! * `SGCN_TRACE_RECORD` — write the run's arrival trace to this path,
//! * `SGCN_TRACE_REPLAY` — replay a recorded arrival trace from this
//!   path instead of generating traffic,
//! * `SGCN_QUICK=1` — test-scale graph, `SGCN_QUEUE_OUT` — output path.
//!
//! Every enum-valued knob is strict: an unknown value aborts with a
//! message listing the valid spellings (silent fallbacks would make a
//! typo'd CI matrix cell silently re-run the default scenario).

use sgcn::accel::AccelModel;
use sgcn::serving::queueing::{
    feature_row_bytes, prepare_lineup, prepare_matrix, run_queue, simulate_queue, ArrivalTrace,
    EngineLineup, FailureModel, FleetSpec, FormatPolicy, QueueConfig, QueueSummary, RetryPolicy,
    ScalePolicy, SchedPolicy, ServeFormat, SloConfig, TrafficModel,
};
use sgcn::serving::{ServingConfig, ServingContext};
use sgcn_bench::{banner, experiment_config};
use sgcn_graph::datasets::DatasetId;
use sgcn_graph::sampling::Fanouts;

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses an enum-valued knob, aborting on unknown values with the list
/// of valid spellings — never a silent fallback.
fn knob<T>(key: &str, value: &str, valid: &str, parse: impl FnOnce(&str) -> Option<T>) -> T {
    parse(value).unwrap_or_else(|| panic!("unknown {key} {value:?} — valid values: {valid}"))
}

/// Valid spellings per knob, surfaced verbatim in abort messages.
const POLICY_VALUES: &str = "fifo, least, affinity, slo, cost";
const TRAFFIC_VALUES: &str = "exp, bursty, diurnal, closed[:CLIENTS]";
const FLEET_VALUES: &str =
    "uniform, steal, mixed, mixed-steal, or a comma-separated scale list (optionally +steal)";
const LINEUP_VALUES: &str = "uniform, eco, mixed (each optionally +steal), or sweep";
const FAULTS_VALUES: &str = "none, mtbf[:MTBF,MTTR[,KILLED]], script:ENGINE@DOWN+DUR;...";
const RETRY_VALUES: &str = "ATTEMPTS[:BACKOFF_CYCLES]";
const AUTOSCALE_VALUES: &str = "none, auto[:MIN[:PROVISION_CYCLES]]";

/// The lineup × routing-policy capacity planner behind
/// `BENCH_lineup.json`: uniform vs mixed hardware lineups × {least-
/// loaded, cache-affinity, cost-aware} under bursty traffic, one
/// per-class preparation shared by every cell, plus a `cheapest_p99`
/// verdict — the cell minimizing p99 × cost units (ties to the cheaper
/// lineup, then sweep order). Every byte of the JSON is a pure function
/// of `(stream, knobs)`.
fn lineup_sweep(requests: usize, engines: usize, load: f64, hotspot: usize) {
    let cfg = experiment_config();
    let hw = cfg.hw();
    let fanouts = Fanouts::new(vec![10, 5]);
    let label = format!(
        "{} fanout {} SGCN x{engines} lineup sweep bursty load {load:.2}",
        DatasetId::PubMed.abbrev(),
        fanouts.label()
    );
    let ctx = ServingContext::new(ServingConfig {
        dataset: DatasetId::PubMed,
        scale: cfg.scale,
        fanouts,
        width: cfg.width,
        seed: cfg.seed,
    });
    let stream = if hotspot == 0 {
        ctx.request_stream(requests)
    } else {
        ctx.hotspot_stream(requests, hotspot)
    };
    let lineups = [
        EngineLineup::uniform(engines, hw),
        EngineLineup::mixed(engines, hw),
    ];
    let policies = [
        SchedPolicy::LeastLoaded,
        SchedPolicy::CacheAffinity,
        SchedPolicy::CostAware,
    ];
    let t0 = std::time::Instant::now();
    // Both lineups share the same two hardware classes, so one
    // per-class preparation (the only parallel stage) serves all cells.
    let prepared = prepare_lineup(&ctx, &stream, &AccelModel::sgcn(), &lineups[1]);
    let row_bytes = feature_row_bytes(&ctx);
    let mut cells: Vec<(String, &'static str, QueueSummary)> = Vec::new();
    for lineup in &lineups {
        for policy in policies {
            let qcfg = QueueConfig::new(engines, policy, load, cfg.seed)
                .with_traffic(TrafficModel::bursty_default())
                .with_lineup(lineup.clone());
            let s = simulate_queue(&prepared, &qcfg, &hw, row_bytes).summary;
            println!(
                "  {:>16} {:>14}: p50e {:>9} / p99e {:>9} cycles, warm {:>5.1}%, {:.2} cost units",
                lineup.label(),
                policy.label(),
                s.p50_e2e_cycles,
                s.p99_e2e_cycles,
                s.warm_hit_rate * 100.0,
                s.cost_units
            );
            cells.push((lineup.label(), policy.label(), s));
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let best = cells
        .iter()
        .min_by(|a, b| {
            let ka = a.2.p99_e2e_cycles as f64 * a.2.cost_units;
            let kb = b.2.p99_e2e_cycles as f64 * b.2.cost_units;
            ka.total_cmp(&kb)
                .then(a.2.cost_units.total_cmp(&b.2.cost_units))
        })
        .expect("the sweep has cells");
    println!(
        "cheapest p99:    {} with {} — p99 {} cycles at {:.2} cost units",
        best.0, best.1, best.2.p99_e2e_cycles, best.2.cost_units
    );
    println!(
        "host replay:     {wall:.2}s wall ({} cells on {} thread(s))",
        cells.len(),
        sgcn_par::threads()
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"label\": \"{label}\",\n"));
    json.push_str(&format!("  \"requests\": {requests},\n"));
    json.push_str(&format!("  \"engines\": {engines},\n"));
    json.push_str(&format!("  \"offered_load\": {load:.6},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, (lineup, policy, s)) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"lineup\": \"{lineup}\", \"policy\": \"{policy}\", \"cost_units\": {:.3}, \
             \"completed\": {}, \"p50_e2e_cycles\": {}, \"p99_e2e_cycles\": {}, \
             \"makespan_cycles\": {}, \"utilization\": {:.6}, \"warm_hit_rate\": {:.6}}}{}\n",
            s.cost_units,
            s.completed,
            s.p50_e2e_cycles,
            s.p99_e2e_cycles,
            s.makespan_cycles,
            s.utilization,
            s.warm_hit_rate,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"cheapest_p99\": {{\"lineup\": \"{}\", \"policy\": \"{}\", \"cost_units\": {:.3}, \
         \"p99_e2e_cycles\": {}}}\n",
        best.0, best.1, best.2.cost_units, best.2.p99_e2e_cycles
    ));
    json.push_str("}\n");
    let path = std::env::var("SGCN_LINEUP_OUT").unwrap_or_else(|_| "BENCH_lineup.json".into());
    std::fs::write(&path, &json).expect("write BENCH_lineup.json");
    println!("wrote {path}");
}

/// The serving-format dispatch planner behind `BENCH_format.json`:
/// every fixed palette format plus adaptive per-request dispatch on the
/// **mixed** lineup, routed `cost-aware` under bursty traffic. One
/// `(class, format)` matrix preparation is shared by every cell. The
/// verdict compares adaptive's p99 against the best single fixed
/// format — the paper's Fig. 3 claim ("format choice dominates cost")
/// turned into an online scheduling win. Every byte of the JSON is a
/// pure function of `(stream, knobs)`.
fn format_sweep(requests: usize, engines: usize, load: f64, hotspot: usize) {
    let cfg = experiment_config();
    let hw = cfg.hw();
    let fanouts = Fanouts::new(vec![10, 5]);
    let label = format!(
        "{} fanout {} SGCN x{engines} format sweep mixed cost-aware bursty load {load:.2}",
        DatasetId::PubMed.abbrev(),
        fanouts.label()
    );
    let ctx = ServingContext::new(ServingConfig {
        dataset: DatasetId::PubMed,
        scale: cfg.scale,
        fanouts,
        width: cfg.width,
        seed: cfg.seed,
    });
    let stream = if hotspot == 0 {
        ctx.request_stream(requests)
    } else {
        ctx.hotspot_stream(requests, hotspot)
    };
    let lineup = EngineLineup::mixed(engines, hw);
    let policies: Vec<FormatPolicy> = ServeFormat::PALETTE
        .iter()
        .map(|&f| FormatPolicy::Fixed(f))
        .chain(std::iter::once(FormatPolicy::Adaptive))
        .collect();
    let t0 = std::time::Instant::now();
    // One (class, format) matrix preparation (the only parallel stage)
    // serves every policy cell.
    let prepared = prepare_matrix(
        &ctx,
        &stream,
        &AccelModel::sgcn(),
        &lineup,
        &ServeFormat::PALETTE,
    );
    let row_bytes = feature_row_bytes(&ctx);
    let mut cells: Vec<(String, QueueSummary)> = Vec::new();
    for policy in &policies {
        let qcfg = QueueConfig::new(engines, SchedPolicy::CostAware, load, cfg.seed)
            .with_traffic(TrafficModel::bursty_default())
            .with_lineup(lineup.clone())
            .with_format(*policy);
        let s = simulate_queue(&prepared, &qcfg, &hw, row_bytes).summary;
        println!(
            "  {:>20}: p50e {:>9} / p99e {:>9} cycles, warm {:>5.1}%, pred err {:>5.2}%",
            policy.label(),
            s.p50_e2e_cycles,
            s.p99_e2e_cycles,
            s.warm_hit_rate * 100.0,
            s.format_pred_err * 100.0
        );
        cells.push((policy.label(), s));
    }
    let wall = t0.elapsed().as_secs_f64();
    let (adaptive_label, adaptive) = cells.last().expect("the sweep has an adaptive cell");
    let best_fixed = cells[..cells.len() - 1]
        .iter()
        .min_by(|a, b| {
            (a.1.p99_e2e_cycles, a.1.makespan_cycles)
                .cmp(&(b.1.p99_e2e_cycles, b.1.makespan_cycles))
        })
        .expect("the sweep has fixed cells");
    let wins = adaptive.p99_e2e_cycles <= best_fixed.1.p99_e2e_cycles;
    println!(
        "verdict:         {adaptive_label} p99 {} vs best fixed ({}) p99 {} — adaptive {}",
        adaptive.p99_e2e_cycles,
        best_fixed.0,
        best_fixed.1.p99_e2e_cycles,
        if wins { "wins (<=)" } else { "LOSES" }
    );
    println!(
        "host replay:     {wall:.2}s wall ({} cells on {} thread(s))",
        cells.len(),
        sgcn_par::threads()
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"label\": \"{label}\",\n"));
    json.push_str(&format!("  \"requests\": {requests},\n"));
    json.push_str(&format!("  \"engines\": {engines},\n"));
    json.push_str(&format!("  \"offered_load\": {load:.6},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, (policy, s)) in cells.iter().enumerate() {
        let dispatch: Vec<String> = s
            .format_dispatch
            .iter()
            .map(|(f, c)| format!("\"{f}\": {c}"))
            .collect();
        json.push_str(&format!(
            "    {{\"format_policy\": \"{policy}\", \"completed\": {}, \
             \"p50_e2e_cycles\": {}, \"p99_e2e_cycles\": {}, \"makespan_cycles\": {}, \
             \"utilization\": {:.6}, \"warm_hit_rate\": {:.6}, \"format_pred_err\": {:.6}, \
             \"format_dispatch\": {{{}}}}}{}\n",
            s.completed,
            s.p50_e2e_cycles,
            s.p99_e2e_cycles,
            s.makespan_cycles,
            s.utilization,
            s.warm_hit_rate,
            s.format_pred_err,
            dispatch.join(", "),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"verdict\": {{\"adaptive_p99_e2e_cycles\": {}, \"best_fixed\": \"{}\", \
         \"best_fixed_p99_e2e_cycles\": {}, \"adaptive_beats_best_fixed\": {}}}\n",
        adaptive.p99_e2e_cycles, best_fixed.0, best_fixed.1.p99_e2e_cycles, wins
    ));
    json.push_str("}\n");
    let path = std::env::var("SGCN_FORMAT_OUT").unwrap_or_else(|_| "BENCH_format.json".into());
    std::fs::write(&path, &json).expect("write BENCH_format.json");
    println!("wrote {path}");
}

fn main() {
    banner("BENCH_queue harness (online queueing, multi-engine co-scheduling)");
    let cfg = experiment_config();
    let requests: usize = env_parse("SGCN_REQUESTS", 1000);
    let load: f64 = env_parse("SGCN_LOAD", 0.8);
    let engines: usize = env_parse("SGCN_ENGINES", 4);
    let policy = std::env::var("SGCN_POLICY")
        .ok()
        .map(|v| knob("SGCN_POLICY", &v, POLICY_VALUES, SchedPolicy::parse))
        .unwrap_or(SchedPolicy::CacheAffinity);
    let traffic = std::env::var("SGCN_TRAFFIC")
        .ok()
        .map(|v| knob("SGCN_TRAFFIC", &v, TRAFFIC_VALUES, TrafficModel::parse))
        .unwrap_or(TrafficModel::Exponential);
    let slo_cycles: u64 = env_parse("SGCN_SLO_CYCLES", 0);
    let fleet = std::env::var("SGCN_FLEET")
        .ok()
        .map(|v| {
            knob("SGCN_FLEET", &v, FLEET_VALUES, |v| {
                FleetSpec::parse(v, engines)
            })
        })
        .unwrap_or_else(|| FleetSpec::uniform(engines));
    let hotspot: usize = env_parse("SGCN_HOTSPOT", (requests / 6).max(1));
    let lineup_spec = std::env::var("SGCN_LINEUP").ok();
    let format_spec = std::env::var("SGCN_FORMATS").ok();
    if format_spec.as_deref().map(str::trim) == Some("sweep") {
        format_sweep(requests, engines, load, hotspot);
        return;
    }
    let format = format_spec
        .map(|v| {
            knob(
                "SGCN_FORMATS",
                &v,
                &format!("{}, sweep", FormatPolicy::valid_values()),
                FormatPolicy::parse,
            )
        })
        .unwrap_or_default();
    if format != FormatPolicy::default() && lineup_spec.is_none() {
        panic!(
            "SGCN_FORMATS={} needs a hardware lineup — set SGCN_LINEUP ({LINEUP_VALUES})",
            format.label()
        );
    }
    if lineup_spec.as_deref().map(str::trim) == Some("sweep") {
        lineup_sweep(requests, engines, load, hotspot);
        return;
    }
    let lineup = lineup_spec.map(|v| {
        knob("SGCN_LINEUP", &v, LINEUP_VALUES, |v| {
            EngineLineup::parse(v, engines, cfg.hw())
        })
    });
    let faults = std::env::var("SGCN_FAULTS")
        .ok()
        .map(|v| knob("SGCN_FAULTS", &v, FAULTS_VALUES, FailureModel::parse))
        .unwrap_or(FailureModel::None);
    let retry = std::env::var("SGCN_RETRIES")
        .ok()
        .map(|v| knob("SGCN_RETRIES", &v, RETRY_VALUES, RetryPolicy::parse))
        .unwrap_or_default();
    let autoscale = std::env::var("SGCN_AUTOSCALE")
        .ok()
        .map(|v| knob("SGCN_AUTOSCALE", &v, AUTOSCALE_VALUES, ScalePolicy::parse))
        .unwrap_or(None);
    let replay = std::env::var("SGCN_TRACE_REPLAY").ok().map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
        ArrivalTrace::parse(&text).unwrap_or_else(|| panic!("{path:?} is not an arrival trace"))
    });

    let fanouts = Fanouts::new(vec![10, 5]);
    let mut label = format!(
        "{} fanout {} SGCN x{engines} {} {} {}",
        DatasetId::PubMed.abbrev(),
        fanouts.label(),
        policy.label(),
        traffic.label(),
        lineup
            .as_ref()
            .map_or_else(|| fleet.label(), EngineLineup::label)
    );
    if format != FormatPolicy::default() {
        label = format!("{label} {}", format.label());
    }
    if !faults.is_none() || autoscale.is_some() {
        label = format!(
            "{label} {} {} {}",
            faults.label(),
            retry.label(),
            autoscale
                .as_ref()
                .map_or_else(|| "none".to_string(), ScalePolicy::label)
        );
    }
    let ctx = ServingContext::new(ServingConfig {
        dataset: DatasetId::PubMed,
        scale: cfg.scale,
        fanouts,
        width: cfg.width,
        seed: cfg.seed,
    });
    let stream = if hotspot == 0 {
        ctx.request_stream(requests)
    } else {
        ctx.hotspot_stream(requests, hotspot)
    };

    let mut qcfg = QueueConfig::new(engines, policy, load, cfg.seed)
        .with_traffic(traffic)
        .with_fleet(fleet)
        .with_faults(faults)
        .with_retry(retry)
        .with_format(format);
    if let Some(lineup) = lineup {
        qcfg = qcfg.with_lineup(lineup);
    }
    if slo_cycles > 0 {
        qcfg = qcfg.with_slo(SloConfig::shedding(slo_cycles));
    }
    if let Some(scale) = autoscale {
        qcfg = qcfg.with_autoscale(scale);
    }
    if let Some(trace) = replay {
        assert_eq!(
            trace.len(),
            requests,
            "SGCN_TRACE_REPLAY has {} arrivals but SGCN_REQUESTS is {requests}",
            trace.len()
        );
        qcfg = qcfg.with_trace(trace);
    }
    let t0 = std::time::Instant::now();
    let out = run_queue(&ctx, &stream, &AccelModel::sgcn(), &cfg.hw(), &qcfg);
    let wall = t0.elapsed().as_secs_f64();

    let s = &out.summary;
    println!("requests:        {} ({} hot seeds)", s.requests, hotspot);
    println!(
        "fleet:           {} engines ({}), {} policy, {} traffic, offered load {:.2}",
        s.engines, s.fleet, s.policy, s.traffic, s.offered_load
    );
    if s.deadline_cycles > 0 {
        println!(
            "slo:             deadline {} cycles — {} completed, {} shed ({:.1}%), {} violations ({:.1}%)",
            s.deadline_cycles,
            s.completed,
            s.shed,
            s.shed_rate * 100.0,
            s.violations,
            s.violation_rate * 100.0
        );
    }
    println!(
        "queueing delay:  p50 {} / p95 {} / p99 {} / max {} cycles",
        s.p50_wait_cycles, s.p95_wait_cycles, s.p99_wait_cycles, s.max_wait_cycles
    );
    println!(
        "end-to-end:      p50 {} / p95 {} / p99 {} / max {} cycles",
        s.p50_e2e_cycles, s.p95_e2e_cycles, s.p99_e2e_cycles, s.max_e2e_cycles
    );
    println!(
        "fleet health:    makespan {} cycles, utilization {:.1}%, {:.1} req/s at 1 GHz",
        s.makespan_cycles,
        s.utilization * 100.0,
        s.throughput_rps
    );
    println!(
        "warm reuse:      {}/{} lines hit ({:.1}%)",
        s.warm_hits,
        s.warm_lines,
        s.warm_hit_rate * 100.0
    );
    if s.format_policy != "fixed:native" {
        let parts: Vec<String> = s
            .format_dispatch
            .iter()
            .filter(|(_, c)| *c > 0)
            .map(|(f, c)| format!("{f} {c}"))
            .collect();
        println!(
            "format dispatch: {} — {} (pred err {:.2}%)",
            s.format_policy,
            parts.join(", "),
            s.format_pred_err * 100.0
        );
    }
    if s.faults != "none" || s.autoscale != "none" {
        println!(
            "drills:          faults {} — {} incidents, {} retries, {} failed ({:.1}%)",
            s.faults,
            s.incidents,
            s.retries,
            s.failed,
            s.failed_rate * 100.0
        );
        println!(
            "                 availability {:.1}%, retry budget {}, autoscale {} (peak {} engines)",
            s.availability * 100.0,
            s.retry,
            s.autoscale,
            s.peak_engines
        );
    }
    for (e, (&busy, &served)) in out.engine_busy.iter().zip(&out.engine_served).enumerate() {
        println!("  engine {e}: {served} requests, {busy} busy cycles");
    }
    println!(
        "host replay:     {wall:.2}s wall ({:.1} req/s on {} thread(s))",
        if wall > 0.0 {
            requests as f64 / wall
        } else {
            0.0
        },
        sgcn_par::threads()
    );

    if let Ok(path) = std::env::var("SGCN_TRACE_RECORD") {
        let trace = out.arrival_trace();
        std::fs::write(&path, trace.to_json()).expect("write arrival trace");
        println!("recorded {} arrivals to {path}", trace.len());
    }

    let json = s.to_json(&label);
    let path = std::env::var("SGCN_QUEUE_OUT").unwrap_or_else(|_| "BENCH_queue.json".into());
    std::fs::write(&path, &json).expect("write BENCH_queue.json");
    println!("wrote {path}");
}
