//! Fig. 13: energy breakdown (compute / cache / DRAM) normalized to GCNAX,
//! plus peak-power estimates.

use sgcn::experiments::fig13_energy;
use sgcn_bench::{banner, experiment_config, selected_datasets};

fn main() {
    banner("Fig 13: energy");
    let cfg = experiment_config();
    let grid = fig13_energy(&cfg, &selected_datasets());
    println!("{grid}");
    println!(
        "Paper shape: SGCN consumes ~44% less energy than GCNAX (DRAM component\n\
         dominates and shrinks with the traffic); TDP ordering HyGCN < SGCN <\n\
         AWB-GCN < GCNAX (5.94 / 6.74 / 7.03 / 7.16 W)."
    );
}
