//! Occupancy statistics over compressed feature matrices.
//!
//! §V-B justifies in-place slice slots by observing that "the number of
//! non-zero elements has a small variance and there are only a few
//! outliers" — so reserving dense capacity per slice wastes little
//! *transferred* data. [`SliceStats`] measures exactly that distribution
//! so the claim can be checked per workload (and is, in tests and the
//! Fig. 17 analysis).

use crate::beicsr::Beicsr;
use crate::traits::FeatureFormat as _;

/// Distribution of non-zeros per unit slice of a BEICSR matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceStats {
    count: usize,
    mean: f64,
    variance: f64,
    min: usize,
    max: usize,
    /// Histogram over occupancy deciles of the slice width (11 bins:
    /// 0–10%, …, 90–100%, exactly-full).
    histogram: [u64; 11],
    slice_elems: usize,
}

impl SliceStats {
    /// Computes the distribution over every (row, slice) slot.
    pub fn measure(b: &Beicsr) -> Self {
        let slice_elems = b.slice_elems().max(1);
        let mut histogram = [0u64; 11];
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0f64;
        let mut sum_sq = 0f64;
        let mut count = 0usize;
        for r in 0..b.rows() {
            for s in 0..b.num_slices() {
                let nnz = b.slot_nnz(r, s);
                min = min.min(nnz);
                max = max.max(nnz);
                sum += nnz as f64;
                sum_sq += (nnz * nnz) as f64;
                count += 1;
                let bin = (nnz * 10 / slice_elems).min(10);
                histogram[bin] += 1;
            }
        }
        let mean = if count == 0 { 0.0 } else { sum / count as f64 };
        let variance = if count == 0 {
            0.0
        } else {
            (sum_sq / count as f64 - mean * mean).max(0.0)
        };
        SliceStats {
            count,
            mean,
            variance,
            min: if count == 0 { 0 } else { min },
            max,
            histogram,
            slice_elems,
        }
    }

    /// Number of slots measured.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Mean non-zeros per slot.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Variance of non-zeros per slot.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Standard deviation of non-zeros per slot.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Coefficient of variation (σ/µ); the §V-B claim is that this is
    /// small for real intermediate features.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean
        }
    }

    /// Minimum / maximum slot occupancy.
    pub fn min_max(&self) -> (usize, usize) {
        (self.min, self.max)
    }

    /// Occupancy-decile histogram (bin 10 = 100% full).
    pub fn histogram(&self) -> &[u64; 11] {
        &self.histogram
    }

    /// Fraction of slots whose occupancy exceeds `fraction` of the slice
    /// width — the "outliers" of §V-B.
    pub fn outlier_fraction(&self, fraction: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let threshold = (self.slice_elems as f64 * fraction) as usize;
        let mut over = 0u64;
        for (bin, &n) in self.histogram.iter().enumerate() {
            if bin * self.slice_elems / 10 >= threshold {
                over += n;
            }
        }
        over as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beicsr::BeicsrConfig;
    use crate::DenseMatrix;

    fn uniform_half(rows: usize, cols: usize) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r + c) % 2 == 0 {
                    m.set(r, c, 1.0);
                }
            }
        }
        m
    }

    #[test]
    fn uniform_pattern_has_zero_variance() {
        let b = Beicsr::encode(&uniform_half(16, 96), BeicsrConfig::sliced(96));
        let s = SliceStats::measure(&b);
        assert_eq!(s.count(), 16);
        assert!((s.mean() - 48.0).abs() < 1e-9);
        assert!(s.variance() < 1e-9);
        assert_eq!(s.min_max(), (48, 48));
        assert!(s.coefficient_of_variation() < 1e-6);
    }

    #[test]
    fn random_features_have_small_cv() {
        // The §V-B claim: per-slice occupancy concentrates around the
        // mean for unstructured activation sparsity.
        use sgcn_model_free_rand::synthesize;
        let m = synthesize(64, 288, 0.5);
        let b = Beicsr::encode(&m, BeicsrConfig::sliced(96));
        let s = SliceStats::measure(&b);
        assert!(
            s.coefficient_of_variation() < 0.25,
            "cv {}",
            s.coefficient_of_variation()
        );
        assert!(s.outlier_fraction(0.9) < 0.05);
    }

    #[test]
    fn empty_matrix() {
        let b = Beicsr::encode(&DenseMatrix::zeros(4, 32), BeicsrConfig::default());
        let s = SliceStats::measure(&b);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.histogram()[0], 4);
        assert_eq!(s.outlier_fraction(0.5), 0.0);
    }

    /// Tiny local generator so this crate's tests stay independent of
    /// `sgcn-model` (which depends on us).
    mod sgcn_model_free_rand {
        use crate::DenseMatrix;

        pub fn synthesize(rows: usize, cols: usize, sparsity: f64) -> DenseMatrix {
            let mut state = 0x2545F491_4F6CDD1Du64;
            let mut m = DenseMatrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    if (state as f64 / u64::MAX as f64) > sparsity {
                        m.set(r, c, (state % 97) as f32 / 97.0 + 0.01);
                    }
                }
            }
            m
        }
    }
}
