//! Sparsity-aware cooperation (§V-C, Fig. 7).
//!
//! Within a topology tile, the conventional schedule splits the tile's
//! destination rows into one contiguous block per engine: the merged
//! access stream then jumps between `E` distant regions, and the only
//! reuse window is the whole tile — sized statically for an *expected*
//! sparsity. When the features run denser than expected the working set
//! overflows the cache and thrashes.
//!
//! Sparsity-aware cooperation instead hands each engine an interleaved
//! sequence of 32-row *strips*: engine `e` sweeps strips `e, e+E, 2E+e`…
//! Because community clustering and neighbor similarity make nearby rows
//! share sources, the merged stream now exhibits *nested* reuse windows —
//! a small window (adjacent strips) the cache can still capture when
//! sparsity is low, and the full tile window it captures when sparsity is
//! high.

use sgcn_graph::VertexRange;

/// The paper's empirically chosen strip height (§V-C).
pub const DEFAULT_STRIP_HEIGHT: usize = 32;

/// Schedule of destination rows for one engine.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EngineSchedule {
    rows: Vec<u32>,
}

impl EngineSchedule {
    /// The destination rows, in processing order.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }
}

/// Splits `range` among `engines` in the conventional way: contiguous
/// equal blocks (Fig. 7a).
pub fn conventional_split(range: VertexRange, engines: usize) -> Vec<EngineSchedule> {
    assert!(engines > 0, "engine count must be non-zero");
    let n = range.len();
    let per = n.div_ceil(engines).max(1);
    (0..engines)
        .map(|e| {
            let start = range.start + (e * per).min(n);
            let end = range.start + ((e + 1) * per).min(n);
            EngineSchedule {
                rows: (start..end).map(|v| v as u32).collect(),
            }
        })
        .collect()
}

/// Splits `range` among `engines` with sparsity-aware cooperation:
/// interleaved strips of `strip_height` rows (Fig. 7c).
pub fn sac_split(range: VertexRange, engines: usize, strip_height: usize) -> Vec<EngineSchedule> {
    assert!(engines > 0, "engine count must be non-zero");
    assert!(strip_height > 0, "strip height must be non-zero");
    let mut schedules = vec![EngineSchedule::default(); engines];
    let mut strip_idx = 0usize;
    let mut start = range.start;
    while start < range.end {
        let end = (start + strip_height).min(range.end);
        let engine = strip_idx % engines;
        schedules[engine]
            .rows
            .extend((start..end).map(|v| v as u32));
        strip_idx += 1;
        start = end;
    }
    schedules
}

/// Merges per-engine schedules into the global access order seen by the
/// shared cache: engines proceed in lock-step, so their streams interleave
/// round-robin one row at a time.
pub fn merge_round_robin(schedules: &[EngineSchedule]) -> Vec<u32> {
    let mut merged = Vec::with_capacity(schedules.iter().map(|s| s.rows.len()).sum());
    let mut idx = 0usize;
    loop {
        let mut any = false;
        for s in schedules {
            if let Some(&v) = s.rows.get(idx) {
                merged.push(v);
                any = true;
            }
        }
        if !any {
            return merged;
        }
        idx += 1;
    }
}

/// Convenience: the merged destination order for a tile under either
/// policy.
pub fn tile_order(range: VertexRange, engines: usize, sac: bool, strip_height: usize) -> Vec<u32> {
    let schedules = if sac {
        sac_split(range, engines, strip_height)
    } else {
        conventional_split(range, engines)
    };
    merge_round_robin(&schedules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_blocks_are_contiguous() {
        let s = conventional_split(VertexRange::new(0, 8), 2);
        assert_eq!(s[0].rows(), &[0, 1, 2, 3]);
        assert_eq!(s[1].rows(), &[4, 5, 6, 7]);
    }

    #[test]
    fn sac_strips_interleave() {
        let s = sac_split(VertexRange::new(0, 8), 2, 2);
        assert_eq!(s[0].rows(), &[0, 1, 4, 5]);
        assert_eq!(s[1].rows(), &[2, 3, 6, 7]);
    }

    #[test]
    fn both_policies_cover_every_row_once() {
        for engines in [1, 3, 8] {
            for policy in [false, true] {
                let mut order = tile_order(VertexRange::new(10, 75), engines, policy, 4);
                order.sort_unstable();
                let expect: Vec<u32> = (10..75).collect();
                assert_eq!(order, expect, "engines={engines} sac={policy}");
            }
        }
    }

    #[test]
    fn sac_merged_stream_has_short_jumps() {
        // Mean |Δrow| in the merged stream: SAC's strips sit close together,
        // the conventional split's blocks are a quarter-range apart.
        let range = VertexRange::new(0, 1024);
        let jump = |order: &[u32]| {
            order
                .windows(2)
                .map(|w| (i64::from(w[1]) - i64::from(w[0])).unsigned_abs())
                .sum::<u64>() as f64
                / (order.len() - 1) as f64
        };
        let conv = jump(&tile_order(range, 4, false, 32));
        let sac = jump(&tile_order(range, 4, true, 32));
        assert!(sac < conv * 0.7, "sac {sac} vs conventional {conv}");
    }

    #[test]
    fn merge_handles_uneven_lengths() {
        let a = EngineSchedule {
            rows: vec![0, 1, 2],
        };
        let b = EngineSchedule { rows: vec![10] };
        assert_eq!(merge_round_robin(&[a, b]), vec![0, 10, 1, 2]);
    }

    #[test]
    fn default_strip_height_is_paper_value() {
        assert_eq!(DEFAULT_STRIP_HEIGHT, 32);
    }
}
