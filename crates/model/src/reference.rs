//! The reference executor: full `f32` inference over a deep residual GCN,
//! producing every intermediate feature matrix.
//!
//! Two paths produce a [`ModelTrace`]:
//!
//! * [`ReferenceExecutor::infer`] — real math: aggregation, combination,
//!   residual addition, and a sparsity-calibrated activation
//!   (see [`crate::sparsity`]). The functional ground truth.
//! * [`ReferenceExecutor::synthesize_trace`] — fast path for large
//!   simulator workloads: skips the GeMMs and draws each layer's features
//!   directly at the target sparsity. The accelerator simulator consumes
//!   only non-zero *patterns* and sizes, which this path reproduces.

use sgcn_formats::DenseMatrix;
use sgcn_graph::CsrGraph;

use crate::features::synthesize_features;
use crate::layer::{aggregate, combine};
use crate::network::{GcnNetwork, NetworkConfig};
use crate::sparsity;

/// All per-layer feature matrices of one inference pass.
///
/// Index 0 is the input `X¹`; index `l ≥ 1` is the output of layer `l`
/// (`X^(l+1)` in the paper's notation).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelTrace {
    features: Vec<DenseMatrix>,
    sparsities: Vec<f64>,
}

impl ModelTrace {
    /// Builds from raw matrices (measures sparsity).
    pub fn from_features(features: Vec<DenseMatrix>) -> Self {
        let sparsities = features.iter().map(DenseMatrix::sparsity).collect();
        ModelTrace {
            features,
            sparsities,
        }
    }

    /// Number of layers traced.
    pub fn num_layers(&self) -> usize {
        self.features.len().saturating_sub(1)
    }

    /// Feature matrix at trace index `idx` (0 = input).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn layer_features(&self, idx: usize) -> &DenseMatrix {
        &self.features[idx]
    }

    /// Measured sparsity at trace index `idx`.
    pub fn sparsity(&self, idx: usize) -> f64 {
        self.sparsities[idx]
    }

    /// Average sparsity over the *intermediate* features (indices 1..),
    /// the quantity of the paper's Fig. 1 / Table II.
    pub fn avg_intermediate_sparsity(&self) -> f64 {
        if self.num_layers() == 0 {
            return 0.0;
        }
        self.sparsities[1..].iter().sum::<f64>() / self.num_layers() as f64
    }
}

/// CPU reference executor for a (graph, network-config) pair.
#[derive(Debug, Clone)]
pub struct ReferenceExecutor<'g> {
    graph: &'g CsrGraph,
    config: NetworkConfig,
    seed: u64,
}

impl<'g> ReferenceExecutor<'g> {
    /// Creates an executor. Weights are derived deterministically from
    /// `seed` when [`Self::infer`] runs.
    pub fn new(graph: &'g CsrGraph, config: NetworkConfig, seed: u64) -> Self {
        ReferenceExecutor {
            graph,
            config,
            seed,
        }
    }

    /// The network configuration.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Full-precision inference with per-layer calibrated activation
    /// sparsity. `targets[l]` is the sparsity target for layer `l`'s
    /// output (`targets.len()` must equal `config.layers`).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or `targets` is mis-sized.
    pub fn infer(&self, input: &DenseMatrix, targets: &[f64]) -> ModelTrace {
        assert_eq!(
            input.rows(),
            self.graph.num_vertices(),
            "input rows must match vertices"
        );
        assert_eq!(
            targets.len(),
            self.config.layers,
            "one sparsity target per layer"
        );
        let network = GcnNetwork::new(self.config, input.cols(), self.seed);
        let n = self.graph.num_vertices();
        let width = self.config.width;

        let mut features = Vec::with_capacity(self.config.layers + 1);
        features.push(input.clone());
        // Pre-activation state S^l (uniform width, so starts at layer 1).
        let mut state: Option<Vec<f32>> = None;
        let mut x = input.clone();
        for (l, &target) in targets.iter().enumerate().take(self.config.layers) {
            // Aggregation-first (the paper's SGCN execution order, §V-F).
            let h = aggregate(
                self.graph,
                &x,
                self.config.variant,
                self.seed ^ (l as u64) << 32,
            );
            let s_res = combine(&h, network.weight(l));
            let mut s: Vec<f32> = s_res.as_slice().to_vec();
            if self.config.residual {
                if let Some(prev) = &state {
                    for (sv, pv) in s.iter_mut().zip(prev) {
                        *sv += *pv;
                    }
                }
                state = Some(s.clone());
            }
            // Calibrated activation: reproduces the trained network's
            // measured sparsity level (see crate::sparsity docs).
            sparsity::apply_relu_with_target(&mut s, target);
            x = DenseMatrix::from_vec(n, width, s);
            features.push(x.clone());
        }
        ModelTrace::from_features(features)
    }

    /// Fast trace synthesis: per-layer features drawn at the target
    /// sparsity without running the GeMMs.
    pub fn synthesize_trace(&self, input: &DenseMatrix, targets: &[f64]) -> ModelTrace {
        assert_eq!(
            input.rows(),
            self.graph.num_vertices(),
            "input rows must match vertices"
        );
        assert_eq!(
            targets.len(),
            self.config.layers,
            "one sparsity target per layer"
        );
        let n = self.graph.num_vertices();
        let mut features = Vec::with_capacity(self.config.layers + 1);
        features.push(input.clone());
        for (l, &t) in targets.iter().enumerate() {
            features.push(synthesize_features(
                n,
                self.config.width,
                t,
                self.seed ^ 0xFEED ^ ((l as u64) << 24),
            ));
        }
        ModelTrace::from_features(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::generate_input_features;
    use crate::network::GcnVariant;
    use sgcn_graph::{generate, Normalization};

    fn small_graph() -> CsrGraph {
        generate::erdos_renyi(80, 6.0, 3, Normalization::Symmetric)
    }

    #[test]
    fn infer_hits_sparsity_targets() {
        let g = small_graph();
        let exec = ReferenceExecutor::new(&g, NetworkConfig::deep_residual(6, 32), 1);
        let input = generate_input_features(80, 24, 0.9, 2);
        let targets = vec![0.5, 0.55, 0.6, 0.6, 0.65, 0.7];
        let trace = exec.infer(&input, &targets);
        assert_eq!(trace.num_layers(), 6);
        for (l, &t) in targets.iter().enumerate() {
            let got = trace.sparsity(l + 1);
            assert!((got - t).abs() < 0.05, "layer {l}: target {t} got {got}");
        }
    }

    #[test]
    fn residual_state_feeds_forward() {
        // With vs without residual must differ functionally.
        let g = small_graph();
        let input = generate_input_features(80, 24, 0.9, 2);
        let targets = vec![0.5; 4];
        let with = ReferenceExecutor::new(&g, NetworkConfig::deep_residual(4, 16), 1)
            .infer(&input, &targets);
        let without = ReferenceExecutor::new(&g, NetworkConfig::traditional(4, 16), 1)
            .infer(&input, &targets);
        assert_ne!(
            with.layer_features(4).as_slice(),
            without.layer_features(4).as_slice()
        );
    }

    #[test]
    fn variants_produce_different_features() {
        let g = small_graph();
        let input = generate_input_features(80, 24, 0.9, 2);
        let targets = vec![0.5; 2];
        let gcn = ReferenceExecutor::new(&g, NetworkConfig::deep_residual(2, 16), 1)
            .infer(&input, &targets);
        let gin = ReferenceExecutor::new(
            &g,
            NetworkConfig::deep_residual(2, 16).with_variant(GcnVariant::GinConv { eps: 0.1 }),
            1,
        )
        .infer(&input, &targets);
        assert_ne!(
            gcn.layer_features(1).as_slice(),
            gin.layer_features(1).as_slice()
        );
    }

    #[test]
    fn synthesized_trace_matches_targets_and_shape() {
        let g = small_graph();
        let exec = ReferenceExecutor::new(&g, NetworkConfig::deep_residual(5, 64), 9);
        let input = generate_input_features(80, 32, 0.95, 4);
        let targets = vec![0.45, 0.5, 0.55, 0.6, 0.65];
        let trace = exec.synthesize_trace(&input, &targets);
        assert_eq!(trace.num_layers(), 5);
        for (l, &t) in targets.iter().enumerate() {
            let got = trace.sparsity(l + 1);
            assert!((got - t).abs() < 0.04, "layer {l}: target {t} got {got}");
            assert_eq!(trace.layer_features(l + 1).cols(), 64);
        }
        assert!((trace.avg_intermediate_sparsity() - 0.55).abs() < 0.04);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = small_graph();
        let input = generate_input_features(80, 16, 0.9, 4);
        let targets = vec![0.5; 3];
        let a = ReferenceExecutor::new(&g, NetworkConfig::deep_residual(3, 16), 5)
            .infer(&input, &targets);
        let b = ReferenceExecutor::new(&g, NetworkConfig::deep_residual(3, 16), 5)
            .infer(&input, &targets);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "one sparsity target per layer")]
    fn mis_sized_targets_panic() {
        let g = small_graph();
        let input = generate_input_features(80, 16, 0.9, 4);
        let _ = ReferenceExecutor::new(&g, NetworkConfig::deep_residual(3, 16), 5)
            .infer(&input, &[0.5]);
    }
}
