//! Experiment drivers — one per table/figure of the paper's evaluation.
//!
//! Every driver returns a [`Grid`] (row × column matrix of named values)
//! that the `sgcn-bench` binaries print; tests assert the *shape* claims
//! (who wins, roughly by how much) on scaled-down configurations.
//!
//! # Deterministic parallelism
//!
//! Every simulation a driver issues is a pure function of its
//! `(model, workload, hw)` inputs, so the drivers fan independent
//! `(dataset × model)` runs out over [`sgcn_par::par_map`] and fill the
//! grid from the ordered result vector. Grids are **bit-identical** to a
//! serial run at any thread count (`SGCN_THREADS=1` to force serial).

use std::fmt;

use sgcn_formats::FormatKind;
use sgcn_graph::datasets::{DatasetId, SynthScale};
use sgcn_mem::{HbmGeneration, Traffic};
use sgcn_model::{GcnVariant, NetworkConfig};
use sgcn_par::par_map;

use crate::accel::AccelModel;
use crate::config::HwConfig;
use crate::metrics::{GeoMean, SimReport};
use crate::workload::Workload;

/// Scale knobs shared by all experiment drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Dataset synthesis scale.
    pub scale: SynthScale,
    /// Network depth (paper: 28).
    pub layers: usize,
    /// Intermediate feature width (paper: 256).
    pub width: usize,
    /// Global cache capacity in KiB. The graphs are scaled down, so the
    /// cache scales with them to preserve the paper's regime of feature
    /// working sets far exceeding the cache (Reddit's full-scale feature
    /// matrix is ~465× the 512 KB cache; 2048 vertices × 1 KB rows against
    /// 64 KB keeps a 32× ratio).
    pub cache_kib: u64,
    /// RNG seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper-shaped configuration (28 × 256) on scaled-down graphs
    /// with a proportionally scaled cache.
    pub fn paper() -> Self {
        ExperimentConfig {
            scale: SynthScale {
                max_vertices: 2048,
                max_avg_degree: 24.0,
                max_input_features: 2048,
            },
            layers: 28,
            width: 256,
            cache_kib: 64,
            seed: 2023,
        }
    }

    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        ExperimentConfig {
            scale: SynthScale::tiny(),
            layers: 6,
            width: 192,
            cache_kib: 16,
            seed: 2023,
        }
    }

    /// The network this config describes.
    pub fn network(&self) -> NetworkConfig {
        NetworkConfig::deep_residual(self.layers, self.width)
    }

    /// The hardware platform this config describes (Table III with the
    /// scaled cache).
    pub fn hw(&self) -> HwConfig {
        HwConfig::default().with_cache_kib(self.cache_kib)
    }
}

/// A named row × column matrix of experiment results.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Title printed above the table.
    pub title: String,
    /// Column names.
    pub cols: Vec<String>,
    /// Row names.
    pub rows: Vec<String>,
    /// Row-major values.
    pub values: Vec<Vec<f64>>,
}

impl Grid {
    /// Creates an empty grid with the given shape labels.
    pub fn new(title: impl Into<String>, cols: Vec<String>, rows: Vec<String>) -> Self {
        let (r, c) = (rows.len(), cols.len());
        Grid {
            title: title.into(),
            cols,
            rows,
            values: vec![vec![0.0; c]; r],
        }
    }

    /// Looks up a value by names.
    ///
    /// # Panics
    ///
    /// Panics if either name is unknown.
    pub fn get(&self, row: &str, col: &str) -> f64 {
        let r = self
            .rows
            .iter()
            .position(|x| x == row)
            .unwrap_or_else(|| panic!("unknown row {row:?}; have {:?}", self.rows));
        let c = self
            .cols
            .iter()
            .position(|x| x == col)
            .unwrap_or_else(|| panic!("unknown col {col:?}; have {:?}", self.cols));
        self.values[r][c]
    }

    /// Sets a value by names.
    ///
    /// # Panics
    ///
    /// Panics if either name is unknown.
    pub fn set(&mut self, row: &str, col: &str, v: f64) {
        let r = self
            .rows
            .iter()
            .position(|x| x == row)
            .unwrap_or_else(|| panic!("unknown row {row:?}"));
        let c = self
            .cols
            .iter()
            .position(|x| x == col)
            .unwrap_or_else(|| panic!("unknown col {col:?}"));
        self.values[r][c] = v;
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let w = self.rows.iter().map(|r| r.len()).max().unwrap_or(4).max(4) + 2;
        write!(f, "{:w$}", "")?;
        for c in &self.cols {
            write!(f, "{c:>10}")?;
        }
        writeln!(f)?;
        for (r, row) in self.rows.iter().zip(&self.values) {
            write!(f, "{r:<w$}")?;
            for v in row {
                write!(f, "{v:>10.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn dataset_cols(datasets: &[DatasetId]) -> Vec<String> {
    datasets.iter().map(|d| d.abbrev().to_string()).collect()
}

/// Workload and report memoization for the fast driver path.
///
/// The figures re-use the same `(dataset, network, seed)` workloads and
/// re-simulate the same `(model, workload, hw)` points many times across
/// the suite (the Fig. 12 baseline is Fig. 11's GCNAX, Fig. 13's lineup
/// is a subset of Fig. 11's, the Fig. 15b sweep revisits the default
/// cache size, …). Both constructions are pure functions of their
/// inputs, so memoizing them returns **bit-identical** values; the keys
/// are the `Debug` rendering of every input (f64s print
/// shortest-roundtrip, so distinct configs cannot collide). The bounded
/// tables themselves live in [`sgcn_par::BoundedMemo`], where the
/// eviction behaviour is unit-tested. Naive mode (`SGCN_NAIVE=1`)
/// bypasses every cache and rebuilds from scratch, like the original
/// driver did.
mod memo {
    use std::sync::{Arc, OnceLock};

    use sgcn_formats::FormatKind;
    use sgcn_graph::datasets::{DatasetId, SynthScale};
    use sgcn_mem::CacheEngine;
    use sgcn_model::NetworkConfig;
    use sgcn_par::BoundedMemo;

    use crate::accel::sim::run_format_study;
    use crate::accel::AccelModel;
    use crate::config::HwConfig;
    use crate::metrics::SimReport;
    use crate::workload::Workload;

    /// A memoized workload plus the key that identifies it.
    #[derive(Clone)]
    pub(super) struct CachedWorkload {
        key: Arc<str>,
        wl: Arc<Workload>,
    }

    impl std::ops::Deref for CachedWorkload {
        type Target = Workload;
        fn deref(&self) -> &Workload {
            &self.wl
        }
    }

    fn naive() -> bool {
        matches!(CacheEngine::from_env(), CacheEngine::List)
    }

    /// Entry caps keep a paper-scale run's memory bounded. Workloads are
    /// large (a full per-layer dense feature trace each), so past the cap
    /// new ones are simply not cached ([`BoundedMemo::insert_if_room`]) —
    /// the early, cross-figure standard workloads stay hot while
    /// sweep-specific variants are rebuilt on demand, exactly like the
    /// original driver. Reports are small and re-derivable, so their
    /// table clears at the cap ([`BoundedMemo::get_or_insert`]). Tune
    /// the workload cap with `SGCN_WORKLOAD_CACHE` (`0` disables
    /// workload caching; read once per process).
    const WORKLOAD_CAP: usize = 12;
    const REPORT_CAP: usize = 8192;

    static WORKLOADS: OnceLock<Option<BoundedMemo<Arc<Workload>>>> = OnceLock::new();
    static REPORTS: OnceLock<BoundedMemo<SimReport>> = OnceLock::new();

    fn workload_memo() -> Option<&'static BoundedMemo<Arc<Workload>>> {
        WORKLOADS
            .get_or_init(|| {
                let cap = std::env::var("SGCN_WORKLOAD_CACHE")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(WORKLOAD_CAP);
                (cap > 0).then(|| BoundedMemo::new(cap))
            })
            .as_ref()
    }

    /// Builds (or recalls) a workload.
    pub(super) fn workload(
        id: DatasetId,
        scale: SynthScale,
        network: NetworkConfig,
        seed: u64,
        uniform_sparsity: Option<f64>,
    ) -> CachedWorkload {
        let key = format!("{id:?}|{scale:?}|{network:?}|{seed}|{uniform_sparsity:?}");
        let build = || match uniform_sparsity {
            None => Workload::build(id, scale, network, seed),
            Some(sp) => Workload::build_with_uniform_sparsity(id, scale, network, sp, seed),
        };
        let memo = if naive() { None } else { workload_memo() };
        let wl = match memo {
            None => Arc::new(build()),
            Some(memo) => match memo.get(&key) {
                Some(wl) => wl,
                None => {
                    let wl = Arc::new(build());
                    memo.insert_if_room(key.clone(), Arc::clone(&wl));
                    wl
                }
            },
        };
        CachedWorkload {
            key: key.as_str().into(),
            wl,
        }
    }

    fn recall_or(key: String, run: impl FnOnce() -> SimReport, name: &'static str) -> SimReport {
        let memo = REPORTS.get_or_init(|| BoundedMemo::new(REPORT_CAP));
        // Only the display name can differ between callers of the same
        // simulation point (Fig. 12 renames its baseline), so it is
        // restamped on both the recall and build paths.
        let mut r = memo.get_or_insert(key, run);
        r.accelerator = name;
        r
    }

    /// Simulates (or recalls) one `(model, workload, hw)` point.
    pub(super) fn simulate(model: &AccelModel, wl: &CachedWorkload, hw: &HwConfig) -> SimReport {
        if hw.is_naive() {
            return model.simulate(wl, hw);
        }
        let mut anon = model.clone();
        anon.name = "";
        recall_or(
            format!("{}|{anon:?}|{hw:?}", wl.key),
            || model.simulate(wl, hw),
            model.name,
        )
    }

    /// Empties the workload and report tables (workloads carry their
    /// per-boundary format caches with them, so those drop too). The
    /// perf harness calls this between repetitions so every repetition
    /// measures a cold-cache suite; results are unaffected either way —
    /// the memos only ever recall bit-identical values.
    pub fn reset_driver_caches() {
        if let Some(w) = workload_memo() {
            w.clear();
        }
        if let Some(r) = REPORTS.get() {
            r.clear();
        }
    }

    /// Runs (or recalls) one Fig. 3-style format study point.
    pub(super) fn format_study(kind: FormatKind, wl: &CachedWorkload, hw: &HwConfig) -> SimReport {
        if hw.is_naive() {
            return run_format_study(kind, wl, hw);
        }
        recall_or(
            format!("fmt|{kind:?}|{}|{hw:?}", wl.key),
            || run_format_study(kind, wl, hw),
            kind.label(),
        )
    }
}

pub use memo::reset_driver_caches;
use memo::CachedWorkload;

/// Builds the standard workload for every dataset, in parallel (memoized
/// across drivers on the fast path).
fn build_workloads(
    cfg: &ExperimentConfig,
    datasets: &[DatasetId],
    network: NetworkConfig,
) -> Vec<CachedWorkload> {
    par_map(datasets.to_vec(), |id| {
        memo::workload(id, cfg.scale, network, cfg.seed, None)
    })
}

/// The cross product `0..a × 0..b` in row-major order — the job list for
/// a two-axis parallel sweep.
fn cross(a: usize, b: usize) -> Vec<(usize, usize)> {
    (0..a).flat_map(|i| (0..b).map(move |j| (i, j))).collect()
}

/// Fig. 1 / Fig. 2a-b: average intermediate sparsity of traditional vs
/// modern (residual) GCNs across depths, and the per-layer trajectory.
pub fn fig01_sparsity_vs_layers(cfg: &ExperimentConfig, depths: &[usize]) -> Grid {
    let datasets = [DatasetId::Cora, DatasetId::CiteSeer, DatasetId::PubMed];
    let mut rows = Vec::new();
    for d in &datasets {
        rows.push(format!("{} modern", d.abbrev()));
        rows.push(format!("{} traditional", d.abbrev()));
    }
    let cols: Vec<String> = depths.iter().map(|d| format!("L{d}")).collect();
    let mut grid = Grid::new("Fig 1: avg intermediate sparsity (%) vs depth", cols, rows);
    let per_dataset = par_map(datasets.to_vec(), |id| {
        let ds = sgcn_graph::datasets::Dataset::synthesize(
            id,
            cfg.scale,
            sgcn_graph::builder::Normalization::Symmetric,
        );
        depths
            .iter()
            .map(|&l| {
                let modern: f64 =
                    (0..l).map(|i| ds.intermediate_sparsity(i, l)).sum::<f64>() / l as f64;
                let trad: f64 =
                    (0..l).map(|i| ds.traditional_sparsity(i, l)).sum::<f64>() / l as f64;
                (modern, trad)
            })
            .collect::<Vec<_>>()
    });
    for (id, values) in datasets.iter().zip(&per_dataset) {
        for (&l, &(modern, trad)) in depths.iter().zip(values) {
            grid.set(
                &format!("{} modern", id.abbrev()),
                &format!("L{l}"),
                modern * 100.0,
            );
            grid.set(
                &format!("{} traditional", id.abbrev()),
                &format!("L{l}"),
                trad * 100.0,
            );
        }
    }
    grid
}

/// Fig. 2b: per-layer sparsity of the 28-layer residual network, all nine
/// datasets.
pub fn fig02_per_layer_sparsity(cfg: &ExperimentConfig) -> Grid {
    let cols: Vec<String> = (0..cfg.layers).map(|l| format!("{l}")).collect();
    let rows: Vec<String> = DatasetId::ALL
        .iter()
        .map(|d| d.abbrev().to_string())
        .collect();
    let mut grid = Grid::new(
        format!(
            "Fig 2b: per-layer intermediate sparsity (%), {}-layer residual GCN",
            cfg.layers
        ),
        cols,
        rows,
    );
    let per_dataset = par_map(DatasetId::ALL.to_vec(), |id| {
        let ds = sgcn_graph::datasets::Dataset::synthesize(
            id,
            cfg.scale,
            sgcn_graph::builder::Normalization::Symmetric,
        );
        (0..cfg.layers)
            .map(|l| ds.intermediate_sparsity(l, cfg.layers))
            .collect::<Vec<_>>()
    });
    for (id, sparsities) in DatasetId::ALL.iter().zip(&per_dataset) {
        for (l, &s) in sparsities.iter().enumerate() {
            grid.set(id.abbrev(), &format!("{l}"), s * 100.0);
        }
    }
    grid
}

/// Fig. 3: normalized off-chip memory access and speedup per feature
/// format. Returns `(normalized_traffic, speedup)` grids, both normalized
/// to Dense.
pub fn fig03_format_comparison(cfg: &ExperimentConfig, datasets: &[DatasetId]) -> (Grid, Grid) {
    let hw = cfg.hw();
    let formats = [
        FormatKind::Dense,
        FormatKind::Csr,
        FormatKind::Coo,
        FormatKind::Bsr,
        FormatKind::BlockedEllpack,
    ];
    let mut row_names: Vec<String> = formats.iter().map(|f| f.label().to_string()).collect();
    row_names.push("BEICSR".into());
    row_names.push("BEICSR+SAC".into());
    let mut traffic = Grid::new(
        "Fig 3: off-chip memory access normalized to Dense",
        dataset_cols(datasets),
        row_names.clone(),
    );
    let mut speedup = Grid::new(
        "Fig 3: speedup over Dense",
        dataset_cols(datasets),
        row_names,
    );
    // Per dataset: the five study formats plus the two SGCN variants, all
    // independent given the workload.
    let workloads = build_workloads(cfg, datasets, cfg.network());
    let variants = formats.len() + 2;
    let reports = par_map(cross(datasets.len(), variants), |(di, vi)| {
        let wl = &workloads[di];
        if vi < formats.len() {
            memo::format_study(formats[vi], wl, &hw)
        } else if vi == formats.len() {
            memo::simulate(&AccelModel::sgcn_no_sac(), wl, &hw)
        } else {
            memo::simulate(&AccelModel::sgcn(), wl, &hw)
        }
    });
    for (di, &id) in datasets.iter().enumerate() {
        let block = &reports[di * variants..(di + 1) * variants];
        let dense = &block[0];
        for (fi, kind) in formats.iter().enumerate() {
            traffic.set(kind.label(), id.abbrev(), block[fi].traffic_vs(dense));
            speedup.set(kind.label(), id.abbrev(), block[fi].speedup_over(dense));
        }
        let beicsr = &block[formats.len()];
        traffic.set("BEICSR", id.abbrev(), beicsr.traffic_vs(dense));
        speedup.set("BEICSR", id.abbrev(), beicsr.speedup_over(dense));
        let sac = &block[formats.len() + 1];
        traffic.set("BEICSR+SAC", id.abbrev(), sac.traffic_vs(dense));
        speedup.set("BEICSR+SAC", id.abbrev(), sac.speedup_over(dense));
    }
    (traffic, speedup)
}

/// Runs a lineup on datasets, returning speedups normalized to the first
/// model in the lineup (the paper normalizes to GCNAX), with a trailing
/// "Geomean" column.
fn speedup_grid(
    title: &str,
    lineup: &[AccelModel],
    cfg: &ExperimentConfig,
    datasets: &[DatasetId],
    network: NetworkConfig,
    hw: &HwConfig,
) -> Grid {
    let mut cols = dataset_cols(datasets);
    cols.push("Geomean".into());
    let rows: Vec<String> = lineup.iter().map(|m| m.name.to_string()).collect();
    let mut grid = Grid::new(title, cols, rows);
    // Every (dataset, model) sim is independent; fan them all out and fill
    // the grid from the ordered results (row 0 of each dataset block is
    // the normalization baseline).
    let workloads = build_workloads(cfg, datasets, network);
    let reports = par_map(cross(datasets.len(), lineup.len()), |(di, mi)| {
        memo::simulate(&lineup[mi], &workloads[di], hw)
    });
    let mut geo: Vec<GeoMean> = vec![GeoMean::new(); lineup.len()];
    for (di, &id) in datasets.iter().enumerate() {
        let baseline = &reports[di * lineup.len()];
        for (mi, m) in lineup.iter().enumerate() {
            let s = reports[di * lineup.len() + mi].speedup_over(baseline);
            grid.set(m.name, id.abbrev(), s);
            geo[mi].push(s);
        }
    }
    for (mi, m) in lineup.iter().enumerate() {
        grid.set(m.name, "Geomean", geo[mi].value());
    }
    grid
}

/// Fig. 11: performance of all six accelerators, normalized to GCNAX.
pub fn fig11_performance(cfg: &ExperimentConfig, datasets: &[DatasetId]) -> Grid {
    speedup_grid(
        "Fig 11: speedup over GCNAX",
        &AccelModel::fig11_lineup(),
        cfg,
        datasets,
        cfg.network(),
        &cfg.hw(),
    )
}

/// Fig. 12: ablation — baseline, non-sliced BEICSR, sliced BEICSR,
/// BEICSR + SAC.
pub fn fig12_ablation(cfg: &ExperimentConfig, datasets: &[DatasetId]) -> Grid {
    let mut baseline = AccelModel::gcnax();
    baseline.name = "Baseline";
    let mut full = AccelModel::sgcn();
    full.name = "BEICSR+SAC";
    let mut no_sac = AccelModel::sgcn_no_sac();
    no_sac.name = "BEICSR";
    speedup_grid(
        "Fig 12: ablation (speedup over baseline)",
        &[baseline, AccelModel::sgcn_non_sliced(), no_sac, full],
        cfg,
        datasets,
        cfg.network(),
        &cfg.hw(),
    )
}

/// Fig. 13: energy breakdown (compute / cache / DRAM / static) normalized
/// to GCNAX's total per dataset, plus a TDP column (watts).
pub fn fig13_energy(cfg: &ExperimentConfig, datasets: &[DatasetId]) -> Grid {
    let hw = cfg.hw();
    let lineup = [
        AccelModel::gcnax(),
        AccelModel::hygcn(),
        AccelModel::awb_gcn(),
        AccelModel::sgcn(),
    ];
    let mut cols = dataset_cols(datasets);
    cols.push("TDP(W)".into());
    let mut rows = Vec::new();
    for m in &lineup {
        for part in ["compute", "cache", "dram", "total"] {
            rows.push(format!("{}/{part}", m.name));
        }
    }
    let mut grid = Grid::new("Fig 13: energy normalized to GCNAX total", cols, rows);
    // GCNAX (lineup[0]) doubles as the normalization baseline; the sims
    // are deterministic, so reusing its report is exact.
    let workloads = build_workloads(cfg, datasets, cfg.network());
    let reports = par_map(cross(datasets.len(), lineup.len()), |(di, mi)| {
        memo::simulate(&lineup[mi], &workloads[di], &hw)
    });
    for (di, &id) in datasets.iter().enumerate() {
        let block = &reports[di * lineup.len()..(di + 1) * lineup.len()];
        let base_total = block[0].energy.total_pj();
        for (mi, m) in lineup.iter().enumerate() {
            let r = &block[mi];
            grid.set(
                &format!("{}/compute", m.name),
                id.abbrev(),
                r.energy.compute_pj / base_total,
            );
            grid.set(
                &format!("{}/cache", m.name),
                id.abbrev(),
                r.energy.cache_pj / base_total,
            );
            grid.set(
                &format!("{}/dram", m.name),
                id.abbrev(),
                r.energy.dram_pj / base_total,
            );
            grid.set(
                &format!("{}/total", m.name),
                id.abbrev(),
                r.energy.total_pj() / base_total,
            );
        }
    }
    for (mi, m) in lineup.iter().enumerate() {
        // TDP does not depend on the dataset; reuse the first dataset's
        // reports.
        grid.set(
            &format!("{}/total", m.name),
            "TDP(W)",
            reports[mi].tdp_watts,
        );
    }
    grid
}

/// Fig. 14: off-chip access breakdown (topology / feature-in / feature-out
/// / partials) on one dataset, normalized to GCNAX's total.
pub fn fig14_memory_breakdown(cfg: &ExperimentConfig, id: DatasetId) -> Grid {
    let hw = cfg.hw();
    let lineup = AccelModel::fig11_lineup();
    let cols: Vec<String> = vec![
        "topology".into(),
        "feature-in".into(),
        "feature-out".into(),
        "partials".into(),
        "total".into(),
    ];
    let rows: Vec<String> = lineup.iter().map(|m| m.name.to_string()).collect();
    let mut grid = Grid::new(
        format!(
            "Fig 14: memory access breakdown on {} (normalized to GCNAX)",
            id.abbrev()
        ),
        cols,
        rows,
    );
    let wl = memo::workload(id, cfg.scale, cfg.network(), cfg.seed, None);
    let reports = par_map(lineup.to_vec(), |m| memo::simulate(&m, &wl, &hw));
    let base = reports[0].dram_bytes() as f64;
    for (m, r) in lineup.iter().zip(&reports) {
        grid.set(
            m.name,
            "topology",
            r.dram_bytes_for(Traffic::Topology) as f64 / base,
        );
        grid.set(
            m.name,
            "feature-in",
            r.dram_bytes_for(Traffic::FeatureRead) as f64 / base,
        );
        grid.set(
            m.name,
            "feature-out",
            r.dram_bytes_for(Traffic::FeatureWrite) as f64 / base,
        );
        grid.set(
            m.name,
            "partials",
            r.dram_bytes_for(Traffic::PartialSum) as f64 / base,
        );
        grid.set(m.name, "total", r.dram_bytes() as f64 / base);
    }
    grid
}

/// Fig. 15a: geomean speedup (vs GCNAX) across CR/CS/PM as depth varies.
pub fn fig15a_layer_sensitivity(cfg: &ExperimentConfig, depths: &[usize]) -> Grid {
    let datasets = [DatasetId::Cora, DatasetId::CiteSeer, DatasetId::PubMed];
    let lineup = AccelModel::fig11_lineup();
    let cols: Vec<String> = depths.iter().map(|d| format!("L{d}")).collect();
    let rows: Vec<String> = lineup.iter().map(|m| m.name.to_string()).collect();
    let mut grid = Grid::new("Fig 15a: geomean speedup vs depth", cols, rows);
    let hw = cfg.hw();
    for &depth in depths {
        let network = NetworkConfig::deep_residual(depth, cfg.width);
        let sub = speedup_grid("", &lineup, cfg, &datasets, network, &hw);
        for m in &lineup {
            grid.set(m.name, &format!("L{depth}"), sub.get(m.name, "Geomean"));
        }
    }
    grid
}

/// Fig. 15b: geomean speedup (vs GCNAX at the same cache size) as the
/// global cache scales.
pub fn fig15b_cache_sensitivity(
    cfg: &ExperimentConfig,
    cache_kib: &[u64],
    datasets: &[DatasetId],
) -> Grid {
    let lineup = AccelModel::fig11_lineup();
    let cols: Vec<String> = cache_kib.iter().map(|k| format!("{k}K")).collect();
    let rows: Vec<String> = lineup.iter().map(|m| m.name.to_string()).collect();
    let mut grid = Grid::new("Fig 15b: geomean speedup vs cache size", cols, rows);
    for &kib in cache_kib {
        let hw = HwConfig::default().with_cache_kib(kib);
        let sub = speedup_grid("", &lineup, cfg, datasets, cfg.network(), &hw);
        for m in &lineup {
            grid.set(m.name, &format!("{kib}K"), sub.get(m.name, "Geomean"));
        }
    }
    grid
}

/// Fig. 16: performance on GINConv / GraphSAGE variants.
pub fn fig16_variants(cfg: &ExperimentConfig, datasets: &[DatasetId], variant: GcnVariant) -> Grid {
    speedup_grid(
        &format!("Fig 16: speedup over GCNAX ({})", variant.label()),
        &AccelModel::fig11_lineup(),
        cfg,
        datasets,
        cfg.network().with_variant(variant),
        &cfg.hw(),
    )
}

/// Fig. 17: SGCN off-chip access sensitivity to the unit slice size,
/// normalized per dataset to `C = 96`.
pub fn fig17_slice_sensitivity(
    cfg: &ExperimentConfig,
    slices: &[usize],
    datasets: &[DatasetId],
) -> Grid {
    let hw = cfg.hw();
    let cols = dataset_cols(datasets);
    let rows: Vec<String> = slices.iter().map(|c| format!("Slice {c}")).collect();
    let mut grid = Grid::new(
        "Fig 17: off-chip access vs slice size (C=96 = 1.0)",
        cols,
        rows,
    );
    // Sweep points plus the C=96 normalization base per dataset (reused
    // from the sweep when 96 is a requested point).
    let mut points: Vec<usize> = slices.to_vec();
    let base_at = match slices.iter().position(|&c| c == 96) {
        Some(i) => i,
        None => {
            points.push(96);
            points.len() - 1
        }
    };
    let workloads = build_workloads(cfg, datasets, cfg.network());
    let bytes = par_map(cross(datasets.len(), points.len()), |(di, ci)| {
        memo::simulate(
            &AccelModel::sgcn_with_slice(points[ci]),
            &workloads[di],
            &hw,
        )
        .dram_bytes()
    });
    for (di, &id) in datasets.iter().enumerate() {
        let block = &bytes[di * points.len()..(di + 1) * points.len()];
        let base = block[base_at] as f64;
        for (ci, &c) in slices.iter().enumerate() {
            grid.set(&format!("Slice {c}"), id.abbrev(), block[ci] as f64 / base);
        }
    }
    grid
}

/// Fig. 18: SGCN scalability with engine count on HBM1/HBM2 — speedup over
/// the 1-engine HBM2 point plus bandwidth utilization (%).
pub fn fig18_scalability(cfg: &ExperimentConfig, engines: &[usize], id: DatasetId) -> Grid {
    let cols: Vec<String> = engines.iter().map(|e| format!("E{e}")).collect();
    let rows = vec![
        "HBM2 speedup".to_string(),
        "HBM1 speedup".to_string(),
        "HBM2 util%".to_string(),
        "HBM1 util%".to_string(),
    ];
    let mut grid = Grid::new("Fig 18: SGCN scalability (vs 1 engine on HBM2)", cols, rows);
    let wl = memo::workload(id, cfg.scale, cfg.network(), cfg.seed, None);
    let gens = [
        (HbmGeneration::Hbm2, "HBM2 speedup", "HBM2 util%"),
        (HbmGeneration::Hbm1, "HBM1 speedup", "HBM1 util%"),
    ];
    // The (engine, generation) sweep; the 1-engine HBM2 normalization
    // baseline is reused from the sweep when E=1 is a requested point
    // (HBM2 is gens[0]) and appended as one extra job otherwise.
    let mut jobs: Vec<HwConfig> = Vec::new();
    for &e in engines {
        for (gen, _, _) in gens {
            jobs.push(cfg.hw().with_engines(e).with_hbm(gen));
        }
    }
    let base_at = match engines.iter().position(|&e| e == 1) {
        Some(ei) => ei * gens.len(),
        None => {
            jobs.push(cfg.hw().with_engines(1));
            jobs.len() - 1
        }
    };
    let reports = par_map(jobs.clone(), |hw| {
        memo::simulate(&AccelModel::sgcn(), &wl, &hw)
    });
    let base = reports[base_at].cycles as f64;
    for (ei, &e) in engines.iter().enumerate() {
        for (gi, (_, label_s, label_u)) in gens.iter().enumerate() {
            let idx = ei * gens.len() + gi;
            let r = &reports[idx];
            grid.set(label_s, &format!("E{e}"), base / r.cycles as f64);
            grid.set(
                label_u,
                &format!("E{e}"),
                100.0 * r.mem.dram.total_bytes() as f64
                    / (jobs[idx].dram.peak_bytes_per_cycle * r.cycles as f64),
            );
        }
    }
    grid
}

/// Fig. 19: speedup vs uniform synthetic feature sparsity, for Dense,
/// CSR and SGCN (normalized to Dense at each sparsity level).
pub fn fig19_sparsity_sweep(cfg: &ExperimentConfig, sparsities_pct: &[u32], id: DatasetId) -> Grid {
    let hw = cfg.hw();
    let cols: Vec<String> = sparsities_pct.iter().map(|s| format!("{s}%")).collect();
    let rows = vec!["Dense".to_string(), "CSR".to_string(), "SGCN".to_string()];
    let mut grid = Grid::new(
        "Fig 19: speedup vs feature sparsity (Dense = 1.0)",
        cols,
        rows,
    );
    // One job per sparsity point (workload build + three sims).
    let results = par_map(sparsities_pct.to_vec(), |pct| {
        let wl = memo::workload(
            id,
            cfg.scale,
            cfg.network(),
            cfg.seed,
            Some(pct as f64 / 100.0),
        );
        let dense = memo::format_study(FormatKind::Dense, &wl, &hw);
        let csr = memo::format_study(FormatKind::Csr, &wl, &hw);
        let sgcn = memo::simulate(&AccelModel::sgcn(), &wl, &hw);
        (csr.speedup_over(&dense), sgcn.speedup_over(&dense))
    });
    for (&pct, &(csr, sgcn)) in sparsities_pct.iter().zip(&results) {
        grid.set("Dense", &format!("{pct}%"), 1.0);
        grid.set("CSR", &format!("{pct}%"), csr);
        grid.set("SGCN", &format!("{pct}%"), sgcn);
    }
    grid
}

/// Table II: the dataset catalog (full-scale stats and synthesized scale).
pub fn table02_datasets(cfg: &ExperimentConfig) -> Grid {
    let cols = vec![
        "Vertices".to_string(),
        "Edges".to_string(),
        "InFeats".to_string(),
        "FeatSpars%".to_string(),
        "SynthV".to_string(),
        "SynthE".to_string(),
        "Scale".to_string(),
    ];
    let rows: Vec<String> = DatasetId::ALL
        .iter()
        .map(|d| d.abbrev().to_string())
        .collect();
    let mut grid = Grid::new(
        "Table II: dataset catalog (full-scale vs synthesized)",
        cols,
        rows,
    );
    let synthesized = par_map(DatasetId::ALL.to_vec(), |id| {
        sgcn_graph::datasets::Dataset::synthesize(
            id,
            cfg.scale,
            sgcn_graph::builder::Normalization::Symmetric,
        )
    });
    for (id, ds) in DatasetId::ALL.into_iter().zip(&synthesized) {
        let spec = id.spec();
        grid.set(id.abbrev(), "Vertices", spec.vertices as f64);
        grid.set(id.abbrev(), "Edges", spec.edges as f64);
        grid.set(id.abbrev(), "InFeats", spec.input_features as f64);
        grid.set(id.abbrev(), "FeatSpars%", spec.feature_sparsity * 100.0);
        grid.set(id.abbrev(), "SynthV", ds.graph.num_vertices() as f64);
        grid.set(id.abbrev(), "SynthE", ds.graph.num_edges() as f64);
        grid.set(id.abbrev(), "Scale", ds.vertex_scale);
    }
    grid
}

/// Convenience: simulate the full Fig. 11 lineup on one workload (one
/// parallel job per accelerator).
pub fn lineup_reports(wl: &Workload, hw: &HwConfig) -> Vec<SimReport> {
    par_map(AccelModel::fig11_lineup().to_vec(), |m| m.simulate(wl, hw))
}

/// Design ablation (DESIGN.md): BEICSR's two structural choices measured
/// in isolation — embedded-in-place (the paper's format) vs a separate
/// bitmap-index array vs packed variable-length rows. Returns DRAM bytes
/// normalized to the embedded-in-place variant (lower = better).
pub fn ablation_beicsr_design(cfg: &ExperimentConfig, datasets: &[DatasetId]) -> Grid {
    let hw = cfg.hw();
    let variants = [
        FormatKind::BeicsrNonSliced, // embedded + in place (non-sliced base)
        FormatKind::SeparateBitmap,  // − embedded
        FormatKind::PackedBeicsr,    // − in place
    ];
    let rows: Vec<String> = variants.iter().map(|v| v.label().to_string()).collect();
    let mut grid = Grid::new(
        "Ablation: BEICSR design choices (DRAM bytes vs embedded in-place)",
        dataset_cols(datasets),
        rows,
    );
    // variants[0] is the embedded-in-place base; reuse its run for the
    // normalization (the sims are deterministic).
    let workloads = build_workloads(cfg, datasets, cfg.network());
    let bytes = par_map(cross(datasets.len(), variants.len()), |(di, vi)| {
        memo::format_study(variants[vi], &workloads[di], &hw).dram_bytes()
    });
    for (di, &id) in datasets.iter().enumerate() {
        let block = &bytes[di * variants.len()..(di + 1) * variants.len()];
        let base = block[0] as f64;
        for (vi, v) in variants.iter().enumerate() {
            grid.set(v.label(), id.abbrev(), block[vi] as f64 / base);
        }
    }
    grid
}

/// Design ablation (DESIGN.md): SAC strip-height sweep around the paper's
/// default of 32, speedups vs GCNAX.
pub fn ablation_sac_strip(
    cfg: &ExperimentConfig,
    strips: &[usize],
    datasets: &[DatasetId],
) -> Grid {
    let hw = cfg.hw();
    let rows: Vec<String> = strips.iter().map(|s| format!("strip {s}")).collect();
    let mut cols = dataset_cols(datasets);
    cols.push("Geomean".into());
    let mut grid = Grid::new(
        "Ablation: SAC strip height (speedup over GCNAX)",
        cols,
        rows,
    );
    let mut geo: Vec<GeoMean> = vec![GeoMean::new(); strips.len()];
    // Jobs per dataset: the GCNAX baseline (index 0) then one SGCN run per
    // strip height.
    let workloads = build_workloads(cfg, datasets, cfg.network());
    let reports = par_map(cross(datasets.len(), strips.len() + 1), |(di, ji)| {
        if ji == 0 {
            memo::simulate(&AccelModel::gcnax(), &workloads[di], &hw)
        } else {
            let mut m = AccelModel::sgcn();
            m.strip_height = strips[ji - 1];
            memo::simulate(&m, &workloads[di], &hw)
        }
    });
    for (di, &id) in datasets.iter().enumerate() {
        let block = &reports[di * (strips.len() + 1)..(di + 1) * (strips.len() + 1)];
        let base = &block[0];
        for (si, &strip) in strips.iter().enumerate() {
            let s = block[si + 1].speedup_over(base);
            grid.set(&format!("strip {strip}"), id.abbrev(), s);
            geo[si].push(s);
        }
    }
    for (si, &strip) in strips.iter().enumerate() {
        grid.set(&format!("strip {strip}"), "Geomean", geo[si].value());
    }
    grid
}

/// Design ablation: cache replacement policy (LRU per Table III vs FIFO
/// vs thrash-resistant BIP) for the baseline and SGCN.
pub fn ablation_cache_policy(cfg: &ExperimentConfig, datasets: &[DatasetId]) -> Grid {
    use sgcn_mem::ReplacementPolicy;
    let policies = [
        ("LRU", ReplacementPolicy::Lru),
        ("FIFO", ReplacementPolicy::Fifo),
        ("BIP", ReplacementPolicy::Bip),
    ];
    let mut rows = Vec::new();
    for m in ["GCNAX", "SGCN"] {
        for (p, _) in &policies {
            rows.push(format!("{m}/{p}"));
        }
    }
    let mut grid = Grid::new(
        "Ablation: cache replacement policy (cycles normalized to GCNAX/LRU)",
        dataset_cols(datasets),
        rows,
    );
    // Job order per dataset: GCNAX×{LRU,FIFO,BIP} then SGCN×{…};
    // GCNAX/LRU (index 0) is the normalization baseline.
    let models = [("GCNAX", AccelModel::gcnax()), ("SGCN", AccelModel::sgcn())];
    let workloads = build_workloads(cfg, datasets, cfg.network());
    let cycles = par_map(
        cross(datasets.len(), models.len() * policies.len()),
        |(di, ji)| {
            let (_, model) = &models[ji / policies.len()];
            let (_, policy) = policies[ji % policies.len()];
            memo::simulate(model, &workloads[di], &cfg.hw().with_cache_policy(policy)).cycles
        },
    );
    let per_dataset = models.len() * policies.len();
    for (di, &id) in datasets.iter().enumerate() {
        let block = &cycles[di * per_dataset..(di + 1) * per_dataset];
        let base = block[0] as f64;
        for (mi, (mname, _)) in models.iter().enumerate() {
            for (pi, (pname, _)) in policies.iter().enumerate() {
                grid.set(
                    &format!("{mname}/{pname}"),
                    id.abbrev(),
                    block[mi * policies.len() + pi] as f64 / base,
                );
            }
        }
    }
    grid
}

/// Serving scenario (beyond the paper): latency-cycle percentiles and
/// throughput of SGCN over a seeded stream of sampled-subgraph requests,
/// one row per fanout schedule. Latencies are reported in kilocycles,
/// throughput in krequests/s at 1 GHz.
pub fn serving_fanout_sweep(
    cfg: &ExperimentConfig,
    id: DatasetId,
    fanout_sets: &[Vec<usize>],
    requests: usize,
) -> Grid {
    use crate::serving::{ServeSummary, ServingConfig, ServingContext};
    use sgcn_graph::sampling::Fanouts;

    let cols: Vec<String> = ["p50(kcyc)", "p95(kcyc)", "p99(kcyc)", "krps", "verts"]
        .map(String::from)
        .to_vec();
    let fanouts: Vec<Fanouts> = fanout_sets
        .iter()
        .map(|caps| Fanouts::new(caps.clone()))
        .collect();
    let rows: Vec<String> = fanouts
        .iter()
        .map(|f| format!("fanout {}", f.label()))
        .collect();
    let mut grid = Grid::new(
        format!(
            "Serving: SGCN sampled-subgraph latency/throughput on {} ({requests} requests)",
            id.abbrev()
        ),
        cols,
        rows,
    );
    if fanouts.is_empty() {
        return grid;
    }
    let hw = cfg.hw();
    // Graph synthesis and X¹ generation are fanout-independent: build
    // one context and derive the per-schedule variants from it.
    let base = ServingContext::new(ServingConfig {
        dataset: id,
        scale: cfg.scale,
        fanouts: fanouts[0].clone(),
        width: cfg.width,
        seed: cfg.seed,
    });
    for f in &fanouts {
        let ctx = base.with_fanouts(f.clone());
        let stream = ctx.request_stream(requests);
        let batch = ctx.serve_batch(&stream, &AccelModel::sgcn(), &hw);
        let s = ServeSummary::from_reports(&batch);
        let row = format!("fanout {}", f.label());
        grid.set(&row, "p50(kcyc)", s.p50_cycles as f64 / 1e3);
        grid.set(&row, "p95(kcyc)", s.p95_cycles as f64 / 1e3);
        grid.set(&row, "p99(kcyc)", s.p99_cycles as f64 / 1e3);
        grid.set(&row, "krps", s.throughput_rps / 1e3);
        grid.set(&row, "verts", s.avg_vertices);
    }
    grid
}

/// Serving scenario: the full Fig. 11 accelerator lineup replaying the
/// same request stream — per-model p50/p99 latency (kilocycles) and
/// throughput (krequests/s), the SLO view of the paper's comparison.
pub fn serving_lineup(cfg: &ExperimentConfig, id: DatasetId, requests: usize) -> Grid {
    use crate::serving::{ServeSummary, ServingConfig, ServingContext};
    use sgcn_graph::sampling::Fanouts;

    let lineup = AccelModel::fig11_lineup();
    let cols: Vec<String> = ["p50(kcyc)", "p99(kcyc)", "krps"]
        .map(String::from)
        .to_vec();
    let rows: Vec<String> = lineup.iter().map(|m| m.name.to_string()).collect();
    let mut grid = Grid::new(
        format!(
            "Serving: accelerator lineup on {} sampled requests ({})",
            requests,
            id.abbrev()
        ),
        cols,
        rows,
    );
    let ctx = ServingContext::new(ServingConfig {
        dataset: id,
        scale: cfg.scale,
        fanouts: Fanouts::new(vec![10, 5]),
        width: cfg.width,
        seed: cfg.seed,
    });
    let stream = ctx.request_stream(requests);
    let hw = cfg.hw();
    // The sampled workloads are model-independent; build them once and
    // replay every accelerator over the prepared set.
    let workloads = ctx.build_workloads(&stream);
    for m in &lineup {
        let batch = ctx.serve_prepared(&stream, &workloads, m, &hw);
        let s = ServeSummary::from_reports(&batch);
        grid.set(m.name, "p50(kcyc)", s.p50_cycles as f64 / 1e3);
        grid.set(m.name, "p99(kcyc)", s.p99_cycles as f64 / 1e3);
        grid.set(m.name, "krps", s.throughput_rps / 1e3);
    }
    grid
}

/// Serving scenario: microbatch size sweep — one engine serves the
/// stream in fixed-size batches that amortize the per-layer weight
/// stream (requests after a batch's first find the weights on chip; see
/// [`crate::serving::amortized_batch_latencies`]). Latencies in
/// kilocycles, throughput in krequests/s, plus the mean latency saving
/// over batch = 1 in percent.
pub fn serving_batch_sweep(
    cfg: &ExperimentConfig,
    id: DatasetId,
    batch_sizes: &[usize],
    requests: usize,
) -> Grid {
    use crate::serving::{amortized_batch_latencies, ServeSummary, ServingConfig, ServingContext};
    use sgcn_graph::sampling::Fanouts;

    let cols: Vec<String> = ["p50(kcyc)", "p99(kcyc)", "krps", "saved%"]
        .map(String::from)
        .to_vec();
    let rows: Vec<String> = batch_sizes.iter().map(|b| format!("batch {b}")).collect();
    let mut grid = Grid::new(
        format!(
            "Serving: weight-stream amortization vs batch size on {} ({requests} requests)",
            id.abbrev()
        ),
        cols,
        rows,
    );
    let hw = cfg.hw();
    let ctx = ServingContext::new(ServingConfig {
        dataset: id,
        scale: cfg.scale,
        fanouts: Fanouts::new(vec![10, 5]),
        width: cfg.width,
        seed: cfg.seed,
    });
    let stream = ctx.request_stream(requests);
    // The cold replay is batch-size independent: serve once, then apply
    // each batching schedule to the same reports.
    let batch = ctx.serve_batch(&stream, &AccelModel::sgcn(), &hw);
    let cold = ServeSummary::from_reports(&batch);
    for &b in batch_sizes {
        let latencies = amortized_batch_latencies(&batch, b, &hw);
        let s = ServeSummary::from_reports_with_latencies(&batch, latencies);
        let row = format!("batch {b}");
        grid.set(&row, "p50(kcyc)", s.p50_cycles as f64 / 1e3);
        grid.set(&row, "p99(kcyc)", s.p99_cycles as f64 / 1e3);
        grid.set(&row, "krps", s.throughput_rps / 1e3);
        let saved = if cold.mean_cycles > 0.0 {
            100.0 * (1.0 - s.mean_cycles / cold.mean_cycles)
        } else {
            0.0
        };
        grid.set(&row, "saved%", saved);
    }
    grid
}

/// Shared setup for the queueing grids: a serving context on `id` with a
/// hotspot request stream (shared neighborhoods are what warm reuse and
/// affinity routing act on) and the stream prepared once — the prepared
/// reports are policy/load/engine-count independent, so every sweep cell
/// replays the same prepared vector through the serial event loop.
fn queueing_setup(cfg: &ExperimentConfig, id: DatasetId, requests: usize) -> QueueingSetup {
    use crate::serving::queueing::prepare;
    use crate::serving::{ServingConfig, ServingContext};
    use sgcn_graph::sampling::Fanouts;

    let ctx = ServingContext::new(ServingConfig {
        dataset: id,
        scale: cfg.scale,
        fanouts: Fanouts::new(vec![10, 5]),
        width: cfg.width,
        seed: cfg.seed,
    });
    // A hot pool of ~1/6 of the stream: realistic skew (trending seeds)
    // with enough distinct neighborhoods to keep the schedulers honest.
    let stream = ctx.hotspot_stream(requests, (requests / 6).max(2));
    let prepared = prepare(&ctx, &stream, &AccelModel::sgcn(), &cfg.hw());
    (ctx, prepared)
}

/// The shared (context, prepared stream) pair behind the queueing grids.
type QueueingSetup = (
    crate::serving::ServingContext,
    Vec<crate::serving::queueing::PreparedRequest>,
);

/// The nine queueing grids of the full suite, rendered off one shared
/// preparation.
pub struct QueueingGrids {
    /// Policy × offered-load sweep.
    pub policy: Grid,
    /// Engine-count sweep under cache affinity.
    pub engine: Grid,
    /// Traffic-model × policy sweep under an SLO deadline.
    pub traffic: Grid,
    /// Heterogeneous-fleet / work-stealing sweep.
    pub fleet: Grid,
    /// Hardware lineup × routing-policy sweep (per-engine accelerator
    /// models with cost-model dispatch).
    pub lineup: Grid,
    /// Format-dispatch sweep: fixed palette formats vs adaptive
    /// per-request format choice on the mixed lineup.
    pub format: Grid,
    /// Failure-drill sweep: fault intensity × policy × retry budget.
    pub failure: Grid,
    /// Deadline-class capacity sweep: fleet size × interactive mix
    /// under a drills-on overload, guarded cells protected by class
    /// deadlines with preemption and the brownout ladder.
    pub classes: Grid,
    /// Sharded-store sweep: shard count × hub replication under
    /// shard-oblivious vs shard-affinity routing (cross-shard bytes,
    /// network cycles, latency).
    pub shard: Grid,
}

/// Renders all nine queueing grids (policy × offered-load sweep,
/// engine-count sweep, traffic-mix × policy SLO sweep, fleet sweep,
/// hardware-lineup sweep, format-dispatch sweep, failure-drill sweep,
/// deadline-class capacity sweep, sharded-store sweep) off one shared
/// preparation — what the full suite calls, since the expensive half
/// (sampling + cold simulation of the stream) is identical for every
/// sweep cell of every grid.
#[allow(clippy::too_many_arguments)]
pub fn queueing_grids(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    loads: &[f64],
    engine_counts: &[usize],
    load: f64,
    requests: usize,
) -> QueueingGrids {
    let setup = queueing_setup(cfg, id, requests);
    QueueingGrids {
        policy: queueing_policy_sweep_prepared(cfg, id, engines, loads, requests, &setup),
        engine: queueing_engine_sweep_prepared(cfg, id, engine_counts, load, requests, &setup),
        traffic: queueing_traffic_sweep_prepared(cfg, id, engines, load, requests, &setup),
        fleet: queueing_fleet_sweep_prepared(cfg, id, engines, load, requests, &setup),
        lineup: queueing_lineup_sweep_prepared(cfg, id, engines, load, requests, &setup),
        format: queueing_format_sweep_prepared(cfg, id, engines, load, requests, &setup),
        failure: queueing_failure_sweep_prepared(cfg, id, engines, load, requests, &setup),
        classes: queueing_class_sweep_prepared(cfg, id, engines, load, requests, &setup),
        shard: queueing_shard_sweep_prepared(cfg, id, engines, load, requests, &setup),
    }
}

/// Online queueing (beyond the paper): offered-load sweep × scheduler
/// policy on one dataset. Rows are `policy @ load`; columns report the
/// SLO view (p50 queueing delay, p99 end-to-end latency, both in
/// kilocycles), fleet utilization (%), and the warm-cache hit rate (%) —
/// the cold-vs-warm reuse measurement.
pub fn queueing_policy_sweep(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    loads: &[f64],
    requests: usize,
) -> Grid {
    queueing_policy_sweep_prepared(
        cfg,
        id,
        engines,
        loads,
        requests,
        &queueing_setup(cfg, id, requests),
    )
}

/// [`queueing_policy_sweep`] over an already-prepared stream (the setup
/// is policy/load/engine independent, so callers rendering several
/// queueing grids share one [`queueing_setup`]).
fn queueing_policy_sweep_prepared(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    loads: &[f64],
    requests: usize,
    setup: &QueueingSetup,
) -> Grid {
    use crate::serving::queueing::{feature_row_bytes, simulate_queue, QueueConfig, SchedPolicy};

    let cols: Vec<String> = ["p50w(kc)", "p99e(kc)", "util%", "warm%"]
        .map(String::from)
        .to_vec();
    let mut rows = Vec::new();
    for policy in SchedPolicy::ALL {
        for load in loads {
            rows.push(format!("{} @{load:.2}", policy.label()));
        }
    }
    let mut grid = Grid::new(
        format!(
            "Queueing: policy × offered load on {} ({requests} requests, {engines} engines)",
            id.abbrev()
        ),
        cols,
        rows,
    );
    let hw = cfg.hw();
    let row_bytes = feature_row_bytes(&setup.0);
    for policy in SchedPolicy::ALL {
        for &load in loads {
            let qcfg = QueueConfig::new(engines, policy, load, cfg.seed);
            let s = simulate_queue(&setup.1, &qcfg, &hw, row_bytes).summary;
            let row = format!("{} @{load:.2}", policy.label());
            grid.set(&row, "p50w(kc)", s.p50_wait_cycles as f64 / 1e3);
            grid.set(&row, "p99e(kc)", s.p99_e2e_cycles as f64 / 1e3);
            grid.set(&row, "util%", s.utilization * 100.0);
            grid.set(&row, "warm%", s.warm_hit_rate * 100.0);
        }
    }
    grid
}

/// Online queueing (beyond the paper): engine-count sweep under the
/// cache-affinity policy at a fixed offered load — how co-scheduling
/// scales the fleet (latency, makespan, utilization, warm reuse).
pub fn queueing_engine_sweep(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engine_counts: &[usize],
    load: f64,
    requests: usize,
) -> Grid {
    queueing_engine_sweep_prepared(
        cfg,
        id,
        engine_counts,
        load,
        requests,
        &queueing_setup(cfg, id, requests),
    )
}

/// [`queueing_engine_sweep`] over an already-prepared stream.
fn queueing_engine_sweep_prepared(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engine_counts: &[usize],
    load: f64,
    requests: usize,
    setup: &QueueingSetup,
) -> Grid {
    use crate::serving::queueing::{feature_row_bytes, simulate_queue, QueueConfig, SchedPolicy};

    let cols: Vec<String> = ["p50e(kc)", "p99e(kc)", "mksp(kc)", "util%", "warm%"]
        .map(String::from)
        .to_vec();
    let rows: Vec<String> = engine_counts.iter().map(|e| format!("E{e}")).collect();
    let mut grid = Grid::new(
        format!(
            "Queueing: engine-count sweep on {} (cache-affinity, load {load:.2}, {requests} requests)",
            id.abbrev()
        ),
        cols,
        rows,
    );
    let hw = cfg.hw();
    let row_bytes = feature_row_bytes(&setup.0);
    for &engines in engine_counts {
        let qcfg = QueueConfig::new(engines, SchedPolicy::CacheAffinity, load, cfg.seed);
        let s = simulate_queue(&setup.1, &qcfg, &hw, row_bytes).summary;
        let row = format!("E{engines}");
        grid.set(&row, "p50e(kc)", s.p50_e2e_cycles as f64 / 1e3);
        grid.set(&row, "p99e(kc)", s.p99_e2e_cycles as f64 / 1e3);
        grid.set(&row, "mksp(kc)", s.makespan_cycles as f64 / 1e3);
        grid.set(&row, "util%", s.utilization * 100.0);
        grid.set(&row, "warm%", s.warm_hit_rate * 100.0);
    }
    grid
}

/// The traffic models the scenario grids sweep, in report order (the
/// closed loop sized at twice the engine count so clients outnumber
/// engines without trivially saturating them).
fn traffic_lineup(engines: usize) -> [crate::serving::queueing::TrafficModel; 4] {
    use crate::serving::queueing::TrafficModel;
    [
        TrafficModel::Exponential,
        TrafficModel::bursty_default(),
        TrafficModel::diurnal_default(),
        TrafficModel::ClosedLoop {
            clients: engines * 2,
        },
    ]
}

/// Traffic & SLO scenario (beyond the paper): arrival-model × policy
/// sweep under a deadline of three mean cold services with load shedding
/// on. Rows are `traffic / policy`; columns report median queueing delay
/// and p99 end-to-end latency over completed requests (kilocycles), the
/// shed and violation rates (%), and the warm-cache hit rate (%) — where
/// bursty/diurnal/closed-loop load separates the schedulers that the
/// Poisson sweep cannot.
pub fn queueing_traffic_sweep(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    load: f64,
    requests: usize,
) -> Grid {
    queueing_traffic_sweep_prepared(
        cfg,
        id,
        engines,
        load,
        requests,
        &queueing_setup(cfg, id, requests),
    )
}

/// [`queueing_traffic_sweep`] over an already-prepared stream.
fn queueing_traffic_sweep_prepared(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    load: f64,
    requests: usize,
    setup: &QueueingSetup,
) -> Grid {
    use crate::serving::queueing::{
        feature_row_bytes, simulate_queue, QueueConfig, SchedPolicy, SloConfig,
    };

    let cols: Vec<String> = ["p50w(kc)", "p99e(kc)", "shed%", "viol%", "warm%"]
        .map(String::from)
        .to_vec();
    let traffics = traffic_lineup(engines);
    let mut rows = Vec::new();
    for traffic in &traffics {
        for policy in SchedPolicy::ALL {
            rows.push(format!("{} / {}", traffic.label(), policy.label()));
        }
    }
    let mut grid = Grid::new(
        format!(
            "Queueing: traffic model × policy under SLO on {} ({requests} requests, {engines} engines, load {load:.2})",
            id.abbrev()
        ),
        cols,
        rows,
    );
    let hw = cfg.hw();
    let row_bytes = feature_row_bytes(&setup.0);
    // Deadline: three mean cold services — tight enough that bursts and
    // peaks shed, loose enough that the off-peak stream flows.
    let mean_service = if setup.1.is_empty() {
        0
    } else {
        setup.1.iter().map(|p| p.report.cycles).sum::<u64>() / setup.1.len() as u64
    };
    let slo = SloConfig::shedding((3 * mean_service).max(1));
    for traffic in traffics {
        for policy in SchedPolicy::ALL {
            let qcfg = QueueConfig::new(engines, policy, load, cfg.seed)
                .with_traffic(traffic)
                .with_slo(slo);
            let s = simulate_queue(&setup.1, &qcfg, &hw, row_bytes).summary;
            let row = format!("{} / {}", traffic.label(), policy.label());
            grid.set(&row, "p50w(kc)", s.p50_wait_cycles as f64 / 1e3);
            grid.set(&row, "p99e(kc)", s.p99_e2e_cycles as f64 / 1e3);
            grid.set(&row, "shed%", s.shed_rate * 100.0);
            grid.set(&row, "viol%", s.violation_rate * 100.0);
            grid.set(&row, "warm%", s.warm_hit_rate * 100.0);
        }
    }
    grid
}

/// Heterogeneous-fleet scenario (beyond the paper): uniform vs mixed
/// fast/slow fleets with and without cross-engine work stealing, under
/// bursty traffic and cache-affinity routing — how much a slow engine
/// class costs and how much stealing claws back (latency, makespan,
/// utilization, warm reuse).
pub fn queueing_fleet_sweep(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    load: f64,
    requests: usize,
) -> Grid {
    queueing_fleet_sweep_prepared(
        cfg,
        id,
        engines,
        load,
        requests,
        &queueing_setup(cfg, id, requests),
    )
}

/// [`queueing_fleet_sweep`] over an already-prepared stream.
fn queueing_fleet_sweep_prepared(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    load: f64,
    requests: usize,
    setup: &QueueingSetup,
) -> Grid {
    use crate::serving::queueing::{
        feature_row_bytes, simulate_queue, FleetSpec, QueueConfig, SchedPolicy, TrafficModel,
    };

    let cols: Vec<String> = ["p50e(kc)", "p99e(kc)", "mksp(kc)", "util%", "warm%"]
        .map(String::from)
        .to_vec();
    let fleets = [
        FleetSpec::uniform(engines),
        FleetSpec::uniform(engines).with_work_stealing(),
        FleetSpec::mixed(engines, 1.5),
        FleetSpec::mixed(engines, 1.5).with_work_stealing(),
    ];
    let rows: Vec<String> = fleets.iter().map(|f| f.label()).collect();
    let mut grid = Grid::new(
        format!(
            "Queueing: fleet lineup on {} (cache-affinity, bursty, load {load:.2}, {requests} requests, {engines} engines)",
            id.abbrev()
        ),
        cols,
        rows,
    );
    let hw = cfg.hw();
    let row_bytes = feature_row_bytes(&setup.0);
    for fleet in fleets {
        let row = fleet.label();
        let qcfg = QueueConfig::new(engines, SchedPolicy::CacheAffinity, load, cfg.seed)
            .with_traffic(TrafficModel::bursty_default())
            .with_fleet(fleet);
        let s = simulate_queue(&setup.1, &qcfg, &hw, row_bytes).summary;
        grid.set(&row, "p50e(kc)", s.p50_e2e_cycles as f64 / 1e3);
        grid.set(&row, "p99e(kc)", s.p99_e2e_cycles as f64 / 1e3);
        grid.set(&row, "mksp(kc)", s.makespan_cycles as f64 / 1e3);
        grid.set(&row, "util%", s.utilization * 100.0);
        grid.set(&row, "warm%", s.warm_hit_rate * 100.0);
    }
    grid
}

/// Heterogeneous-lineup capacity planning (beyond the paper): hardware
/// lineup × routing policy under bursty traffic. Each engine runs its
/// own accelerator platform (`ref` = the base hardware, `eco` = half
/// the engine arrays on HBM1 at 0.45 cost units), with per-class cold
/// reports and per-class warm-savings pricing; the `cost-aware` policy
/// routes on a [`crate::serving::queueing::CostModel`] fitted from
/// those reports. Rows are `lineup / policy`; columns report the p50 /
/// p99 end-to-end latency (kilocycles), makespan (kilocycles), warm-hit
/// rate (%), and the lineup's price in cost units — the "what lineup
/// serves this traffic at the cheapest p99?" planning view.
pub fn queueing_lineup_sweep(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    load: f64,
    requests: usize,
) -> Grid {
    queueing_lineup_sweep_prepared(
        cfg,
        id,
        engines,
        load,
        requests,
        &queueing_setup(cfg, id, requests),
    )
}

/// [`queueing_lineup_sweep`] off a shared setup. Lineup cells need
/// per-class cold reports, so the stream is re-prepared once with
/// [`crate::serving::queueing::prepare_lineup`] (the shared setup's
/// single-platform preparation does not carry them); the serving
/// context and hotspot stream are reused.
fn queueing_lineup_sweep_prepared(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    load: f64,
    requests: usize,
    setup: &QueueingSetup,
) -> Grid {
    use crate::serving::queueing::{
        feature_row_bytes, prepare_lineup, simulate_queue, EngineLineup, QueueConfig, SchedPolicy,
        TrafficModel,
    };

    let cols: Vec<String> = ["p50e(kc)", "p99e(kc)", "mksp(kc)", "warm%", "cost"]
        .map(String::from)
        .to_vec();
    let hw = cfg.hw();
    let lineups = [
        EngineLineup::uniform(engines, hw),
        EngineLineup::mixed(engines, hw),
    ];
    let policies = [
        SchedPolicy::LeastLoaded,
        SchedPolicy::CacheAffinity,
        SchedPolicy::CostAware,
    ];
    let mut rows = Vec::new();
    for lineup in &lineups {
        for policy in policies {
            rows.push(format!("{} / {}", lineup.label(), policy.label()));
        }
    }
    let mut grid = Grid::new(
        format!(
            "Queueing: hardware lineup × routing policy on {} (bursty, load {load:.2}, {requests} requests, {engines} engines)",
            id.abbrev()
        ),
        cols,
        rows,
    );
    // Both lineups share the same two hardware classes, so one
    // per-class preparation serves every cell.
    let stream = setup.0.hotspot_stream(requests, (requests / 6).max(2));
    let prepared = prepare_lineup(&setup.0, &stream, &AccelModel::sgcn(), &lineups[1]);
    let row_bytes = feature_row_bytes(&setup.0);
    for lineup in &lineups {
        for policy in policies {
            let row = format!("{} / {}", lineup.label(), policy.label());
            let qcfg = QueueConfig::new(engines, policy, load, cfg.seed)
                .with_traffic(TrafficModel::bursty_default())
                .with_lineup(lineup.clone());
            let s = simulate_queue(&prepared, &qcfg, &hw, row_bytes).summary;
            grid.set(&row, "p50e(kc)", s.p50_e2e_cycles as f64 / 1e3);
            grid.set(&row, "p99e(kc)", s.p99_e2e_cycles as f64 / 1e3);
            grid.set(&row, "mksp(kc)", s.makespan_cycles as f64 / 1e3);
            grid.set(&row, "warm%", s.warm_hit_rate * 100.0);
            grid.set(&row, "cost", s.cost_units);
        }
    }
    grid
}

/// Per-request format dispatch (the paper's Fig. 3 axis turned into a
/// serving decision): serving-format policy × the mixed hardware lineup
/// under bursty traffic, all routed `cost-aware`. Each fixed row pins
/// every request to one palette format; the `adaptive` row lets the
/// cost model pick the `(engine, format)` pair with the smallest
/// predicted completion per request. Rows are the format-policy labels;
/// columns report p50 / p99 end-to-end latency (kilocycles), makespan
/// (kilocycles), warm-hit rate (%), and the dispatcher's mean relative
/// prediction error (%) — the "does adaptive beat the best single
/// format?" view.
pub fn queueing_format_sweep(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    load: f64,
    requests: usize,
) -> Grid {
    queueing_format_sweep_prepared(
        cfg,
        id,
        engines,
        load,
        requests,
        &queueing_setup(cfg, id, requests),
    )
}

/// [`queueing_format_sweep`] off a shared setup. Format cells need the
/// full `(class, format)` cold-report matrix, so the stream is
/// re-prepared once with [`crate::serving::queueing::prepare_matrix`]
/// over the whole palette; every policy row replays that one
/// preparation.
fn queueing_format_sweep_prepared(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    load: f64,
    requests: usize,
    setup: &QueueingSetup,
) -> Grid {
    use crate::serving::queueing::{
        feature_row_bytes, prepare_matrix, simulate_queue, EngineLineup, FormatPolicy, QueueConfig,
        SchedPolicy, ServeFormat, TrafficModel,
    };

    let cols: Vec<String> = ["p50e(kc)", "p99e(kc)", "mksp(kc)", "warm%", "err%"]
        .map(String::from)
        .to_vec();
    let hw = cfg.hw();
    let lineup = EngineLineup::mixed(engines, hw);
    let policies: Vec<FormatPolicy> = ServeFormat::PALETTE
        .iter()
        .map(|&f| FormatPolicy::Fixed(f))
        .chain(std::iter::once(FormatPolicy::Adaptive))
        .collect();
    let rows: Vec<String> = policies.iter().map(FormatPolicy::label).collect();
    let mut grid = Grid::new(
        format!(
            "Queueing: serving-format policy on the mixed lineup on {} (cost-aware, bursty, load {load:.2}, {requests} requests, {engines} engines)",
            id.abbrev()
        ),
        cols,
        rows,
    );
    let stream = setup.0.hotspot_stream(requests, (requests / 6).max(2));
    let prepared = prepare_matrix(
        &setup.0,
        &stream,
        &AccelModel::sgcn(),
        &lineup,
        &ServeFormat::PALETTE,
    );
    let row_bytes = feature_row_bytes(&setup.0);
    for policy in &policies {
        let row = policy.label();
        let qcfg = QueueConfig::new(engines, SchedPolicy::CostAware, load, cfg.seed)
            .with_traffic(TrafficModel::bursty_default())
            .with_lineup(lineup.clone())
            .with_format(*policy);
        let s = simulate_queue(&prepared, &qcfg, &hw, row_bytes).summary;
        grid.set(&row, "p50e(kc)", s.p50_e2e_cycles as f64 / 1e3);
        grid.set(&row, "p99e(kc)", s.p99_e2e_cycles as f64 / 1e3);
        grid.set(&row, "mksp(kc)", s.makespan_cycles as f64 / 1e3);
        grid.set(&row, "warm%", s.warm_hit_rate * 100.0);
        grid.set(&row, "err%", s.format_pred_err * 100.0);
    }
    grid
}

/// Failure-drill scenario (beyond the paper): fault intensity ×
/// scheduler policy × retry budget under bursty traffic, with elastic
/// autoscaling holding a floor of half the fleet. Rows are
/// `fault / policy rN`; columns report the completion and failure rates
/// (%), fleet availability (%), p99 end-to-end latency over completed
/// requests (kilocycles), and the warm-cache hit rate (%) — how
/// gracefully the fleet degrades when engines crash, and what the retry
/// budget buys back.
pub fn queueing_failure_sweep(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    load: f64,
    requests: usize,
) -> Grid {
    queueing_failure_sweep_prepared(
        cfg,
        id,
        engines,
        load,
        requests,
        &queueing_setup(cfg, id, requests),
    )
}

/// [`queueing_failure_sweep`] over an already-prepared stream.
fn queueing_failure_sweep_prepared(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    load: f64,
    requests: usize,
    setup: &QueueingSetup,
) -> Grid {
    use crate::serving::queueing::{
        feature_row_bytes, simulate_queue, FailureModel, QueueConfig, RetryPolicy, ScalePolicy,
        SchedPolicy, TrafficModel,
    };

    let cols: Vec<String> = ["done%", "fail%", "avail%", "p99e(kc)", "warm%"]
        .map(String::from)
        .to_vec();
    let faults = [
        ("none", FailureModel::None),
        (
            "mtbf",
            FailureModel::Mtbf {
                mtbf_services: 12.0,
                mttr_services: 4.0,
                incidents_per_engine: 2,
            },
        ),
        (
            "harsh",
            FailureModel::Mtbf {
                mtbf_services: 8.0,
                mttr_services: 4.0,
                incidents_per_engine: 3,
            },
        ),
    ];
    let policies = [SchedPolicy::FifoRoundRobin, SchedPolicy::CacheAffinity];
    let retries = [RetryPolicy::new(1, 0), RetryPolicy::new(3, 0)];
    let mut rows = Vec::new();
    for (name, _) in &faults {
        for policy in policies {
            for retry in &retries {
                rows.push(format!("{name} / {} {}", policy.label(), retry.label()));
            }
        }
    }
    let mut grid = Grid::new(
        format!(
            "Queueing: failure drills on {} (bursty, autoscale floor {}, load {load:.2}, {requests} requests, {engines} engines)",
            id.abbrev(),
            (engines / 2).max(1),
        ),
        cols,
        rows,
    );
    let hw = cfg.hw();
    let row_bytes = feature_row_bytes(&setup.0);
    let floor = (engines / 2).max(1);
    for (name, faults) in faults {
        for policy in policies {
            for retry in &retries {
                let qcfg = QueueConfig::new(engines, policy, load, cfg.seed)
                    .with_traffic(TrafficModel::bursty_default())
                    .with_faults(faults.clone())
                    .with_retry(*retry)
                    .with_autoscale(ScalePolicy::with_floor(floor));
                let s = simulate_queue(&setup.1, &qcfg, &hw, row_bytes).summary;
                let row = format!("{name} / {} {}", policy.label(), retry.label());
                let done = if s.requests == 0 {
                    0.0
                } else {
                    s.completed as f64 / s.requests as f64
                };
                grid.set(&row, "done%", done * 100.0);
                grid.set(&row, "fail%", s.failed_rate * 100.0);
                grid.set(&row, "avail%", s.availability * 100.0);
                grid.set(&row, "p99e(kc)", s.p99_e2e_cycles as f64 / 1e3);
                grid.set(&row, "warm%", s.warm_hit_rate * 100.0);
            }
        }
    }
    grid
}

/// Deadline-class capacity scenario (beyond the paper): fleet size ×
/// interactive mix under a drills-on overload (bursty at ρ ≥ 1.2 with
/// MTBF faults). Each mix gets an unprotected baseline row at the base
/// fleet, then guarded rows (class deadlines + preemption + the
/// brownout ladder) across fleet sizes. The arrival timeline is
/// recorded once at the base fleet and replayed into every cell, so a
/// larger fleet actually drains the same offered traffic instead of
/// seeing it re-normalized to its own capacity. Columns report the
/// interactive shed rate (%), per-class p99 end-to-end latency
/// (kilocycles), the preemption count, and the degraded-completion
/// share (%).
pub fn queueing_class_sweep(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    load: f64,
    requests: usize,
) -> Grid {
    queueing_class_sweep_prepared(
        cfg,
        id,
        engines,
        load,
        requests,
        &queueing_setup(cfg, id, requests),
    )
}

/// [`queueing_class_sweep`] over an already-prepared stream (only the
/// serving context is shared — the sweep runs its own degraded
/// preparation, which carries the lineup's per-class and reduced-fanout
/// lite reports the brownout ladder serves from).
fn queueing_class_sweep_prepared(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    load: f64,
    requests: usize,
    setup: &QueueingSetup,
) -> Grid {
    use crate::serving::queueing::{
        feature_row_bytes, prepare_degraded, simulate_queue, ClassPolicy, DegradePolicy,
        EngineLineup, FailureModel, FormatPolicy, QueueConfig, RequestClass, RetryPolicy,
        SchedPolicy, ServeFormat, TrafficModel,
    };

    let cols: Vec<String> = ["ishd%", "ip99(kc)", "bp99(kc)", "pre", "deg%"]
        .map(String::from)
        .to_vec();
    let mixes = [0.3f64, 0.6];
    let sizes = [2usize, 4, 8];
    // Capacity is an overload question: keep ρ well over 1 so the
    // protection mechanisms (shed, preempt, brownout) actually bite.
    let rho = load.max(1.2);
    let mut rows = Vec::new();
    for &mix in &mixes {
        rows.push(format!("mix {mix:.1} plain x{engines}"));
        for &e in &sizes {
            rows.push(format!("mix {mix:.1} guard x{e}"));
        }
    }
    let mut grid = Grid::new(
        format!(
            "Queueing: deadline classes & brownout capacity on {} (cost-aware, bursty, mtbf drills, load {rho:.2}, {requests} requests)",
            id.abbrev()
        ),
        cols,
        rows,
    );
    let hw = cfg.hw();
    let stream = setup.0.hotspot_stream(requests, (requests / 6).max(2));
    let prepared = prepare_degraded(
        &setup.0,
        &stream,
        &AccelModel::sgcn(),
        &EngineLineup::mixed(engines.max(2), hw),
        &ServeFormat::PALETTE,
    );
    let row_bytes = feature_row_bytes(&setup.0);
    let base = |e: usize| {
        QueueConfig::new(e, SchedPolicy::CostAware, rho, cfg.seed)
            .with_traffic(TrafficModel::bursty_default())
            .with_lineup(EngineLineup::mixed(e, hw))
            .with_format(FormatPolicy::Adaptive)
            .with_faults(FailureModel::mtbf_default())
            .with_retry(RetryPolicy::default())
    };
    // The fixed offered timeline every cell replays (recorded at the
    // base fleet — see the function doc).
    let trace = simulate_queue(
        &prepared,
        &base(engines).with_classes(ClassPolicy::mix(mixes[0])),
        &hw,
        row_bytes,
    )
    .arrival_trace();
    let iv = RequestClass::Interactive.idx();
    let bt = RequestClass::Batch.idx();
    let mut fill = |row: &str, qcfg: QueueConfig| {
        let s = simulate_queue(&prepared, &qcfg, &hw, row_bytes).summary;
        let offered_i = s.class_completed[iv] + s.class_shed[iv] + s.class_failed[iv];
        let ishd = if offered_i == 0 {
            0.0
        } else {
            s.class_shed[iv] as f64 / offered_i as f64
        };
        let deg = if s.completed == 0 {
            0.0
        } else {
            s.degraded as f64 / s.completed as f64
        };
        grid.set(row, "ishd%", ishd * 100.0);
        grid.set(row, "ip99(kc)", s.class_p99_e2e[iv] as f64 / 1e3);
        grid.set(row, "bp99(kc)", s.class_p99_e2e[bt] as f64 / 1e3);
        grid.set(row, "pre", s.preemptions as f64);
        grid.set(row, "deg%", deg * 100.0);
    };
    for &mix in &mixes {
        fill(
            &format!("mix {mix:.1} plain x{engines}"),
            base(engines)
                .with_trace(trace.clone())
                .with_classes(ClassPolicy::mix(mix)),
        );
        for &e in &sizes {
            fill(
                &format!("mix {mix:.1} guard x{e}"),
                base(e)
                    .with_trace(trace.clone())
                    .with_classes(ClassPolicy::mix(mix).with_preemption())
                    .with_degrade(DegradePolicy::default()),
            );
        }
    }
    grid
}

/// Sharded-store serving (the ROADMAP's million-vertex scale-out axis,
/// scaled to the suite dataset): shard count × hub replication under
/// shard-oblivious (`least-loaded`) vs shard-locality
/// (`shard-affinity`) routing. Rows are `<shards>sh <hubs>hub /
/// <policy>`; columns report cross-shard kilobytes and network
/// kilocycles, the remote-row rate (%), p99 end-to-end latency and
/// makespan (kilocycles) — the "does locality routing pay for itself?"
/// view.
pub fn queueing_shard_sweep(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    load: f64,
    requests: usize,
) -> Grid {
    queueing_shard_sweep_prepared(
        cfg,
        id,
        engines,
        load,
        requests,
        &queueing_setup(cfg, id, requests),
    )
}

/// [`queueing_shard_sweep`] off a shared setup (the prepared stream is
/// shard-plan independent — only routing and the network bill change
/// per cell).
fn queueing_shard_sweep_prepared(
    cfg: &ExperimentConfig,
    id: DatasetId,
    engines: usize,
    load: f64,
    requests: usize,
    setup: &QueueingSetup,
) -> Grid {
    use crate::serving::queueing::{
        feature_row_bytes, simulate_queue, QueueConfig, SchedPolicy, ShardPlan, TrafficModel,
    };

    let cols: Vec<String> = ["netKB", "netkc", "rem%", "p99e(kc)", "mksp(kc)"]
        .map(String::from)
        .to_vec();
    let shard_counts = [2usize, 4];
    let hub_counts = [0usize, 16];
    let policies = [SchedPolicy::LeastLoaded, SchedPolicy::ShardAffinity];
    let mut rows = Vec::new();
    for &sh in &shard_counts {
        for &hubs in &hub_counts {
            for policy in policies {
                rows.push(format!("{sh}sh {hubs}hub / {}", policy.label()));
            }
        }
    }
    let mut grid = Grid::new(
        format!(
            "Queueing: sharded store × routing on {} (bursty, load {load:.2}, {requests} requests, {engines} engines)",
            id.abbrev()
        ),
        cols,
        rows,
    );
    let hw = cfg.hw();
    let row_bytes = feature_row_bytes(&setup.0);
    for &sh in &shard_counts {
        for &hubs in &hub_counts {
            let plan = ShardPlan::from_graph(&setup.0.dataset.graph, sh, hubs);
            for policy in policies {
                let row = format!("{sh}sh {hubs}hub / {}", policy.label());
                let qcfg = QueueConfig::new(engines, policy, load, cfg.seed)
                    .with_traffic(TrafficModel::bursty_default())
                    .with_sharding(plan.clone());
                let s = simulate_queue(&setup.1, &qcfg, &hw, row_bytes).summary;
                grid.set(&row, "netKB", s.net_bytes as f64 / 1e3);
                grid.set(&row, "netkc", s.net_cycles as f64 / 1e3);
                grid.set(&row, "rem%", s.remote_rate * 100.0);
                grid.set(&row, "p99e(kc)", s.p99_e2e_cycles as f64 / 1e3);
                grid.set(&row, "mksp(kc)", s.makespan_cycles as f64 / 1e3);
            }
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: [DatasetId; 2] = [DatasetId::Cora, DatasetId::PubMed];

    #[test]
    fn fig01_modern_above_traditional() {
        let g = fig01_sparsity_vs_layers(&ExperimentConfig::quick(), &[3, 10]);
        for ds in ["CR", "CS", "PM"] {
            for depth in ["L3", "L10"] {
                assert!(
                    g.get(&format!("{ds} modern"), depth)
                        > g.get(&format!("{ds} traditional"), depth) + 15.0,
                    "{ds} {depth}"
                );
            }
        }
    }

    #[test]
    fn fig02_band_is_40_to_80() {
        let g = fig02_per_layer_sparsity(&ExperimentConfig::quick());
        for row in &g.values {
            for &v in row {
                assert!((40.0..=80.0).contains(&v), "{v}");
            }
        }
    }

    #[test]
    fn fig11_sgcn_beats_baselines() {
        let g = fig11_performance(&ExperimentConfig::quick(), &SMALL);
        let sgcn = g.get("SGCN", "Geomean");
        assert!(sgcn > 1.1, "SGCN geomean {sgcn}");
        for other in ["GCNAX", "HyGCN", "AWB-GCN", "EnGN", "I-GCN"] {
            assert!(sgcn > g.get(other, "Geomean"), "SGCN vs {other}");
        }
    }

    #[test]
    fn fig12_ablation_is_monotone() {
        let g = fig12_ablation(&ExperimentConfig::quick(), &SMALL);
        let base = g.get("Baseline", "Geomean");
        let non_sliced = g.get("Non-sliced BEICSR", "Geomean");
        let beicsr = g.get("BEICSR", "Geomean");
        let sac = g.get("BEICSR+SAC", "Geomean");
        assert!((base - 1.0).abs() < 1e-9);
        assert!(non_sliced > base, "non-sliced {non_sliced}");
        // At tiny test scale the sliced/non-sliced gap can be within noise;
        // require the sliced variant not to regress materially (the full
        // paper-scale ordering is exercised by the fig12 bench harness).
        assert!(
            beicsr > non_sliced * 0.97,
            "beicsr {beicsr} vs non-sliced {non_sliced}"
        );
        assert!(sac >= beicsr * 0.95, "sac {sac} vs beicsr {beicsr}");
        assert!(sac > base, "sac {sac} vs baseline");
    }

    #[test]
    fn fig13_sgcn_saves_energy() {
        let g = fig13_energy(&ExperimentConfig::quick(), &SMALL);
        for ds in ["CR", "PM"] {
            assert!((g.get("GCNAX/total", ds) - 1.0).abs() < 1e-9);
            assert!(g.get("SGCN/total", ds) < 1.0, "{ds}");
        }
        let tdp = g.get("SGCN/total", "TDP(W)");
        assert!(tdp > 5.0 && tdp < 8.0, "TDP {tdp}");
        assert!(g.get("HyGCN/total", "TDP(W)") < tdp);
    }

    #[test]
    fn fig19_crossover_shapes() {
        let g = fig19_sparsity_sweep(&ExperimentConfig::quick(), &[10, 50, 90], DatasetId::Cora);
        // CSR loses at low/mid sparsity, approaches or beats dense at 90%.
        assert!(g.get("CSR", "10%") < 1.0);
        assert!(g.get("CSR", "90%") > g.get("CSR", "10%"));
        // SGCN wins from mid sparsity on.
        assert!(g.get("SGCN", "50%") > 1.0);
        assert!(g.get("SGCN", "90%") > 1.0);
    }

    #[test]
    fn table02_has_all_datasets() {
        let g = table02_datasets(&ExperimentConfig::quick());
        assert_eq!(g.rows.len(), 9);
        assert_eq!(g.get("RD", "Vertices"), 232_965.0);
        assert!(g.get("RD", "Scale") > 100.0);
    }

    #[test]
    fn fig14_components_sum_to_total() {
        let g = fig14_memory_breakdown(&ExperimentConfig::quick(), DatasetId::Cora);
        for accel in ["GCNAX", "HyGCN", "AWB-GCN", "EnGN", "I-GCN", "SGCN"] {
            let sum = g.get(accel, "topology")
                + g.get(accel, "feature-in")
                + g.get(accel, "feature-out")
                + g.get(accel, "partials");
            let total = g.get(accel, "total");
            // Weights are the only class not plotted; their share can be
            // sizable when the feature traffic is small (SGCN at quick
            // scale).
            assert!(sum <= total + 1e-9, "{accel}: {sum} vs {total}");
            assert!(sum > total * 0.55, "{accel}: {sum} vs {total}");
        }
        // GCNAX is the normalization basis.
        assert!((g.get("GCNAX", "total") - 1.0).abs() < 1e-9);
        // SGCN's total is the smallest.
        for other in ["GCNAX", "HyGCN", "AWB-GCN", "EnGN", "I-GCN"] {
            assert!(g.get("SGCN", "total") < g.get(other, "total"), "{other}");
        }
    }

    #[test]
    fn fig15a_speedup_stable_across_depths() {
        let g = fig15a_layer_sensitivity(&ExperimentConfig::quick(), &[3, 6]);
        for depth in ["L3", "L6"] {
            assert!((g.get("GCNAX", depth) - 1.0).abs() < 1e-9);
            assert!(g.get("SGCN", depth) > 1.0, "{depth}");
        }
    }

    #[test]
    fn fig15b_sgcn_wins_across_cache_sizes() {
        let g = fig15b_cache_sensitivity(&ExperimentConfig::quick(), &[8, 32], &SMALL);
        for cache in ["8K", "32K"] {
            assert!(g.get("SGCN", cache) > 1.0, "{cache}");
        }
    }

    #[test]
    fn fig16_variants_keep_sgcn_on_top() {
        for variant in [
            GcnVariant::GinConv { eps: 0.0 },
            GcnVariant::GraphSage { sample: 4 },
        ] {
            let g = fig16_variants(&ExperimentConfig::quick(), &SMALL, variant);
            assert!(
                g.get("SGCN", "Geomean") > 1.05,
                "{}: {}",
                variant.label(),
                g.get("SGCN", "Geomean")
            );
        }
    }

    #[test]
    fn fig17_small_slices_cost_more() {
        let g = fig17_slice_sensitivity(&ExperimentConfig::quick(), &[32, 96], &SMALL);
        for ds in ["CR", "PM"] {
            assert!((g.get("Slice 96", ds) - 1.0).abs() < 1e-9);
            assert!(
                g.get("Slice 32", ds) > 1.1,
                "{ds}: {}",
                g.get("Slice 32", ds)
            );
        }
    }

    #[test]
    fn fig18_more_engines_speed_up_to_saturation() {
        let g = fig18_scalability(&ExperimentConfig::quick(), &[1, 4], DatasetId::Cora);
        assert!((g.get("HBM2 speedup", "E1") - 1.0).abs() < 1e-9);
        assert!(g.get("HBM2 speedup", "E4") > 1.5);
        // HBM1 never beats HBM2 at the same engine count.
        for e in ["E1", "E4"] {
            assert!(
                g.get("HBM1 speedup", e) <= g.get("HBM2 speedup", e) + 1e-9,
                "{e}"
            );
        }
        // Utilization is a valid percentage.
        for row in ["HBM2 util%", "HBM1 util%"] {
            for e in ["E1", "E4"] {
                let u = g.get(row, e);
                assert!((0.0..=100.0).contains(&u), "{row} {e}: {u}");
            }
        }
    }

    #[test]
    fn fig03_beicsr_cuts_traffic_everywhere() {
        let (traffic, speedup) = fig03_format_comparison(&ExperimentConfig::quick(), &SMALL);
        for ds in ["CR", "PM"] {
            assert!((traffic.get("Dense", ds) - 1.0).abs() < 1e-9);
            assert!(traffic.get("BEICSR", ds) < 0.8, "{ds}");
            assert!(speedup.get("BEICSR", ds) > 1.0, "{ds}");
            assert!(speedup.get("Blocked Ellpack", ds) < 0.7, "{ds}");
        }
    }

    #[test]
    fn ablation_beicsr_design_penalizes_variants() {
        let g = ablation_beicsr_design(&ExperimentConfig::quick(), &SMALL);
        for ds in ["CR", "PM"] {
            assert!((g.get("Non-sliced BEICSR", ds) - 1.0).abs() < 1e-9);
            // Geometric mean over the two datasets: the variants should
            // not beat the paper's layout.
            let sep = g.get("Separate-bitmap", ds);
            let packed = g.get("Packed BEICSR", ds);
            assert!(sep > 0.95, "{ds} separate {sep}");
            assert!(packed > 0.95, "{ds} packed {packed}");
        }
    }

    #[test]
    fn ablation_sac_strip_covers_requested_heights() {
        let g = ablation_sac_strip(&ExperimentConfig::quick(), &[16, 32], &SMALL);
        assert!(g.get("strip 32", "Geomean") > 0.8);
        assert!(g.get("strip 16", "Geomean") > 0.8);
    }

    #[test]
    fn ablation_cache_policy_lru_is_reference() {
        let g = ablation_cache_policy(&ExperimentConfig::quick(), &SMALL);
        for ds in ["CR", "PM"] {
            assert!((g.get("GCNAX/LRU", ds) - 1.0).abs() < 1e-9);
            // SGCN faster than GCNAX under its Table III policy.
            assert!(g.get("SGCN/LRU", ds) < 1.0, "{ds}");
        }
    }

    #[test]
    fn serving_fanout_sweep_larger_fanouts_cost_more() {
        let g = serving_fanout_sweep(
            &ExperimentConfig::quick(),
            DatasetId::Cora,
            &[vec![4, 2], vec![12, 8]],
            24,
        );
        // Bigger neighborhoods mean more vertices and higher latency.
        assert!(g.get("fanout 12x8", "verts") > g.get("fanout 4x2", "verts"));
        assert!(g.get("fanout 12x8", "p50(kcyc)") >= g.get("fanout 4x2", "p50(kcyc)"));
        // Percentiles are ordered within a row.
        for row in ["fanout 4x2", "fanout 12x8"] {
            assert!(g.get(row, "p99(kcyc)") >= g.get(row, "p50(kcyc)"), "{row}");
            assert!(g.get(row, "krps") > 0.0, "{row}");
        }
    }

    #[test]
    fn serving_lineup_reports_all_models() {
        let g = serving_lineup(&ExperimentConfig::quick(), DatasetId::Cora, 16);
        for m in ["GCNAX", "HyGCN", "AWB-GCN", "EnGN", "I-GCN", "SGCN"] {
            assert!(g.get(m, "p50(kcyc)") > 0.0, "{m}");
            assert!(g.get(m, "krps") > 0.0, "{m}");
        }
    }

    #[test]
    fn queueing_policy_sweep_affinity_wins_warm_reuse() {
        let g = queueing_policy_sweep(
            &ExperimentConfig::quick(),
            DatasetId::Cora,
            3,
            &[0.5, 0.9],
            30,
        );
        for load in ["@0.50", "@0.90"] {
            let aff = g.get(&format!("cache-affinity {load}"), "warm%");
            let fifo = g.get(&format!("fifo-rr {load}"), "warm%");
            assert!(aff >= fifo, "{load}: affinity {aff} < fifo {fifo}");
            for policy in ["fifo-rr", "least-loaded", "cache-affinity"] {
                let row = format!("{policy} {load}");
                let util = g.get(&row, "util%");
                assert!((0.0..=100.0).contains(&util), "{row}: util {util}");
                assert!(g.get(&row, "p99e(kc)") > 0.0, "{row}");
            }
        }
        // Heavier offered load cannot shrink queueing delay (same policy).
        assert!(g.get("least-loaded @0.90", "p50w(kc)") >= g.get("least-loaded @0.50", "p50w(kc)"));
    }

    #[test]
    fn queueing_engine_sweep_more_engines_cut_makespan() {
        let g = queueing_engine_sweep(
            &ExperimentConfig::quick(),
            DatasetId::Cora,
            &[1, 4],
            0.8,
            30,
        );
        assert!(g.get("E4", "mksp(kc)") <= g.get("E1", "mksp(kc)"));
        for e in ["E1", "E4"] {
            let util = g.get(e, "util%");
            assert!((0.0..=100.0).contains(&util), "{e}: {util}");
            assert!(g.get(e, "p50e(kc)") > 0.0, "{e}");
            assert!(g.get(e, "p99e(kc)") >= g.get(e, "p50e(kc)"), "{e}");
        }
    }

    #[test]
    fn queueing_traffic_sweep_sheds_under_pressure_and_stays_sane() {
        use crate::serving::queueing::SchedPolicy;
        let g = queueing_traffic_sweep(&ExperimentConfig::quick(), DatasetId::Cora, 2, 0.9, 30);
        let traffics = ["exponential", "bursty", "diurnal", "closed:4"];
        let mut total_shed = 0.0;
        for t in traffics {
            for p in SchedPolicy::ALL {
                let row = format!("{t} / {}", p.label());
                let shed = g.get(&row, "shed%");
                let viol = g.get(&row, "viol%");
                assert!((0.0..=100.0).contains(&shed), "{row}: shed {shed}");
                assert!((0.0..=100.0).contains(&viol), "{row}: viol {viol}");
                assert!(g.get(&row, "warm%") >= 0.0, "{row}");
                total_shed += shed;
            }
        }
        // At 0.9ρ with a 3-mean-service deadline, *somewhere* in the
        // sweep admission control fires (bursts at minimum).
        assert!(total_shed > 0.0, "no cell shed anything");
    }

    #[test]
    fn queueing_fleet_sweep_orders_fleets_sensibly() {
        let g = queueing_fleet_sweep(&ExperimentConfig::quick(), DatasetId::Cora, 4, 0.8, 30);
        for row in ["uniform", "uniform+steal", "mixed", "mixed+steal"] {
            let util = g.get(row, "util%");
            assert!((0.0..=100.0).contains(&util), "{row}: util {util}");
            assert!(g.get(row, "p99e(kc)") >= g.get(row, "p50e(kc)"), "{row}");
            assert!(g.get(row, "mksp(kc)") > 0.0, "{row}");
        }
        // A slow engine class cannot shrink the makespan, and stealing
        // cannot grow it.
        assert!(g.get("mixed", "mksp(kc)") >= g.get("uniform", "mksp(kc)") * 0.999);
        assert!(g.get("mixed+steal", "mksp(kc)") <= g.get("mixed", "mksp(kc)") * 1.001);
    }

    #[test]
    fn queueing_failure_sweep_degrades_gracefully() {
        let g = queueing_failure_sweep(&ExperimentConfig::quick(), DatasetId::Cora, 4, 0.8, 30);
        for fault in ["none", "mtbf", "harsh"] {
            for cell in [
                "fifo-rr r1",
                "fifo-rr r3",
                "cache-affinity r1",
                "cache-affinity r3",
            ] {
                let row = format!("{fault} / {cell}");
                let done = g.get(&row, "done%");
                let fail = g.get(&row, "fail%");
                let avail = g.get(&row, "avail%");
                assert!((0.0..=100.0).contains(&done), "{row}: done {done}");
                assert!((0.0..=100.0).contains(&fail), "{row}: fail {fail}");
                assert!((0.0..=100.0).contains(&avail), "{row}: avail {avail}");
                assert!(g.get(&row, "warm%") >= 0.0, "{row}");
                if fault == "none" {
                    assert_eq!(fail, 0.0, "{row}: failures without faults");
                }
            }
        }
        // Drills actually bite: the harsh MTBF cells lose availability
        // relative to the fault-free ones.
        assert!(
            g.get("harsh / fifo-rr r3", "avail%") < g.get("none / fifo-rr r3", "avail%"),
            "harsh drill did not dent availability"
        );
        // A bigger retry budget never completes fewer requests.
        for fault in ["mtbf", "harsh"] {
            for policy in ["fifo-rr", "cache-affinity"] {
                assert!(
                    g.get(&format!("{fault} / {policy} r3"), "done%")
                        >= g.get(&format!("{fault} / {policy} r1"), "done%"),
                    "{fault}/{policy}: retries lost work"
                );
            }
        }
    }

    #[test]
    fn grid_display_renders() {
        let mut g = Grid::new("t", vec!["a".into()], vec!["r".into()]);
        g.set("r", "a", 1.5);
        let s = g.to_string();
        assert!(s.contains("1.500"));
        assert!(s.contains("## t"));
    }
}
