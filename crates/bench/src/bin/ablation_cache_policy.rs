//! Design ablation: cache replacement policy (LRU / FIFO / BIP) under the
//! thrashing regime §V-C describes.

use sgcn::experiments::ablation_cache_policy;
use sgcn_bench::{banner, experiment_config, selected_datasets};

fn main() {
    banner("Ablation: cache replacement policy");
    let cfg = experiment_config();
    println!("{}", ablation_cache_policy(&cfg, &selected_datasets()));
    println!(
        "Expected shape: LRU (Table III) is competitive; BIP narrows the gap in\n\
         thrash-heavy configurations (the pathology SAC addresses at the\n\
         scheduling level instead)."
    );
}
