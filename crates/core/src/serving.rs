//! Request-level mini-batch serving.
//!
//! The paper evaluates whole-graph inference; a production deployment
//! serves *requests*: each query names a seed vertex, a GraphSAGE-style
//! sampler extracts its bounded multi-hop neighborhood
//! ([`sgcn_graph::sampling`]), and the accelerator runs the layers over
//! that subgraph alone. This module packages one dataset's serving state
//! ([`ServingContext`]), turns sampled subgraphs into self-contained
//! [`Workload`]s (sliced input features + synthesized per-layer trace at
//! the dataset's sparsity trajectory), replays request batches through
//! the simulator in parallel, and aggregates per-request [`SimReport`]s
//! into latency percentiles and throughput ([`ServeSummary`]). The
//! [`queueing`] submodule layers an *online* view on top: a seeded
//! open-loop arrival process and an N-engine event-driven scheduler with
//! pluggable policies, including warm-cache affinity routing.
//!
//! # Determinism
//!
//! Every stage is a pure function of `(dataset, fanouts, seed, request)`:
//! the sampler derives its RNG from the seed vertex, the trace synthesis
//! from the serving seed and seed vertex, and
//! [`ServingContext::serve_batch`] fans out
//! over [`sgcn_par::par_map`], which returns results in input order — so
//! a replayed stream is **bit-identical at any thread count**, matching
//! the experiment drivers' contract.

pub mod faults;
pub mod queueing;
pub mod sharding;
pub mod slo;
pub mod trace;
pub mod traffic;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sgcn_formats::DenseMatrix;
use sgcn_graph::builder::Normalization;
use sgcn_graph::datasets::{Dataset, DatasetId, SynthScale};
use sgcn_graph::sampling::{sample_neighborhood, Fanouts, SampledSubgraph};
use sgcn_model::features::{generate_input_features, slice_rows};
use sgcn_model::{NetworkConfig, ReferenceExecutor};
use sgcn_par::par_map;

use crate::accel::AccelModel;
use crate::config::HwConfig;
use crate::metrics::SimReport;
use crate::workload::Workload;

/// Scale knobs for a serving session.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Which catalog dataset backs the graph.
    pub dataset: DatasetId,
    /// Synthesis scale of the backing graph.
    pub scale: SynthScale,
    /// Per-hop sampling caps; the hop count is also the served network's
    /// depth (one aggregation per hop, the GraphSAGE convention).
    pub fanouts: Fanouts,
    /// Feature width of the served network.
    pub width: usize,
    /// Serving RNG seed (request streams, trace synthesis).
    pub seed: u64,
}

impl ServingConfig {
    /// The default quick-scale serving setup: a 2-hop 10×5 fanout on
    /// PubMed, matching the test-scale experiment config.
    pub fn quick() -> Self {
        ServingConfig {
            dataset: DatasetId::PubMed,
            scale: SynthScale::tiny(),
            fanouts: Fanouts::new(vec![10, 5]),
            width: 128,
            seed: 2023,
        }
    }
}

/// One inference request: a position in the stream plus the vertex whose
/// representation is queried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Stream position (stable across thread counts).
    pub index: usize,
    /// The queried vertex (original dataset id).
    pub seed_vertex: u32,
}

/// Per-request result: the subgraph's size plus the simulation report.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestReport {
    /// The request served.
    pub request: Request,
    /// Sampled subgraph vertices.
    pub vertices: usize,
    /// Sampled subgraph edges.
    pub edges: usize,
    /// The accelerator simulation of the request's workload.
    pub report: SimReport,
}

/// Shared per-dataset serving state, built once per session: the backing
/// graph and the full input feature matrix `X¹` that request slices are
/// cut from.
#[derive(Debug, Clone)]
pub struct ServingContext {
    /// The backing dataset (synthesized topology + catalog spec).
    pub dataset: Dataset,
    /// The served network (depth = sampling hops).
    pub network: NetworkConfig,
    config: ServingConfig,
    input: DenseMatrix,
}

impl ServingContext {
    /// Synthesizes the backing graph and input features for `config`.
    pub fn new(config: ServingConfig) -> Self {
        let dataset = Dataset::synthesize(config.dataset, config.scale, Normalization::Symmetric);
        let network = NetworkConfig::deep_residual(config.fanouts.hops(), config.width);
        let input = generate_input_features(
            dataset.graph.num_vertices(),
            dataset.input_features,
            dataset.spec.input_sparsity,
            config.seed ^ 0xA11CE,
        );
        ServingContext {
            dataset,
            network,
            config,
            input,
        }
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Derives a context with a different fanout schedule (and hence
    /// network depth), reusing this context's synthesized graph and
    /// input features — both are fanout-independent, so sweeps share
    /// them instead of re-synthesizing per schedule. Equivalent to
    /// `ServingContext::new` with the fanouts swapped.
    pub fn with_fanouts(&self, fanouts: Fanouts) -> ServingContext {
        let network = NetworkConfig::deep_residual(fanouts.hops(), self.config.width);
        ServingContext {
            dataset: self.dataset.clone(),
            network,
            config: ServingConfig {
                fanouts,
                ..self.config.clone()
            },
            input: self.input.clone(),
        }
    }

    /// A deterministic stream of `n` requests with uniformly drawn seed
    /// vertices (the heavy-traffic arrival mix).
    pub fn request_stream(&self, n: usize) -> Vec<Request> {
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ 0x5E_D51D);
        let vertices = self.dataset.graph.num_vertices();
        (0..n)
            .map(|index| Request {
                index,
                seed_vertex: rng.gen_range(0..vertices) as u32,
            })
            .collect()
    }

    /// A deterministic stream of `n` requests whose seed vertices are
    /// drawn from a small hot pool of `pool` **distinct** vertices
    /// (capped at the graph size) — the shared-neighborhood traffic mix
    /// (trending entities, celebrity vertices) that warm-cache reuse and
    /// affinity scheduling exploit. The pool and the per-request draws
    /// derive from the serving seed only, so the stream is position- and
    /// thread-independent.
    ///
    /// # Panics
    ///
    /// Panics if `pool == 0`.
    pub fn hotspot_stream(&self, n: usize, pool: usize) -> Vec<Request> {
        assert!(pool > 0, "hotspot pool must be non-empty");
        let vertices = self.dataset.graph.num_vertices();
        let pool = pool.min(vertices);
        // Partial Fisher–Yates: exactly `pool` distinct hot vertices.
        let mut pool_rng = SmallRng::seed_from_u64(self.config.seed ^ 0x407_5707);
        let mut ids: Vec<u32> = (0..vertices as u32).collect();
        for i in 0..pool {
            let j = pool_rng.gen_range(i..vertices);
            ids.swap(i, j);
        }
        let hot = &ids[..pool];
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ 0x5E_D51E);
        (0..n)
            .map(|index| Request {
                index,
                seed_vertex: hot[rng.gen_range(0..hot.len())],
            })
            .collect()
    }

    /// Samples the request's neighborhood.
    pub fn sample(&self, request: &Request) -> SampledSubgraph {
        sample_neighborhood(
            &self.dataset.graph,
            request.seed_vertex,
            &self.config.fanouts,
            self.config.seed,
        )
    }

    /// Builds the request's self-contained workload: the sampled
    /// subgraph as the topology, input features sliced from the full
    /// `X¹` (the same vertex always serves identical bytes), and the
    /// per-layer trace synthesized at the dataset's published sparsity
    /// trajectory. Pure in `(self, request.seed_vertex)`.
    pub fn build_workload(&self, request: &Request) -> Workload {
        self.build_workload_from(request, self.sample(request))
    }

    /// [`Self::build_workload`] over an already-sampled neighborhood —
    /// callers that also need the sample itself (e.g. the queueing
    /// scheduler's warm-cache probe wants the global vertex ids) sample
    /// once and build from it instead of re-sampling.
    pub fn build_workload_from(&self, request: &Request, sub: SampledSubgraph) -> Workload {
        let input = slice_rows(&self.input, &sub.vertices);
        let layers = self.network.layers;
        let targets: Vec<f64> = (0..layers)
            .map(|l| self.dataset.intermediate_sparsity(l, layers))
            .collect();
        // Trace seed mixes the serving seed with the queried vertex so
        // identical requests replay identically regardless of stream
        // position.
        let trace_seed = self.config.seed ^ (u64::from(request.seed_vertex) << 20);
        let exec = ReferenceExecutor::new(&sub.graph, self.network, trace_seed);
        let trace = exec.synthesize_trace(&input, &targets);
        Workload {
            dataset: Dataset {
                spec: self.dataset.spec,
                graph: sub.graph,
                input_features: self.dataset.input_features,
                vertex_scale: self.dataset.vertex_scale,
            },
            network: self.network,
            trace,
            format_cache: Default::default(),
        }
    }

    /// [`Self::build_workload_from`] plus boundary pre-encoding for a
    /// serving-format palette: every non-native palette format is
    /// encoded once into the workload's Arc'd `FormatCache`, so the
    /// per-(class, format) cold simulations that follow (one per lineup
    /// class × palette entry) share the encodings instead of rebuilding
    /// them. A `[Native]` (or empty) palette degenerates to exactly
    /// [`Self::build_workload_from`].
    pub fn build_workload_formats(
        &self,
        request: &Request,
        sub: SampledSubgraph,
        palette: &[queueing::ServeFormat],
    ) -> Workload {
        let wl = self.build_workload_from(request, sub);
        let kinds: Vec<sgcn_formats::FormatKind> = palette
            .iter()
            .filter_map(queueing::ServeFormat::override_kind)
            .collect();
        wl.precache_boundary_formats(&kinds);
        wl
    }

    /// Serves one request on one accelerator.
    pub fn serve(&self, request: &Request, model: &AccelModel, hw: &HwConfig) -> RequestReport {
        let wl = self.build_workload(request);
        let vertices = wl.vertices();
        let edges = wl.graph().num_edges();
        RequestReport {
            request: *request,
            vertices,
            edges,
            report: model.simulate(&wl, hw),
        }
    }

    /// Replays a request batch in parallel, results in stream order
    /// (bit-identical at any `SGCN_THREADS`).
    pub fn serve_batch(
        &self,
        requests: &[Request],
        model: &AccelModel,
        hw: &HwConfig,
    ) -> Vec<RequestReport> {
        par_map(requests.to_vec(), |req| self.serve(&req, model, hw))
    }

    /// Builds the stream's workloads in parallel (stream order) — the
    /// model-independent half of a replay. When several accelerators
    /// replay the same stream, build once and feed each model through
    /// [`Self::serve_prepared`] instead of re-sampling per model.
    pub fn build_workloads(&self, requests: &[Request]) -> Vec<Workload> {
        par_map(requests.to_vec(), |req| self.build_workload(&req))
    }

    /// Simulates prebuilt workloads on one model, results in stream
    /// order — bit-identical to [`Self::serve_batch`] on the same
    /// stream, minus the rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `requests` and `workloads` disagree in length.
    pub fn serve_prepared(
        &self,
        requests: &[Request],
        workloads: &[Workload],
        model: &AccelModel,
        hw: &HwConfig,
    ) -> Vec<RequestReport> {
        assert_eq!(requests.len(), workloads.len(), "one workload per request");
        par_map((0..requests.len()).collect(), |i| RequestReport {
            request: requests[i],
            vertices: workloads[i].vertices(),
            edges: workloads[i].graph().num_edges(),
            report: model.simulate(&workloads[i], hw),
        })
    }
}

/// Nearest-rank percentile (`q` in 0..=100) of an ascending-sorted
/// sequence.
fn percentile(sorted: &[u64], q: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q as usize * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Batch-level aggregation of per-request reports: the serving SLO view
/// (latency-cycle percentiles, throughput) plus traffic totals.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSummary {
    /// Requests aggregated.
    pub requests: usize,
    /// Sum of per-request cycles (a sequential replay's makespan).
    pub total_cycles: u64,
    /// Mean request latency in cycles.
    pub mean_cycles: f64,
    /// Median request latency in cycles.
    pub p50_cycles: u64,
    /// 95th-percentile latency in cycles.
    pub p95_cycles: u64,
    /// 99th-percentile latency in cycles.
    pub p99_cycles: u64,
    /// Worst request latency in cycles.
    pub max_cycles: u64,
    /// Requests per second at the platform's 1 GHz clock, one engine
    /// replaying the stream back to back.
    pub throughput_rps: f64,
    /// Total DRAM bytes across requests.
    pub total_dram_bytes: u64,
    /// Mean sampled-subgraph vertex count.
    pub avg_vertices: f64,
    /// Mean sampled-subgraph edge count.
    pub avg_edges: f64,
}

/// Per-request latencies when the stream is served in fixed-size
/// microbatches that **amortize the weight stream**: requests in one
/// batch run the same network back to back on one engine, so every
/// request after the batch's first finds the layer weights already on
/// chip and shaves the weight-fetch DRAM time (the weight DRAM bytes its
/// cold run actually paid, at the device's effective bandwidth) off its
/// latency — the same displacement model the queueing simulator uses for
/// warm feature reuse. `batch_size == 1` (or `0`, treated as 1) returns
/// the cold latencies unchanged. Pure per index, so summaries built from
/// it stay bit-identical across thread counts.
///
/// Only the latency view changes: traffic counters keep describing the
/// cold runs (the bytes a request *would* move standalone).
pub fn amortized_batch_latencies(
    reports: &[RequestReport],
    batch_size: usize,
    hw: &HwConfig,
) -> Vec<u64> {
    let batch = batch_size.max(1);
    let effective_bw = hw.dram.peak_bytes_per_cycle * hw.dram.efficiency;
    reports
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let cold = r.report.cycles;
            if i % batch == 0 || effective_bw <= 0.0 {
                return cold;
            }
            let saved_bytes = r.report.mem.traffic(sgcn_mem::Traffic::Weight).dram_bytes;
            let saved = (saved_bytes as f64 / effective_bw).floor() as u64;
            cold.saturating_sub(saved).max(1)
        })
        .collect()
}

impl ServeSummary {
    /// Aggregates a batch. An empty batch yields the all-zero summary
    /// (every field well-defined — no `NaN`/`inf` ever reaches the JSON,
    /// so `SGCN_REQUESTS=0` renders instead of aborting).
    pub fn from_reports(reports: &[RequestReport]) -> Self {
        let latencies: Vec<u64> = reports.iter().map(|r| r.report.cycles).collect();
        Self::from_reports_with_latencies(reports, latencies)
    }

    /// Aggregates a batch under substituted per-request latencies (e.g.
    /// [`amortized_batch_latencies`]); traffic/size fields still come
    /// from the reports.
    ///
    /// # Panics
    ///
    /// Panics if `latencies` and `reports` disagree in length.
    pub fn from_reports_with_latencies(reports: &[RequestReport], mut latencies: Vec<u64>) -> Self {
        assert_eq!(reports.len(), latencies.len(), "one latency per request");
        let n = reports.len();
        if n == 0 {
            return ServeSummary {
                requests: 0,
                total_cycles: 0,
                mean_cycles: 0.0,
                p50_cycles: 0,
                p95_cycles: 0,
                p99_cycles: 0,
                max_cycles: 0,
                throughput_rps: 0.0,
                total_dram_bytes: 0,
                avg_vertices: 0.0,
                avg_edges: 0.0,
            };
        }
        latencies.sort_unstable();
        let total_cycles: u64 = latencies.iter().sum();
        ServeSummary {
            requests: n,
            total_cycles,
            mean_cycles: total_cycles as f64 / n as f64,
            p50_cycles: percentile(&latencies, 50),
            p95_cycles: percentile(&latencies, 95),
            p99_cycles: percentile(&latencies, 99),
            max_cycles: *latencies.last().expect("non-empty"),
            // Zero total cycles would render `inf`; define the degenerate
            // throughput as 0 (the deterministic-JSON guarantee).
            throughput_rps: if total_cycles == 0 {
                0.0
            } else {
                n as f64 * 1e9 / total_cycles as f64
            },
            total_dram_bytes: reports.iter().map(|r| r.report.dram_bytes()).sum(),
            avg_vertices: reports.iter().map(|r| r.vertices).sum::<usize>() as f64 / n as f64,
            avg_edges: reports.iter().map(|r| r.edges).sum::<usize>() as f64 / n as f64,
        }
    }

    /// Deterministic JSON rendering (fixed field order, fixed float
    /// precision) — the `BENCH_serve.json` payload, byte-identical
    /// across thread counts by construction. The label is escaped, so
    /// any string is safe.
    pub fn to_json(&self, label: &str) -> String {
        let label = label.replace('\\', "\\\\").replace('"', "\\\"");
        format!(
            "{{\n  \"bench\": \"serve_sim\",\n  \"workload\": \"{label}\",\n  \"requests\": {},\n  \"p50_cycles\": {},\n  \"p95_cycles\": {},\n  \"p99_cycles\": {},\n  \"max_cycles\": {},\n  \"mean_cycles\": {:.3},\n  \"total_cycles\": {},\n  \"throughput_rps\": {:.3},\n  \"total_dram_bytes\": {},\n  \"avg_vertices\": {:.3},\n  \"avg_edges\": {:.3}\n}}\n",
            self.requests,
            self.p50_cycles,
            self.p95_cycles,
            self.p99_cycles,
            self.max_cycles,
            self.mean_cycles,
            self.total_cycles,
            self.throughput_rps,
            self.total_dram_bytes,
            self.avg_vertices,
            self.avg_edges,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ServingContext {
        ServingContext::new(ServingConfig {
            dataset: DatasetId::Cora,
            scale: SynthScale::tiny(),
            fanouts: Fanouts::new(vec![6, 3]),
            width: 64,
            seed: 7,
        })
    }

    #[test]
    fn request_stream_is_deterministic_and_in_bounds() {
        let ctx = tiny_ctx();
        let a = ctx.request_stream(40);
        let b = ctx.request_stream(40);
        assert_eq!(a, b);
        let n = ctx.dataset.graph.num_vertices();
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.index, i);
            assert!((r.seed_vertex as usize) < n);
        }
    }

    #[test]
    fn workload_shapes_match_subgraph() {
        let ctx = tiny_ctx();
        let req = ctx.request_stream(3)[1];
        let sub = ctx.sample(&req);
        let wl = ctx.build_workload(&req);
        assert_eq!(wl.vertices(), sub.num_vertices());
        assert_eq!(wl.graph(), &sub.graph);
        assert_eq!(wl.trace.num_layers(), ctx.network.layers);
        assert_eq!(wl.input_features().rows(), sub.num_vertices());
        // The input slice carries the exact rows of the full X¹.
        assert!(wl.vertices() <= 1 + 6 + 6 * 3);
    }

    #[test]
    fn same_seed_vertex_is_position_independent() {
        let ctx = tiny_ctx();
        let a = Request {
            index: 0,
            seed_vertex: 42,
        };
        let b = Request {
            index: 900,
            seed_vertex: 42,
        };
        assert_eq!(ctx.build_workload(&a).trace, ctx.build_workload(&b).trace);
    }

    #[test]
    fn serve_produces_nonzero_report() {
        let ctx = tiny_ctx();
        let req = ctx.request_stream(1)[0];
        let rr = ctx.serve(&req, &AccelModel::sgcn(), &HwConfig::default());
        assert!(rr.report.cycles > 0);
        assert!(rr.report.dram_bytes() > 0);
        assert!(rr.vertices >= 1);
    }

    #[test]
    fn batch_matches_serial_replay() {
        let ctx = tiny_ctx();
        let reqs = ctx.request_stream(12);
        let hw = HwConfig::default();
        let model = AccelModel::sgcn();
        let batch = ctx.serve_batch(&reqs, &model, &hw);
        let serial: Vec<RequestReport> = reqs.iter().map(|r| ctx.serve(r, &model, &hw)).collect();
        assert_eq!(batch, serial);
    }

    #[test]
    fn with_fanouts_equals_fresh_context() {
        let ctx = tiny_ctx();
        let fanouts = Fanouts::new(vec![3, 2, 2]);
        let derived = ctx.with_fanouts(fanouts.clone());
        let fresh = ServingContext::new(ServingConfig {
            fanouts,
            ..ctx.config().clone()
        });
        assert_eq!(derived.network, fresh.network);
        let req = derived.request_stream(2)[1];
        assert_eq!(req, fresh.request_stream(2)[1]);
        assert_eq!(
            derived.serve(&req, &AccelModel::sgcn(), &HwConfig::default()),
            fresh.serve(&req, &AccelModel::sgcn(), &HwConfig::default())
        );
    }

    #[test]
    fn prepared_replay_equals_batch_replay() {
        let ctx = tiny_ctx();
        let reqs = ctx.request_stream(10);
        let hw = HwConfig::default();
        let workloads = ctx.build_workloads(&reqs);
        for model in [AccelModel::sgcn(), AccelModel::gcnax()] {
            let prepared = ctx.serve_prepared(&reqs, &workloads, &model, &hw);
            let batch = ctx.serve_batch(&reqs, &model, &hw);
            assert_eq!(prepared, batch, "{}", model.name);
        }
    }

    #[test]
    #[should_panic(expected = "one workload per request")]
    fn prepared_replay_length_mismatch_panics() {
        let ctx = tiny_ctx();
        let reqs = ctx.request_stream(3);
        let workloads = ctx.build_workloads(&reqs[..2]);
        let _ = ctx.serve_prepared(&reqs, &workloads, &AccelModel::sgcn(), &HwConfig::default());
    }

    #[test]
    fn summary_percentiles_are_ordered() {
        let ctx = tiny_ctx();
        let reqs = ctx.request_stream(16);
        let batch = ctx.serve_batch(&reqs, &AccelModel::sgcn(), &HwConfig::default());
        let s = ServeSummary::from_reports(&batch);
        assert_eq!(s.requests, 16);
        assert!(s.p50_cycles <= s.p95_cycles);
        assert!(s.p95_cycles <= s.p99_cycles);
        assert!(s.p99_cycles <= s.max_cycles);
        assert!(s.throughput_rps > 0.0);
        assert!(s.mean_cycles * 16.0 - s.total_cycles as f64 == 0.0 || s.total_cycles > 0);
        assert!(s.avg_vertices >= 1.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn json_is_deterministic() {
        let ctx = tiny_ctx();
        let reqs = ctx.request_stream(4);
        let batch = ctx.serve_batch(&reqs, &AccelModel::sgcn(), &HwConfig::default());
        let s = ServeSummary::from_reports(&batch);
        assert_eq!(s.to_json("CR"), s.to_json("CR"));
        assert!(s.to_json("CR").contains("\"workload\": \"CR\""));
        // Labels with JSON metacharacters are escaped, not interpolated.
        let tricky = s.to_json("my \"hot\" \\stream");
        assert!(
            tricky.contains(r#""workload": "my \"hot\" \\stream""#),
            "{tricky}"
        );
    }

    #[test]
    fn empty_summary_is_all_zeros_and_renders_finite_json() {
        let s = ServeSummary::from_reports(&[]);
        assert_eq!(s.requests, 0);
        assert_eq!(s.total_cycles, 0);
        assert_eq!(s.mean_cycles, 0.0);
        assert_eq!(s.max_cycles, 0);
        assert_eq!(s.throughput_rps, 0.0);
        assert_eq!(s.avg_vertices, 0.0);
        let json = s.to_json("empty");
        assert!(
            !json.contains("inf") && !json.contains("NaN") && !json.contains("nan"),
            "{json}"
        );
        assert!(json.contains("\"requests\": 0"), "{json}");
        assert!(json.contains("\"throughput_rps\": 0.000"), "{json}");
    }

    #[test]
    fn zero_cycle_reports_yield_zero_throughput_not_inf() {
        // A degenerate batch whose requests took zero cycles must not
        // divide by zero: throughput is defined as 0.
        let rr = RequestReport {
            request: Request {
                index: 0,
                seed_vertex: 0,
            },
            vertices: 1,
            edges: 0,
            report: crate::metrics::SimReport {
                accelerator: "test",
                workload: "WL".into(),
                cycles: 0,
                agg_cycles: 0,
                comb_cycles: 0,
                mem_cycles: 0,
                macs: 0,
                mem: Default::default(),
                energy: Default::default(),
                tdp_watts: 0.0,
                layers: Vec::new(),
            },
        };
        let s = ServeSummary::from_reports(&[rr]);
        assert_eq!(s.requests, 1);
        assert_eq!(s.throughput_rps, 0.0);
        assert!(s.mean_cycles == 0.0);
        let json = s.to_json("degenerate");
        assert!(!json.contains("inf") && !json.contains("NaN"), "{json}");
    }

    #[test]
    fn hotspot_stream_draws_from_a_small_pool() {
        let ctx = tiny_ctx();
        let a = ctx.hotspot_stream(64, 4);
        let b = ctx.hotspot_stream(64, 4);
        assert_eq!(a, b, "deterministic");
        let mut distinct: Vec<u32> = a.iter().map(|r| r.seed_vertex).collect();
        distinct.sort_unstable();
        distinct.dedup();
        // 64 draws over a 4-vertex pool cover every pool member with
        // overwhelming probability, and the pool itself holds exactly 4
        // distinct vertices (partial Fisher–Yates, no replacement).
        assert_eq!(distinct.len(), 4, "{} distinct seeds", distinct.len());
        let n = ctx.dataset.graph.num_vertices();
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.index, i);
            assert!((r.seed_vertex as usize) < n);
        }
    }

    #[test]
    #[should_panic(expected = "hotspot pool")]
    fn zero_hotspot_pool_panics() {
        let _ = tiny_ctx().hotspot_stream(4, 0);
    }

    #[test]
    fn workload_from_presampled_neighborhood_matches() {
        let ctx = tiny_ctx();
        let req = ctx.request_stream(2)[0];
        let sub = ctx.sample(&req);
        let a = ctx.build_workload_from(&req, sub);
        let b = ctx.build_workload(&req);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.graph(), b.graph());
    }
}
