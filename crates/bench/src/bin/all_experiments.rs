//! Runs every table/figure harness in sequence — the one-shot generator
//! behind EXPERIMENTS.md. Expect a few minutes at paper scale; set
//! `SGCN_QUICK=1` for a smoke run.

use sgcn::experiments as exp;
use sgcn_bench::{banner, experiment_config, quick_mode, selected_datasets};
use sgcn_graph::datasets::DatasetId;
use sgcn_model::GcnVariant;

fn main() {
    banner("all experiments");
    let cfg = experiment_config();
    let datasets = selected_datasets();
    let t0 = std::time::Instant::now();

    let depths: &[usize] = if quick_mode() { &[1, 3, 5, 10] } else { &[1, 3, 5, 10, 28, 56, 112] };
    println!("{}", exp::fig01_sparsity_vs_layers(&cfg, depths));
    println!("{}", exp::fig02_per_layer_sparsity(&cfg));
    let (traffic, speedup) = exp::fig03_format_comparison(&cfg, &datasets);
    println!("{traffic}");
    println!("{speedup}");
    println!("{}", exp::table02_datasets(&cfg));
    println!("{}", exp::fig11_performance(&cfg, &datasets));
    println!("{}", exp::fig12_ablation(&cfg, &datasets));
    println!("{}", exp::fig13_energy(&cfg, &datasets));
    println!("{}", exp::fig14_memory_breakdown(&cfg, DatasetId::Reddit));
    let sens_depths: &[usize] = if quick_mode() { &[4, 8] } else { &[7, 14, 28, 56] };
    println!("{}", exp::fig15a_layer_sensitivity(&cfg, sens_depths));
    let base = cfg.cache_kib;
    // Cache sweep on a representative subset (CR/PM/GH) to bound runtime.
    let cache_datasets: Vec<_> = if quick_mode() {
        datasets.clone()
    } else {
        vec![DatasetId::Cora, DatasetId::PubMed, DatasetId::Github]
    };
    println!(
        "{}",
        exp::fig15b_cache_sensitivity(&cfg, &[base / 2, base, base * 2, base * 4, base * 8], &cache_datasets)
    );
    println!("{}", exp::fig16_variants(&cfg, &datasets, GcnVariant::GinConv { eps: 0.0 }));
    println!("{}", exp::fig16_variants(&cfg, &datasets, GcnVariant::GraphSage { sample: 8 }));
    println!(
        "{}",
        exp::fig17_slice_sensitivity(&cfg, &[32, 64, 96, 128, 256], &datasets)
    );
    println!("{}", exp::fig18_scalability(&cfg, &[1, 2, 4, 8, 16, 32], DatasetId::Reddit));
    let pts: Vec<u32> = if quick_mode() { vec![10, 50, 90] } else { (1..=19).map(|i| i * 5).collect() };
    println!("{}", exp::fig19_sparsity_sweep(&cfg, &pts, DatasetId::PubMed));

    // Design-choice ablations (DESIGN.md) on a representative subset.
    let abl: Vec<_> = if quick_mode() {
        datasets.clone()
    } else {
        vec![DatasetId::Cora, DatasetId::PubMed, DatasetId::Github]
    };
    println!("{}", exp::ablation_beicsr_design(&cfg, &abl));
    println!("{}", exp::ablation_sac_strip(&cfg, &[8, 16, 32, 64, 128], &abl));
    println!("{}", exp::ablation_cache_policy(&cfg, &abl));

    println!("total elapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
