//! Sparse feature-matrix formats for the SGCN reproduction.
//!
//! This crate implements the storage formats compared in the SGCN paper
//! (HPCA 2023, Fig. 3 and §V-A):
//!
//! * [`DenseMatrix`] — uncompressed row-major storage (the baseline),
//! * [`CsrFeatures`] — compressed sparse row with explicit column indices,
//! * [`CooFeatures`] — coordinate format (row, col, value triples),
//! * [`BsrFeatures`] — block compressed sparse row (2×2 blocks by default),
//! * [`BlockedEllpack`] — ELLPACK with block padding,
//! * [`Beicsr`] — the paper's **Bitmap-index Embedded In-place CSR**, in both
//!   its non-sliced (§V-A) and sliced (§V-B) variants.
//!
//! Every format implements [`FeatureFormat`], which exposes the *memory
//! spans* an accelerator touches when reading or writing a row (or a column
//! slice of a row). The SGCN simulator feeds those spans through its cache
//! and DRAM models, so the formats are the source of truth for the off-chip
//! traffic comparison of the paper's Fig. 3, Fig. 17 and Fig. 19.
//!
//! # Example
//!
//! ```
//! use sgcn_formats::{Beicsr, BeicsrConfig, DenseMatrix, FeatureFormat};
//!
//! let mut dense = DenseMatrix::zeros(4, 8);
//! dense.set(0, 1, 0.5);
//! dense.set(0, 6, -2.0);
//! let beicsr = Beicsr::encode(&dense, BeicsrConfig::non_sliced());
//! assert_eq!(beicsr.decode_row(0), dense.row(0));
//! // Reading row 0 touches the bitmap plus two non-zero values.
//! let bytes: u64 = beicsr.row_spans(0).iter().map(|s| u64::from(s.bytes)).sum();
//! assert!(bytes < 8 * 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod beicsr;
pub mod bitmap;
pub mod bsr;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod ellpack;
pub mod layout;
pub mod runs;
pub mod stats;
pub mod traits;

pub use ablation::{PackedBeicsr, SeparateBitmapCsr};
pub use beicsr::{Beicsr, BeicsrConfig};
pub use bitmap::Bitmap;
pub use bsr::BsrFeatures;
pub use coo::CooFeatures;
pub use csr::CsrFeatures;
pub use dense::DenseMatrix;
pub use ellpack::BlockedEllpack;
pub use layout::{
    align_up, cacheline_bytes_covering, cachelines, Span, CACHELINE_BYTES, ELEM_BYTES,
};
pub use runs::{LineRun, RunCompactor};
pub use traits::{ColRange, FeatureFormat, FormatKind};
