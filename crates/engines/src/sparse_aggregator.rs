//! The sparse aggregator unit (§V-D, Fig. 8).
//!
//! Aggregation consumes feature rows in BEICSR directly: ① fetch the first
//! cacheline of the entry (bitmap head + leading non-zeros); ② broadcast
//! the edge weight into the 16 multiplier lanes; ②′ run the bitmap through
//! the prefix-sum unit to obtain reversed indices; ③ scatter-accumulate
//! multiplier outputs into the positions whose bitmap bit is 1; ④ hand the
//! completed vertex to combination; ⑤ if non-zeros remain beyond the
//! fetched cacheline, fetch the next and repeat.
//!
//! This module implements the functional scatter-accumulate exactly and
//! reports the cost the cycle model charges.

use sgcn_formats::{Beicsr, ColRange, FeatureFormat as _};

use crate::prefix_sum::PrefixSumUnit;
use crate::simd::SimdMacs;

/// Cost of one sparse-aggregation operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AggregateCost {
    /// Multiplications issued (one per non-zero — the compute saving over
    /// dense aggregation).
    pub multiplies: u64,
    /// SIMD cycles consumed.
    pub cycles: u64,
    /// Cachelines of the entry streamed through the engine.
    pub cachelines: u64,
}

impl AggregateCost {
    /// Accumulates another cost.
    pub fn add(&mut self, other: AggregateCost) {
        self.multiplies += other.multiplies;
        self.cycles += other.cycles;
        self.cachelines += other.cachelines;
    }
}

/// The sparse aggregator engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SparseAggregator {
    simd: SimdMacs,
}

impl SparseAggregator {
    /// Creates an aggregator with `lanes` multipliers.
    pub fn new(lanes: usize) -> Self {
        SparseAggregator {
            simd: SimdMacs::new(lanes),
        }
    }

    /// Aggregates slice `slice_idx` of `src_row` from `features` into
    /// `acc` with edge weight `weight`: `acc += weight · X[src_row, slice]`.
    ///
    /// `acc` must cover exactly the slice's columns.
    ///
    /// # Panics
    ///
    /// Panics if `acc` does not match the slice width.
    pub fn aggregate_slice(
        &self,
        acc: &mut [f32],
        features: &Beicsr,
        src_row: usize,
        slice_idx: usize,
        weight: f32,
    ) -> AggregateCost {
        let bitmap = features.slot_bitmap(src_row, slice_idx);
        assert_eq!(
            acc.len(),
            bitmap.len(),
            "accumulator width must match slice"
        );
        let values = features.slot_values(src_row, slice_idx);
        // ②′ prefix sum over the bitmap → reversed indices.
        let unit = PrefixSumUnit::new(bitmap.len().max(1));
        let scan = unit.scan(bitmap);
        // ② / ③ multiply-broadcast and scatter-accumulate.
        for pos in bitmap.iter_ones() {
            acc[pos] += weight * values[scan[pos] as usize];
        }
        let nnz = values.len();
        AggregateCost {
            multiplies: nnz as u64,
            cycles: self.simd.cycles_for(nnz).max(1),
            cachelines: features.slot_read_span(src_row, slice_idx).cachelines(),
        }
    }

    /// Aggregates an entire row (all slices) into a full-width accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len() != features.cols()`.
    pub fn aggregate_row(
        &self,
        acc: &mut [f32],
        features: &Beicsr,
        src_row: usize,
        weight: f32,
    ) -> AggregateCost {
        assert_eq!(acc.len(), features.cols(), "accumulator must be full width");
        let mut cost = AggregateCost::default();
        for s in 0..features.num_slices() {
            let range = ColRange::new(
                s * features.slice_elems(),
                ((s + 1) * features.slice_elems()).min(features.cols()),
            );
            cost.add(self.aggregate_slice(
                &mut acc[range.start..range.end],
                features,
                src_row,
                s,
                weight,
            ));
        }
        cost
    }

    /// Dense-row aggregation (baseline accelerators): every element is
    /// multiplied, zeros included.
    pub fn aggregate_dense(&self, acc: &mut [f32], row: &[f32], weight: f32) -> AggregateCost {
        SimdMacs::axpy(acc, row, weight);
        AggregateCost {
            multiplies: row.len() as u64,
            cycles: self.simd.cycles_for(row.len()).max(1),
            cachelines: ((row.len() * 4) as u64).div_ceil(64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgcn_formats::{BeicsrConfig, DenseMatrix};

    fn sample(cols: usize) -> (DenseMatrix, Beicsr) {
        let mut m = DenseMatrix::zeros(3, cols);
        for c in 0..cols {
            if c % 3 != 0 {
                m.set(1, c, c as f32 * 0.5 + 1.0);
            }
            if c % 4 == 0 {
                m.set(2, c, -(c as f32) - 1.0);
            }
        }
        let b = Beicsr::encode(&m, BeicsrConfig::sliced(32));
        (m, b)
    }

    #[test]
    fn sparse_matches_dense_reference() {
        let (m, b) = sample(100);
        let agg = SparseAggregator::default();
        for row in 0..3 {
            let mut sparse_acc = vec![0.25; 100];
            let mut dense_acc = vec![0.25; 100];
            agg.aggregate_row(&mut sparse_acc, &b, row, 0.7);
            SimdMacs::axpy(&mut dense_acc, &m.row(row), 0.7);
            for (s, d) in sparse_acc.iter().zip(&dense_acc) {
                assert!((s - d).abs() < 1e-5, "row {row}: {s} vs {d}");
            }
        }
    }

    #[test]
    fn multiplies_equal_nnz_only() {
        let (m, b) = sample(96);
        let agg = SparseAggregator::default();
        let mut acc = vec![0.0; 96];
        let cost = agg.aggregate_row(&mut acc, &b, 1, 1.0);
        let nnz = m.row(1).iter().filter(|&&v| v != 0.0).count() as u64;
        assert_eq!(cost.multiplies, nnz);
        // Dense pays the full width.
        let mut acc2 = vec![0.0; 96];
        let dense_cost = agg.aggregate_dense(&mut acc2, &m.row(1), 1.0);
        assert_eq!(dense_cost.multiplies, 96);
        assert!(cost.multiplies < dense_cost.multiplies);
    }

    #[test]
    fn empty_slice_costs_one_cycle() {
        let m = DenseMatrix::zeros(1, 32);
        let b = Beicsr::encode(&m, BeicsrConfig::sliced(32));
        let agg = SparseAggregator::default();
        let mut acc = vec![0.0; 32];
        let cost = agg.aggregate_slice(&mut acc, &b, 0, 0, 2.0);
        assert_eq!(cost.multiplies, 0);
        assert_eq!(cost.cycles, 1); // bitmap inspection still takes a beat
        assert!(acc.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cachelines_track_occupancy() {
        let mut m = DenseMatrix::zeros(1, 96);
        // 90 of 96 non-zero: bitmap 12 B + 360 B values → 6 lines.
        for c in 0..90 {
            m.set(0, c, 1.0);
        }
        let b = Beicsr::encode(&m, BeicsrConfig::sliced(96));
        let agg = SparseAggregator::default();
        let mut acc = vec![0.0; 96];
        let dense_lines = agg.aggregate_slice(&mut acc, &b, 0, 0, 1.0).cachelines;
        assert_eq!(dense_lines, 6);
        // 10 of 96 → 12 + 40 = 52 B → 1 line.
        let mut m2 = DenseMatrix::zeros(1, 96);
        for c in 0..10 {
            m2.set(0, c, 1.0);
        }
        let b2 = Beicsr::encode(&m2, BeicsrConfig::sliced(96));
        let mut acc2 = vec![0.0; 96];
        assert_eq!(agg.aggregate_slice(&mut acc2, &b2, 0, 0, 1.0).cachelines, 1);
    }

    #[test]
    #[should_panic(expected = "accumulator width")]
    fn wrong_acc_width_panics() {
        let (_, b) = sample(64);
        let agg = SparseAggregator::default();
        let mut acc = vec![0.0; 7];
        let _ = agg.aggregate_slice(&mut acc, &b, 0, 0, 1.0);
    }
}
