//! Offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Provides the strategy combinators and the [`proptest!`] macro this
//! workspace's property tests use. Cases are generated from a seed derived
//! from the test name, so every run is reproducible; there is no
//! shrinking — a failure reports the case index, and re-running reproduces
//! the identical inputs.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// The RNG driving case generation.
pub type TestRng = SmallRng;

/// Number of cases per property (override with `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// FNV-1a hash of a test name, for seeding.
pub fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// The deterministic RNG for one (test, case) pair.
pub fn test_rng(name_hash: u64, case: u32) -> TestRng {
    SmallRng::seed_from_u64(name_hash ^ ((case as u64) << 32 | 0x5eed))
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use rand::Rng;

    /// Uniform `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `bool` strategy instance.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use rand::Rng;

    /// See [`of`].
    #[derive(Debug, Clone, Copy)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option<S::Value>` drawing `Some` three times out of four
    /// (mirroring upstream proptest's bias toward the populated arm).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Size specification for [`vec()`]: an exact count or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `assert!` under a property (no shrinking, so it is a plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Weighted (or unweighted) union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, ::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::DynStrategy<_>>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Declares property tests: each function runs [`cases`]`()` generated
/// cases with inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    ($( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            #[test]
            fn $name() {
                for case in 0..$crate::cases() {
                    let mut rng =
                        $crate::test_rng($crate::fnv(stringify!($name)), case);
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )+
    };
}
