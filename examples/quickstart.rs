//! Quickstart: build a scaled Cora workload, simulate SGCN against the
//! GCNAX baseline, and print the headline numbers.
//!
//! Run with: `cargo run --release --example quickstart`

use sgcn::accel::AccelModel;
use sgcn::config::HwConfig;
use sgcn::workload::Workload;
use sgcn_graph::datasets::{DatasetId, SynthScale};
use sgcn_mem::Traffic;
use sgcn_model::NetworkConfig;

fn main() {
    // A 28-layer, 256-wide residual GCN on a scaled synthetic Cora.
    let workload = Workload::build(
        DatasetId::Cora,
        SynthScale::default(),
        NetworkConfig::paper_default(),
        7,
    );
    println!(
        "workload: {} — {} vertices, {} edges, avg intermediate sparsity {:.1}%",
        workload.dataset.spec.name,
        workload.vertices(),
        workload.effective_edges(),
        100.0 * workload.trace.avg_intermediate_sparsity()
    );

    // The paper's platform, cache scaled with the graph (see DESIGN.md).
    let hw = HwConfig::default().with_cache_kib(64);

    let baseline = AccelModel::gcnax().simulate(&workload, &hw);
    let sgcn = AccelModel::sgcn().simulate(&workload, &hw);

    println!();
    for r in [&baseline, &sgcn] {
        println!(
            "{:<8} {:>12} cycles  {:>12} DRAM bytes  {:>8.3} mJ",
            r.accelerator,
            r.cycles,
            r.dram_bytes(),
            r.energy.total_mj()
        );
    }
    println!();
    println!(
        "speedup over GCNAX      : {:.2}x",
        sgcn.speedup_over(&baseline)
    );
    println!(
        "feature-read traffic cut: {:.1}%",
        100.0
            * (1.0
                - sgcn.dram_bytes_for(Traffic::FeatureRead) as f64
                    / baseline.dram_bytes_for(Traffic::FeatureRead) as f64)
    );
    println!(
        "energy vs GCNAX         : {:.1}%",
        100.0 * sgcn.energy_vs(&baseline)
    );
}
