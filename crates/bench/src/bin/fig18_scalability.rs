//! Fig. 18: SGCN scalability with engine count on HBM1 vs HBM2.

use sgcn::experiments::fig18_scalability;
use sgcn_bench::{banner, experiment_config};
use sgcn_graph::datasets::DatasetId;

fn main() {
    banner("Fig 18: scalability");
    let cfg = experiment_config();
    println!(
        "{}",
        fig18_scalability(&cfg, &[1, 2, 4, 8, 16, 32], DatasetId::Reddit)
    );
    println!(
        "Paper shape: near-linear scaling to ~8 engines, saturating around 16 as\n\
         the memory module's bandwidth limit is reached; HBM1 saturates earlier\n\
         and at roughly half the speedup."
    );
}
