//! Fig. 15: sensitivity to (a) network depth and (b) cache size.

use sgcn::experiments::{fig15a_layer_sensitivity, fig15b_cache_sensitivity};
use sgcn_bench::{banner, experiment_config, quick_mode, selected_datasets};

fn main() {
    banner("Fig 15: depth and cache sensitivity");
    let cfg = experiment_config();
    let depths: &[usize] = if quick_mode() {
        &[4, 8]
    } else {
        &[7, 14, 28, 56, 112]
    };
    println!("{}", fig15a_layer_sensitivity(&cfg, depths));

    // The cache sweep scales with the scaled-down graphs: the paper sweeps
    // 256K..4M around its 512K default; we sweep the same ×0.5..×8 ratios
    // around the scaled default.
    let base = cfg.cache_kib;
    let caches: Vec<u64> = [base / 2, base, base * 2, base * 4, base * 8].to_vec();
    println!(
        "{}",
        fig15b_cache_sensitivity(&cfg, &caches, &selected_datasets())
    );
    println!(
        "Paper shape: the speedup holds across depths (sparsity is depth-stable)\n\
         and across cache sizes; SAC's margin narrows at very small caches and\n\
         the gap persists at large ones until everything fits."
    );
}
