//! BEICSR in isolation: encode a ~50%-sparse feature matrix, inspect the
//! compression geometry, and aggregate straight from the compressed form
//! with the sparse aggregator — verifying against a dense reference.
//!
//! Run with: `cargo run --release --example compress_features`

use sgcn_engines::{SimdMacs, SparseAggregator};
use sgcn_formats::{Beicsr, BeicsrConfig, FeatureFormat};
use sgcn_model::features::synthesize_features;

fn main() {
    let rows = 1024;
    let width = 256;
    let dense = synthesize_features(rows, width, 0.55, 1);
    println!(
        "dense matrix: {rows}×{width}, sparsity {:.1}%",
        100.0 * dense.sparsity()
    );

    let beicsr = Beicsr::encode(&dense, BeicsrConfig::default());
    println!(
        "BEICSR: {} unit slices of {} elems, slot = {} B (bitmap {} B at head)",
        beicsr.num_slices(),
        beicsr.slice_elems(),
        beicsr.slot_bytes(),
        beicsr.bitmap_bytes()
    );

    // Traffic: cacheline-rounded bytes to stream every row once.
    let dense_bytes: u64 = (0..rows).map(|r| dense.row_read_bytes(r)).sum();
    let beicsr_bytes: u64 = (0..rows).map(|r| beicsr.row_read_bytes(r)).sum();
    println!(
        "full-sweep read traffic: dense {} KB, BEICSR {} KB ({:.1}% saved)",
        dense_bytes / 1024,
        beicsr_bytes / 1024,
        100.0 * (1.0 - beicsr_bytes as f64 / dense_bytes as f64)
    );

    // Aggregate a weighted sum of 64 rows from the compressed form.
    let agg = SparseAggregator::default();
    let mut sparse_acc = vec![0.0f32; width];
    let mut dense_acc = vec![0.0f32; width];
    let mut multiplies = 0u64;
    for r in 0..64 {
        let w = 1.0 / (r as f32 + 1.0);
        multiplies += agg.aggregate_row(&mut sparse_acc, &beicsr, r, w).multiplies;
        SimdMacs::axpy(&mut dense_acc, dense.row_slice(r), w);
    }
    let max_err = sparse_acc
        .iter()
        .zip(&dense_acc)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!(
        "sparse aggregation of 64 rows: {} multiplies (dense would be {}), max err {:.2e}",
        multiplies,
        64 * width,
        max_err
    );
    assert!(
        max_err < 1e-4,
        "sparse aggregation must match dense reference"
    );
    println!("OK: compressed aggregation matches the dense reference");
}
