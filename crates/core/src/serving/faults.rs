//! Failure drills for the queueing simulator: deterministic engine
//! crash/recovery schedules, bounded retry/redrive, and elastic
//! autoscaling.
//!
//! The scenario lab (PRs 3–5) models live traffic, SLOs and
//! heterogeneous fleets, but every engine was immortal and every fleet
//! static. This module supplies the missing resilience knobs, all under
//! the same purity discipline as [`super::traffic`] — every schedule is
//! a pure function of `(seed, engine, incident, params)`, never of
//! simulation state or thread schedule:
//!
//! * [`FailureModel`] — how engines fail: never, a fixed script of
//!   incidents (absolute cycles), or MTBF/MTTR-style exponential draws
//!   coined from `(seed, engine, incident)` with the means expressed in
//!   multiples of the stream's mean cold service time (so one knob
//!   setting stresses quick- and paper-scale runs alike).
//! * [`FaultPlan`] — the materialized schedule: a time-sorted list of
//!   [`Incident`]s the event loop injects as first-class events. A
//!   crashed engine drops its in-flight request and its queue; a
//!   recovered engine returns **cold** (its `MemorySystem` reset), so
//!   warm-hit rates honestly pay the recovery penalty.
//! * [`RetryPolicy`] — bounded redrive of fault-killed requests:
//!   a configurable attempt budget plus a fixed backoff (cycles)
//!   between the kill and re-dispatch. Requests that exhaust the budget
//!   (or can never be re-dispatched) become the `failed` terminal state
//!   alongside completed/shed.
//! * [`ScalePolicy`] — elastic fleets: engines spin up when backlog
//!   pressure exceeds a threshold (paying a provisioning delay and a
//!   cold-cache warm-up) and park when the fleet idles, bounded by
//!   min/max fleet size.

use std::fmt::Write as _;

/// One engine outage: the engine is unavailable over
/// `[down_at, up_at)` and returns **cold** at `up_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Incident {
    /// The engine that fails.
    pub engine: usize,
    /// Crash instant (cycles).
    pub down_at: u64,
    /// Recovery instant (cycles, strictly after `down_at`).
    pub up_at: u64,
}

/// One unit-mean exponential draw from the `(seed, engine, incident,
/// lane)` stream — the same splitmix64-finalizer discipline as the
/// traffic models, salted so fault draws never correlate with arrival
/// gaps under the same seed.
fn unit_exponential(seed: u64, engine: usize, incident: usize, lane: u64) -> f64 {
    let mut z = (seed ^ 0xFA17_0000_DEAD_0001)
        .wrapping_add((engine as u64).wrapping_mul(0xA24B_AED4_963E_E407))
        .wrapping_add((incident as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(lane.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Map to (0, 1]: the +1 keeps the uniform strictly positive so the
    // log is finite, and the draw is pure in its inputs.
    let u = (z >> 11) as f64 / (1u64 << 53) as f64;
    -(1.0 - u).max(f64::MIN_POSITIVE).ln()
}

/// How the fleet fails — the `SGCN_FAULTS` knob.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureModel {
    /// No faults (the immortal PR 3–5 fleet).
    None,
    /// A fixed incident script (absolute cycles) — the regression seam:
    /// a drill pinned in a test replays the exact same outages forever.
    Scripted(Vec<Incident>),
    /// MTBF/MTTR-style exponential incidents per engine, means expressed
    /// in multiples of the stream's mean cold service time.
    Mtbf {
        /// Mean time between failures, in mean cold services.
        mtbf_services: f64,
        /// Mean time to recovery, in mean cold services.
        mttr_services: f64,
        /// Incidents materialized per engine (the schedule is finite and
        /// fixed up front; incidents beyond the run simply never fire).
        incidents_per_engine: usize,
    },
}

impl FailureModel {
    /// The default MTBF shape: fail every ~24 mean services, recover in
    /// ~6, three incidents per engine.
    pub fn mtbf_default() -> FailureModel {
        FailureModel::Mtbf {
            mtbf_services: 24.0,
            mttr_services: 6.0,
            incidents_per_engine: 3,
        }
    }

    /// Whether this is the no-fault model.
    pub fn is_none(&self) -> bool {
        matches!(self, FailureModel::None)
    }

    /// Display label (stable — appears in golden snapshots and
    /// `BENCH_queue.json`). Mean multiples are formatted with one
    /// decimal so labels stay byte-deterministic.
    pub fn label(&self) -> String {
        match self {
            FailureModel::None => "none".into(),
            FailureModel::Scripted(incidents) => format!("script:{}", incidents.len()),
            FailureModel::Mtbf {
                mtbf_services,
                mttr_services,
                incidents_per_engine,
            } => format!("mtbf:{mtbf_services:.1}x{mttr_services:.1}x{incidents_per_engine}"),
        }
    }

    /// Parses an `SGCN_FAULTS`-style spec: `none`, `mtbf` (defaults),
    /// `mtbf:M,R[,K]` (MTBF/MTTR in mean services, K incidents per
    /// engine), or `script:E@DOWN+DUR[;E@DOWN+DUR...]` (absolute
    /// cycles). `None` for unknown or degenerate specs.
    pub fn parse(spec: &str) -> Option<FailureModel> {
        let spec = spec.trim().to_ascii_lowercase();
        match spec.as_str() {
            "" | "none" | "off" => return Some(FailureModel::None),
            "mtbf" => return Some(FailureModel::mtbf_default()),
            _ => {}
        }
        if let Some(rest) = spec.strip_prefix("mtbf:") {
            let parts: Vec<&str> = rest.split(',').collect();
            if parts.len() < 2 || parts.len() > 3 {
                return None;
            }
            let mtbf: f64 = parts[0].trim().parse().ok()?;
            let mttr: f64 = parts[1].trim().parse().ok()?;
            let k: usize = match parts.get(2) {
                Some(p) => p.trim().parse().ok()?,
                None => 3,
            };
            if !(mtbf.is_finite() && mtbf > 0.0 && mttr.is_finite() && mttr > 0.0 && k > 0) {
                return None;
            }
            return Some(FailureModel::Mtbf {
                mtbf_services: mtbf,
                mttr_services: mttr,
                incidents_per_engine: k,
            });
        }
        if let Some(rest) = spec.strip_prefix("script:") {
            let mut incidents = Vec::new();
            for item in rest.split(';') {
                let (engine, times) = item.split_once('@')?;
                let (down, dur) = times.split_once('+')?;
                let engine: usize = engine.trim().parse().ok()?;
                let down_at: u64 = down.trim().parse().ok()?;
                let dur: u64 = dur.trim().parse().ok()?;
                if dur == 0 {
                    return None;
                }
                incidents.push(Incident {
                    engine,
                    down_at,
                    up_at: down_at.checked_add(dur)?,
                });
            }
            if incidents.is_empty() {
                return None;
            }
            return Some(FailureModel::Scripted(incidents));
        }
        None
    }

    /// Materializes the concrete incident schedule for an
    /// `engines`-wide fleet: a time-sorted [`FaultPlan`], pure in
    /// `(model, seed, engines, mean_service_cycles)`. Scripted incidents
    /// referencing engines beyond the fleet are dropped (a script is
    /// fleet-width agnostic); MTBF incidents are drawn per engine from
    /// `(seed, engine, incident)` alone.
    pub fn materialize(&self, seed: u64, engines: usize, mean_service_cycles: f64) -> FaultPlan {
        let mut incidents: Vec<Incident> = match self {
            FailureModel::None => Vec::new(),
            FailureModel::Scripted(script) => script
                .iter()
                .copied()
                .filter(|i| i.engine < engines)
                .collect(),
            FailureModel::Mtbf {
                mtbf_services,
                mttr_services,
                incidents_per_engine,
            } => {
                let mtbf = mtbf_services * mean_service_cycles;
                let mttr = mttr_services * mean_service_cycles;
                let mut out = Vec::with_capacity(engines * incidents_per_engine);
                for engine in 0..engines {
                    let mut t = 0.0f64;
                    for k in 0..*incidents_per_engine {
                        let down = t + mtbf * unit_exponential(seed, engine, k, 0);
                        let up = down + mttr * unit_exponential(seed, engine, k, 1);
                        let down_at = down.round() as u64;
                        // Outages last at least one cycle so down/up
                        // events never degenerate into a no-op pair.
                        let up_at = (up.round() as u64).max(down_at + 1);
                        out.push(Incident {
                            engine,
                            down_at,
                            up_at,
                        });
                        t = up_at as f64;
                    }
                }
                out
            }
        };
        incidents.sort_by_key(|i| (i.down_at, i.engine, i.up_at));
        FaultPlan { incidents }
    }
}

/// The materialized crash/recovery schedule of one run: incidents sorted
/// by `(down_at, engine)`. Per engine, incidents never overlap (MTBF
/// draws chain; scripts are trusted as given but replayed
/// deterministically either way).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    incidents: Vec<Incident>,
}

impl FaultPlan {
    /// The sorted incidents.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Whether the plan schedules no outage at all.
    pub fn is_empty(&self) -> bool {
        self.incidents.is_empty()
    }
}

/// Bounded retry/redrive of fault-killed requests — the `SGCN_RETRIES`
/// knob. A request killed by an engine crash (whether in flight or
/// queued on the dead engine) re-enters dispatch `backoff_cycles` later
/// unless it has already been dispatched `max_attempts` times, in which
/// case it terminates as `failed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Dispatch budget per request (first attempt included; ≥ 1).
    pub max_attempts: u32,
    /// Cycles between a kill and the re-dispatch.
    pub backoff_cycles: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_cycles: 0,
        }
    }
}

impl RetryPolicy {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts == 0` (a request must be dispatchable at
    /// least once; "no retries" is `max_attempts == 1`).
    pub fn new(max_attempts: u32, backoff_cycles: u64) -> Self {
        assert!(
            max_attempts > 0,
            "retry budget must allow at least the first attempt"
        );
        RetryPolicy {
            max_attempts,
            backoff_cycles,
        }
    }

    /// Display label (stable — appears in golden snapshots).
    pub fn label(&self) -> String {
        if self.backoff_cycles == 0 {
            format!("r{}", self.max_attempts)
        } else {
            format!("r{}+{}", self.max_attempts, self.backoff_cycles)
        }
    }

    /// Parses an `SGCN_RETRIES`-style spec: `A` or `A:BACKOFF` (attempts
    /// and backoff cycles). `None` for unknown or zero-attempt specs.
    pub fn parse(spec: &str) -> Option<RetryPolicy> {
        let spec = spec.trim();
        let (attempts, backoff) = match spec.split_once(':') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => (spec.parse().ok()?, 0),
        };
        if attempts == 0 {
            return None;
        }
        Some(RetryPolicy {
            max_attempts: attempts,
            backoff_cycles: backoff,
        })
    }
}

/// Elastic autoscaling — the `SGCN_AUTOSCALE` knob. The fleet starts
/// with `min_engines` active; every event re-evaluates backlog pressure
/// (outstanding work in mean services per available engine) and spins
/// engines up (after a provisioning delay, returning **cold**) or parks
/// idle ones, bounded by `[min_engines, cfg.engines]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePolicy {
    /// Fleet floor (the run starts here; ≥ 1).
    pub min_engines: usize,
    /// Provisioning delay before a scaled-up engine serves, in mean
    /// cold services.
    pub provision_services: f64,
    /// Scale up when backlog pressure exceeds this (mean services of
    /// outstanding work per available engine).
    pub up_pressure: f64,
    /// Scale down when pressure falls below this.
    pub down_pressure: f64,
    /// Minimum gap between scaling decisions, in mean cold services
    /// (hysteresis against flapping).
    pub cooldown_services: f64,
}

impl ScalePolicy {
    /// The default elastic shape: floor of `min_engines`, an
    /// 8-mean-service provisioning delay, scale up beyond 2 mean
    /// services of backlog per engine, park below 0.25, 4-mean-service
    /// cooldown.
    pub fn with_floor(min_engines: usize) -> Self {
        assert!(min_engines > 0, "autoscaling needs a fleet floor of >= 1");
        ScalePolicy {
            min_engines,
            provision_services: 8.0,
            up_pressure: 2.0,
            down_pressure: 0.25,
            cooldown_services: 4.0,
        }
    }

    /// Display label (stable — appears in golden snapshots).
    pub fn label(&self) -> String {
        let mut s = format!("auto:{}", self.min_engines);
        if self.provision_services != 8.0 {
            let _ = write!(s, "@{:.1}", self.provision_services);
        }
        s
    }

    /// Parses an `SGCN_AUTOSCALE`-style spec: `none`, `auto` (floor 1),
    /// `auto:MIN`, or `auto:MIN:PROVISION` (provision delay in mean
    /// services). Returns `Some(None)` for an explicit `none`/empty spec
    /// and `None` for unparseable ones.
    #[allow(clippy::option_option)]
    pub fn parse(spec: &str) -> Option<Option<ScalePolicy>> {
        let spec = spec.trim().to_ascii_lowercase();
        match spec.as_str() {
            "" | "none" | "off" => return Some(None),
            "auto" => return Some(Some(ScalePolicy::with_floor(1))),
            _ => {}
        }
        let rest = spec.strip_prefix("auto:")?;
        let parts: Vec<&str> = rest.split(':').collect();
        if parts.len() > 2 {
            return None;
        }
        let min: usize = parts[0].trim().parse().ok()?;
        if min == 0 {
            return None;
        }
        let mut policy = ScalePolicy::with_floor(min);
        if let Some(p) = parts.get(1) {
            let prov: f64 = p.trim().parse().ok()?;
            if !(prov.is_finite() && prov >= 0.0) {
                return None;
            }
            policy.provision_services = prov;
        }
        Some(Some(policy))
    }
}

/// The brownout ladder — how far the fleet has degraded. Rungs are
/// strictly ordered and every step moves exactly one rung, so a run's
/// mode trajectory is monotone between reversals (the regression
/// property the class proptests pin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeMode {
    /// Full service: the configured format policy (adaptive dispatch by
    /// default) over full-fidelity cold reports.
    Full = 0,
    /// First rung: pin every request to the cheapest fixed palette
    /// format (no per-request adaptive search, cheaper service).
    CheapFixed = 1,
    /// Second rung: serve reduced-fanout "lite" reports — a degraded
    /// answer (fewer sampled neighbors) that costs a fraction of the
    /// full service.
    Lite = 2,
}

impl DegradeMode {
    /// Number of rungs (the length of the mode-residency array).
    pub const COUNT: usize = 3;

    /// Stable report label.
    pub fn label(&self) -> &'static str {
        match self {
            DegradeMode::Full => "full",
            DegradeMode::CheapFixed => "cheap-fixed",
            DegradeMode::Lite => "lite",
        }
    }

    /// The rung index.
    pub fn idx(&self) -> usize {
        *self as usize
    }

    /// One rung further degraded (saturates at [`DegradeMode::Lite`]).
    pub fn down(&self) -> DegradeMode {
        match self {
            DegradeMode::Full => DegradeMode::CheapFixed,
            _ => DegradeMode::Lite,
        }
    }

    /// One rung recovered (saturates at [`DegradeMode::Full`]).
    pub fn up(&self) -> DegradeMode {
        match self {
            DegradeMode::Lite => DegradeMode::CheapFixed,
            _ => DegradeMode::Full,
        }
    }
}

/// Brownout / graceful degradation — the `SGCN_DEGRADE` knob. Like
/// [`ScalePolicy`], the policy is evaluated once per instant boundary
/// of the lazy event loop (never mid-instant), so same-instant event
/// interleaving cannot perturb decisions and drill replay stays
/// bit-exact. Under backlog or incident pressure the fleet steps down
/// the [`DegradeMode`] ladder one rung at a time — adaptive format →
/// cheapest fixed format → reduced-fanout lite reports — and steps back
/// up one rung at a time on recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradePolicy {
    /// Step down a rung when backlog pressure (mean services of
    /// outstanding work per available engine) exceeds this.
    pub down_pressure: f64,
    /// Step up a rung when pressure falls below this.
    pub up_pressure: f64,
    /// Minimum gap between mode changes, in mean cold services
    /// (hysteresis against flapping).
    pub cooldown_services: f64,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            down_pressure: 1.5,
            up_pressure: 0.5,
            cooldown_services: 2.0,
        }
    }
}

impl DegradePolicy {
    /// Display label (stable — appears in golden snapshots and
    /// `BENCH_queue.json`).
    pub fn label(&self) -> String {
        let d = DegradePolicy::default();
        if *self == d {
            "brownout".into()
        } else {
            format!("brownout:{:.1},{:.1}", self.down_pressure, self.up_pressure)
        }
    }

    /// Parses an `SGCN_DEGRADE`-style spec: `none`, `brownout`
    /// (defaults), or `brownout:DOWN,UP[,COOLDOWN]` (pressures and
    /// cooldown in mean services). Returns `Some(None)` for an explicit
    /// `none`/empty spec and `None` for unparseable ones.
    #[allow(clippy::option_option)]
    pub fn parse(spec: &str) -> Option<Option<DegradePolicy>> {
        let spec = spec.trim().to_ascii_lowercase();
        match spec.as_str() {
            "" | "none" | "off" => return Some(None),
            "brownout" => return Some(Some(DegradePolicy::default())),
            _ => {}
        }
        let rest = spec.strip_prefix("brownout:")?;
        let parts: Vec<&str> = rest.split(',').collect();
        if parts.len() < 2 || parts.len() > 3 {
            return None;
        }
        let down: f64 = parts[0].trim().parse().ok()?;
        let up: f64 = parts[1].trim().parse().ok()?;
        let cooldown: f64 = match parts.get(2) {
            Some(p) => p.trim().parse().ok()?,
            None => DegradePolicy::default().cooldown_services,
        };
        if !(down.is_finite() && up.is_finite() && cooldown.is_finite())
            || down <= up
            || up < 0.0
            || cooldown < 0.0
        {
            return None;
        }
        Some(Some(DegradePolicy {
            down_pressure: down,
            up_pressure: up,
            cooldown_services: cooldown,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_model_parse_and_label_round_trip() {
        assert_eq!(FailureModel::parse("none"), Some(FailureModel::None));
        assert_eq!(FailureModel::parse(""), Some(FailureModel::None));
        assert_eq!(
            FailureModel::parse("mtbf"),
            Some(FailureModel::mtbf_default())
        );
        assert_eq!(
            FailureModel::parse("mtbf:12,4"),
            Some(FailureModel::Mtbf {
                mtbf_services: 12.0,
                mttr_services: 4.0,
                incidents_per_engine: 3,
            })
        );
        assert_eq!(
            FailureModel::parse("mtbf:8,2,5"),
            Some(FailureModel::Mtbf {
                mtbf_services: 8.0,
                mttr_services: 2.0,
                incidents_per_engine: 5,
            })
        );
        let script = FailureModel::parse("script:0@1000+500;2@4000+250").expect("parses");
        assert_eq!(
            script,
            FailureModel::Scripted(vec![
                Incident {
                    engine: 0,
                    down_at: 1000,
                    up_at: 1500
                },
                Incident {
                    engine: 2,
                    down_at: 4000,
                    up_at: 4250
                },
            ])
        );
        assert_eq!(script.label(), "script:2");
        assert_eq!(FailureModel::mtbf_default().label(), "mtbf:24.0x6.0x3");
        assert_eq!(FailureModel::None.label(), "none");
        for bad in [
            "bogus",
            "mtbf:0,4",
            "mtbf:4,-1",
            "mtbf:4",
            "script:",
            "script:0@5+0",
            "script:x@1+2",
        ] {
            assert_eq!(FailureModel::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn mtbf_plan_is_pure_sorted_and_per_engine_disjoint() {
        let model = FailureModel::Mtbf {
            mtbf_services: 10.0,
            mttr_services: 3.0,
            incidents_per_engine: 4,
        };
        let a = model.materialize(7, 3, 5000.0);
        let b = model.materialize(7, 3, 5000.0);
        assert_eq!(a, b, "pure in (seed, engines, mean)");
        assert_eq!(a.incidents().len(), 12);
        assert!(a
            .incidents()
            .windows(2)
            .all(|w| w[0].down_at <= w[1].down_at));
        for e in 0..3 {
            let mine: Vec<&Incident> = a.incidents().iter().filter(|i| i.engine == e).collect();
            assert_eq!(mine.len(), 4);
            let mut sorted = mine.clone();
            sorted.sort_by_key(|i| i.down_at);
            for w in sorted.windows(2) {
                assert!(w[0].up_at <= w[1].down_at, "engine {e} outages overlap");
            }
            for i in &mine {
                assert!(i.up_at > i.down_at);
            }
        }
        // A different seed re-rolls the schedule.
        assert_ne!(model.materialize(8, 3, 5000.0), a);
        // The no-fault model materializes empty.
        assert!(FailureModel::None.materialize(7, 3, 5000.0).is_empty());
    }

    #[test]
    fn scripted_plan_drops_out_of_fleet_engines() {
        let model = FailureModel::Scripted(vec![
            Incident {
                engine: 5,
                down_at: 10,
                up_at: 20,
            },
            Incident {
                engine: 1,
                down_at: 5,
                up_at: 9,
            },
        ]);
        let plan = model.materialize(0, 2, 1000.0);
        assert_eq!(plan.incidents().len(), 1);
        assert_eq!(plan.incidents()[0].engine, 1);
    }

    #[test]
    fn retry_policy_parse_and_label() {
        assert_eq!(RetryPolicy::parse("3"), Some(RetryPolicy::new(3, 0)));
        assert_eq!(
            RetryPolicy::parse("2:5000"),
            Some(RetryPolicy::new(2, 5000))
        );
        assert_eq!(RetryPolicy::parse("0"), None);
        assert_eq!(RetryPolicy::parse("x"), None);
        assert_eq!(RetryPolicy::new(3, 0).label(), "r3");
        assert_eq!(RetryPolicy::new(2, 500).label(), "r2+500");
        assert_eq!(RetryPolicy::default(), RetryPolicy::new(3, 0));
    }

    #[test]
    #[should_panic(expected = "at least the first attempt")]
    fn zero_attempt_retry_panics() {
        let _ = RetryPolicy::new(0, 100);
    }

    #[test]
    fn scale_policy_parse_and_label() {
        assert_eq!(ScalePolicy::parse("none"), Some(None));
        assert_eq!(ScalePolicy::parse(""), Some(None));
        assert_eq!(
            ScalePolicy::parse("auto"),
            Some(Some(ScalePolicy::with_floor(1)))
        );
        assert_eq!(
            ScalePolicy::parse("auto:2"),
            Some(Some(ScalePolicy::with_floor(2)))
        );
        let custom = ScalePolicy::parse("auto:2:4").expect("parses").expect("on");
        assert_eq!(custom.min_engines, 2);
        assert_eq!(custom.provision_services, 4.0);
        assert_eq!(ScalePolicy::parse("auto:0"), None);
        assert_eq!(ScalePolicy::parse("bogus"), None);
        assert_eq!(ScalePolicy::with_floor(2).label(), "auto:2");
        assert_eq!(custom.label(), "auto:2@4.0");
    }

    #[test]
    #[should_panic(expected = "fleet floor")]
    fn zero_floor_panics() {
        let _ = ScalePolicy::with_floor(0);
    }

    #[test]
    fn degrade_policy_parse_and_label() {
        assert_eq!(DegradePolicy::parse("none"), Some(None));
        assert_eq!(DegradePolicy::parse(""), Some(None));
        assert_eq!(DegradePolicy::parse("off"), Some(None));
        assert_eq!(
            DegradePolicy::parse("brownout"),
            Some(Some(DegradePolicy::default()))
        );
        let custom = DegradePolicy::parse("brownout:2.0,0.25,3.0")
            .expect("parses")
            .expect("on");
        assert_eq!(custom.down_pressure, 2.0);
        assert_eq!(custom.up_pressure, 0.25);
        assert_eq!(custom.cooldown_services, 3.0);
        assert_eq!(DegradePolicy::default().label(), "brownout");
        assert_eq!(custom.label(), "brownout:2.0,0.2");
        for bad in [
            "bogus",
            "brownout:",
            "brownout:1.0",
            // Down must be strictly above up, pressures non-negative.
            "brownout:0.5,1.5",
            "brownout:1.5,-0.5",
            "brownout:1.5,0.5,-1",
            "brownout:nan,0.5",
        ] {
            assert_eq!(DegradePolicy::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn degrade_ladder_steps_one_rung_and_saturates() {
        assert_eq!(DegradeMode::Full.down(), DegradeMode::CheapFixed);
        assert_eq!(DegradeMode::CheapFixed.down(), DegradeMode::Lite);
        assert_eq!(DegradeMode::Lite.down(), DegradeMode::Lite);
        assert_eq!(DegradeMode::Lite.up(), DegradeMode::CheapFixed);
        assert_eq!(DegradeMode::CheapFixed.up(), DegradeMode::Full);
        assert_eq!(DegradeMode::Full.up(), DegradeMode::Full);
        assert_eq!(DegradeMode::Full.idx(), 0);
        assert_eq!(DegradeMode::Lite.idx(), DegradeMode::COUNT - 1);
        assert_eq!(
            [
                DegradeMode::Full,
                DegradeMode::CheapFixed,
                DegradeMode::Lite
            ]
            .map(|m| m.label()),
            ["full", "cheap-fixed", "lite"]
        );
    }

    #[test]
    fn fault_draws_are_decorrelated_from_lanes_and_engines() {
        let a: Vec<u64> = (0..8)
            .map(|k| (1000.0 * unit_exponential(9, 0, k, 0)) as u64)
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|k| (1000.0 * unit_exponential(9, 0, k, 1)) as u64)
            .collect();
        let c: Vec<u64> = (0..8)
            .map(|k| (1000.0 * unit_exponential(9, 1, k, 0)) as u64)
            .collect();
        assert_ne!(a, b, "TBF and TTR lanes are independent");
        assert_ne!(a, c, "engines draw independent streams");
        for &v in a.iter().chain(&b).chain(&c) {
            assert!(v < 1_000_000, "draw {v} implausibly large");
        }
    }
}
