//! Criterion microbenches for the memory hierarchy: cache probe
//! throughput and DRAM model service accounting.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sgcn_mem::{
    Cache, CacheConfig, CacheEngine, Dram, DramConfig, ListCache, MemorySystem, Traffic,
};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("sequential_probe", |b| {
        let mut cache = Cache::new(CacheConfig::default());
        b.iter(|| {
            for i in 0..10_000u64 {
                cache.access(i * 64 % (1 << 20));
            }
        })
    });
    g.bench_function("random_probe", |b| {
        let mut cache = Cache::new(CacheConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let addrs: Vec<u64> = (0..10_000)
            .map(|_| rng.gen_range(0..(1u64 << 24)))
            .collect();
        b.iter(|| {
            for &a in &addrs {
                cache.access(a);
            }
        })
    });
    g.bench_function("random_probe_list_reference", |b| {
        let mut cache = ListCache::new(CacheConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let addrs: Vec<u64> = (0..10_000)
            .map(|_| rng.gen_range(0..(1u64 << 24)))
            .collect();
        b.iter(|| {
            for &a in &addrs {
                cache.access(a);
            }
        })
    });
    g.finish();
}

/// The tentpole's batched span path vs the preserved naive per-line path:
/// identical counters, different cost.
fn bench_spans(c: &mut Criterion) {
    let mut g = c.benchmark_group("span_reads");
    // 10k spans of 384 B (a 96-column f32 slice) with feature-sweep-like
    // reuse: a hot window revisited plus a cold streaming tail.
    let mut rng = SmallRng::seed_from_u64(7);
    let spans: Vec<u64> = (0..10_000)
        .map(|i| {
            if i % 3 == 0 {
                rng.gen_range(0u64..1 << 16)
            } else {
                rng.gen_range(0u64..1 << 23)
            }
        })
        .collect();
    g.throughput(Throughput::Bytes(10_000 * 384));
    g.bench_function("fast_flat_engine", |b| {
        let mut mem = MemorySystem::with_engine(
            CacheConfig::with_capacity_kib(64),
            DramConfig::hbm2(),
            CacheEngine::Flat,
        );
        b.iter(|| {
            let mut counts = sgcn_mem::SpanCounts::default();
            for &a in &spans {
                counts.add(mem.read_span(a, 384, Traffic::FeatureRead));
            }
            counts
        })
    });
    g.bench_function("naive_list_engine", |b| {
        let mut mem = MemorySystem::with_engine(
            CacheConfig::with_capacity_kib(64),
            DramConfig::hbm2(),
            CacheEngine::List,
        );
        b.iter(|| {
            let mut counts = sgcn_mem::SpanCounts::default();
            for &a in &spans {
                counts.add(mem.read_span(a, 384, Traffic::FeatureRead));
            }
            counts
        })
    });
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("streaming_bursts", |b| {
        let mut dram = Dram::new(DramConfig::hbm2());
        b.iter(|| {
            for i in 0..10_000u64 {
                dram.access(i * 64, false);
            }
            dram.elapsed_cycles()
        })
    });
    g.finish();
}

fn bench_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("memory_system");
    g.throughput(Throughput::Bytes(10_000 * 256));
    g.bench_function("read_256B_requests", |b| {
        let mut mem = MemorySystem::new(CacheConfig::default(), DramConfig::hbm2());
        let mut rng = SmallRng::seed_from_u64(2);
        let addrs: Vec<u64> = (0..10_000)
            .map(|_| rng.gen_range(0..(1u64 << 26)))
            .collect();
        b.iter(|| {
            for &a in &addrs {
                mem.read(a, 256, Traffic::FeatureRead);
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_spans, bench_dram, bench_system);
criterion_main!(benches);
