//! Degree and locality statistics.

use crate::csr::CsrGraph;

/// Summary statistics of a topology, used by tests and the Table II report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Mean in-degree.
    pub avg_degree: f64,
    /// Maximum in-degree.
    pub max_degree: usize,
    /// Mean |dst - src| over edges — a proxy for diagonal clustering
    /// (small = clustered, as in the paper's Fig. 7b heatmaps).
    pub neighbor_id_distance: f64,
    /// Mean Jaccard similarity of the neighbor lists of ID-adjacent vertex
    /// pairs (v, v+1) — the paper's "neighbor similarity" (§V-C).
    pub adjacent_jaccard: f64,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn compute(graph: &CsrGraph) -> Self {
        let n = graph.num_vertices();
        let mut max_degree = 0usize;
        let mut dist_sum = 0f64;
        for v in 0..n {
            max_degree = max_degree.max(graph.degree(v));
            for &src in graph.neighbors(v) {
                dist_sum += (v as f64 - src as f64).abs();
            }
        }
        let edges = graph.num_edges();
        let mut jaccard_sum = 0f64;
        let mut jaccard_cnt = 0usize;
        for v in 0..n.saturating_sub(1) {
            let a = graph.neighbors(v);
            let b = graph.neighbors(v + 1);
            if a.is_empty() && b.is_empty() {
                continue;
            }
            jaccard_sum += jaccard_sorted(a, b);
            jaccard_cnt += 1;
        }
        GraphStats {
            vertices: n,
            edges,
            avg_degree: graph.avg_degree(),
            max_degree,
            neighbor_id_distance: if edges == 0 {
                0.0
            } else {
                dist_sum / edges as f64
            },
            adjacent_jaccard: if jaccard_cnt == 0 {
                0.0
            } else {
                jaccard_sum / jaccard_cnt as f64
            },
        }
    }
}

/// Jaccard similarity of two ascending-sorted sets.
fn jaccard_sorted(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, Normalization};

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard_sorted(&[1, 2, 3], &[2, 3, 4]), 0.5);
        assert_eq!(jaccard_sorted(&[1], &[1]), 1.0);
        assert_eq!(jaccard_sorted(&[1], &[2]), 0.0);
        assert_eq!(jaccard_sorted(&[], &[]), 0.0);
    }

    #[test]
    fn stats_on_small_graph() {
        let g = GraphBuilder::new(4)
            .undirected_edge(0, 1)
            .undirected_edge(1, 2)
            .undirected_edge(2, 3)
            .build(Normalization::Unit);
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 6);
        assert_eq!(s.max_degree, 2);
        assert!((s.neighbor_id_distance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clique_has_high_adjacent_jaccard() {
        let mut b = GraphBuilder::new(5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                b = b.undirected_edge(u, v);
            }
        }
        let s = GraphStats::compute(&b.build(Normalization::Unit));
        // Neighborhoods of adjacent IDs in a clique overlap in 3 of 5.
        assert!(s.adjacent_jaccard > 0.4, "{}", s.adjacent_jaccard);
    }
}
