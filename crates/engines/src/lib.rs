//! Compute-engine models for the SGCN reproduction.
//!
//! Functional + cycle models of the accelerator's datapath units (paper
//! §III-B, §V-D, §V-E):
//!
//! * [`SystolicArray`] — the 32×32 output-stationary combination engine
//!   (SCALE-Sim-class analytical cycle model),
//! * [`SimdMacs`] — the 16-way SIMD MAC lanes of each aggregation engine,
//! * [`PrefixSumUnit`] — the parallel prefix-sum unit that turns bitmap
//!   indices into packed-value positions,
//! * [`SparseAggregator`] — aggregation directly from BEICSR slices,
//! * [`Compressor`] — the post-combination ReLU + in-place BEICSR writer,
//! * [`two_stage_pipeline`] — aggregation ↔ combination phase overlap.
//!
//! Functional correctness is enforced by tests that compare every unit
//! against a dense reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod compressor;
pub mod datapath;
pub mod pipeline;
pub mod prefix_sum;
pub mod simd;
pub mod sparse_aggregator;
pub mod systolic;

pub use buffer::{BufferStats, StreamBuffer};
pub use compressor::{CompressStats, Compressor};
pub use datapath::{simulate_aggregation, DatapathConfig, DatapathProfile};
pub use pipeline::two_stage_pipeline;
pub use prefix_sum::PrefixSumUnit;
pub use simd::SimdMacs;
pub use sparse_aggregator::{AggregateCost, SparseAggregator};
pub use systolic::{SystolicArray, SystolicConfig};
