//! Graph traversal utilities: BFS levels and connected components.
//!
//! Used by the islandization analysis (I-GCN's islands are BFS regions)
//! and by workload sanity checks (a synthesized dataset should be mostly
//! one component, like the real graphs).

use std::collections::VecDeque;

use crate::csr::CsrGraph;

/// BFS distances from `source`; unreachable vertices get `u32::MAX`.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_distances(graph: &CsrGraph, source: usize) -> Vec<u32> {
    assert!(source < graph.num_vertices(), "source out of range");
    let mut dist = vec![u32::MAX; graph.num_vertices()];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source as u32);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &next in graph.neighbors(v as usize) {
            if dist[next as usize] == u32::MAX {
                dist[next as usize] = d + 1;
                queue.push_back(next);
            }
        }
    }
    dist
}

/// Connected-component labels (0-based, in discovery order) and the
/// component count.
pub fn connected_components(graph: &CsrGraph) -> (Vec<u32>, usize) {
    let n = graph.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut components = 0u32;
    let mut queue = VecDeque::new();
    for seed in 0..n {
        if label[seed] != u32::MAX {
            continue;
        }
        label[seed] = components;
        queue.push_back(seed as u32);
        while let Some(v) = queue.pop_front() {
            for &next in graph.neighbors(v as usize) {
                if label[next as usize] == u32::MAX {
                    label[next as usize] = components;
                    queue.push_back(next);
                }
            }
        }
        components += 1;
    }
    (label, components as usize)
}

/// Size of the largest connected component.
pub fn largest_component_size(graph: &CsrGraph) -> usize {
    let (labels, count) = connected_components(graph);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// An eccentricity-based diameter estimate: the farthest distance found
/// by a double-sweep BFS from `seed` (exact on trees, a lower bound in
/// general).
pub fn diameter_estimate(graph: &CsrGraph, seed: usize) -> u32 {
    if graph.num_vertices() == 0 {
        return 0;
    }
    let first = bfs_distances(graph, seed.min(graph.num_vertices() - 1));
    let (far, d1) = first
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != u32::MAX)
        .max_by_key(|(_, &d)| d)
        .map(|(i, &d)| (i, d))
        .unwrap_or((0, 0));
    let second = bfs_distances(graph, far);
    second
        .iter()
        .filter(|&&d| d != u32::MAX)
        .copied()
        .max()
        .unwrap_or(d1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, Normalization};

    fn path(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b = b.undirected_edge(v, v + 1);
        }
        b.build(Normalization::Unit)
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = bfs_distances(&g, 2);
        assert_eq!(d2, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = GraphBuilder::new(6)
            .undirected_edges([(0, 1), (1, 2), (4, 5)])
            .build(Normalization::Unit);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3); // {0,1,2}, {3}, {4,5}
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn unreachable_distance_is_max() {
        let g = GraphBuilder::new(3)
            .undirected_edge(0, 1)
            .build(Normalization::Unit);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn diameter_of_path_is_exact() {
        let g = path(7);
        assert_eq!(diameter_estimate(&g, 3), 6);
    }

    #[test]
    fn synthesized_datasets_are_mostly_connected() {
        use crate::datasets::{Dataset, DatasetId, SynthScale};
        let ds = Dataset::synthesize(DatasetId::PubMed, SynthScale::tiny(), Normalization::Unit);
        let n = ds.graph.num_vertices();
        assert!(
            largest_component_size(&ds.graph) > n * 8 / 10,
            "giant component should dominate"
        );
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bfs_bad_source_panics() {
        let g = path(3);
        let _ = bfs_distances(&g, 9);
    }
}
