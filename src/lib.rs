//! SGCN reproduction umbrella crate: examples and integration tests live here.
