//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Implements the API subset this workspace uses — [`rngs::SmallRng`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), and [`SeedableRng`] — on a
//! deterministic xoshiro256++ generator. Not cryptographic; statistical
//! quality is ample for workload synthesis and tests.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from seeds, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from, as in `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                // Wrapping span arithmetic: a negative signed `lo`
                // sign-extends to a huge u128, so a plain subtraction
                // would overflow (the half-open impl above has the same
                // shape).
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * <$t as Standard>::sample(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + (hi - lo) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z = rng.gen_range(5u64..=5);
            assert_eq!(z, 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn signed_ranges_with_negative_bounds() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..10_000 {
            let a = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&a));
            seen_neg |= a < 0;
            seen_pos |= a > 0;
            let b = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&b));
        }
        assert!(seen_neg && seen_pos, "both signs should appear");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn ranges_cover_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
