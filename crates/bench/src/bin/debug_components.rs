//! Internal debugging harness: prints the cycle/traffic components of each
//! accelerator on paper-scale workloads. Not part of the paper reproduction.

use sgcn::accel::AccelModel;
use sgcn::experiments::ExperimentConfig;
use sgcn::workload::Workload;
use sgcn_graph::datasets::DatasetId;
use sgcn_mem::Traffic;

fn main() {
    let cfg = ExperimentConfig::paper();
    let hw = cfg.hw();
    for id in [DatasetId::PubMed, DatasetId::Github] {
        let wl = Workload::build(id, cfg.scale, cfg.network(), cfg.seed);
        println!(
            "=== {} (V={} E={} spars={:.2})",
            id.abbrev(),
            wl.vertices(),
            wl.effective_edges(),
            wl.trace.avg_intermediate_sparsity()
        );
        println!(
            "{:>18} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>8}",
            "accel",
            "cycles",
            "agg",
            "comb",
            "mem",
            "dram_bytes",
            "topo",
            "f-in",
            "f-out",
            "partial",
            "hit%"
        );
        let mut lineup = AccelModel::fig11_lineup();
        lineup.push(AccelModel::sgcn_no_sac());
        lineup.push(AccelModel::sgcn_non_sliced());
        for m in lineup {
            let r = m.simulate(&wl, &hw);
            println!(
                "{:>18} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>8.1} {:>8.1}",
                r.accelerator,
                r.cycles,
                r.agg_cycles,
                r.comb_cycles,
                r.mem_cycles,
                r.dram_bytes(),
                r.dram_bytes_for(Traffic::Topology),
                r.dram_bytes_for(Traffic::FeatureRead),
                r.dram_bytes_for(Traffic::FeatureWrite),
                r.dram_bytes_for(Traffic::PartialSum),
                100.0 * r.mem.cache.hit_rate(),
                100.0 * r.mem.dram.row_hit_rate(),
            );
        }
    }
}
