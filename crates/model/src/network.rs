//! Network configuration and parameters.

use sgcn_formats::DenseMatrix;

use crate::weights::glorot;

/// Aggregation variant (paper Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum GcnVariant {
    /// Vanilla GCN: symmetric-normalized weighted aggregation (Kipf &
    /// Welling, Eq. 1/2).
    #[default]
    Gcn,
    /// GINConv: unweighted sum over neighbors plus `(1+ε)·self` — no edge
    /// weights, so the topology stream shrinks (§VI-C).
    GinConv {
        /// The self-loop scaling ε.
        eps: f32,
    },
    /// GraphSAGE-mean with neighbor sampling: at most `sample` neighbors
    /// per vertex per layer, reducing the effective edge count (§VI-C).
    GraphSage {
        /// Per-vertex neighbor sample cap.
        sample: usize,
    },
}

impl GcnVariant {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            GcnVariant::Gcn => "GCN",
            GcnVariant::GinConv { .. } => "GINConv",
            GcnVariant::GraphSage { .. } => "GraphSAGE",
        }
    }
}

/// Deep-GCN shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Number of layers (paper default: 28).
    pub layers: usize,
    /// Uniform intermediate feature width (paper default: 256).
    pub width: usize,
    /// Whether residual connections are present (modern vs traditional,
    /// Fig. 2a).
    pub residual: bool,
    /// Aggregation variant.
    pub variant: GcnVariant,
}

impl NetworkConfig {
    /// The paper's evaluated network: `layers`-deep residual GCN of
    /// uniform `width` (§VI-A: 28 layers, 256 features).
    pub fn deep_residual(layers: usize, width: usize) -> Self {
        NetworkConfig {
            layers,
            width,
            residual: true,
            variant: GcnVariant::Gcn,
        }
    }

    /// The paper's default evaluation network: 28 layers × 256 features.
    pub fn paper_default() -> Self {
        NetworkConfig::deep_residual(28, 256)
    }

    /// A traditional (non-residual) GCN of the same shape (Fig. 2a's
    /// "Traditional" bars).
    pub fn traditional(layers: usize, width: usize) -> Self {
        NetworkConfig {
            layers,
            width,
            residual: false,
            variant: GcnVariant::Gcn,
        }
    }

    /// Switches the aggregation variant.
    pub fn with_variant(mut self, variant: GcnVariant) -> Self {
        self.variant = variant;
        self
    }
}

/// A deep GCN's parameters: one `width×width` weight matrix per layer,
/// except the first which maps `input_width → width`.
#[derive(Debug, Clone, PartialEq)]
pub struct GcnNetwork {
    config: NetworkConfig,
    input_width: usize,
    weights: Vec<DenseMatrix>,
}

impl GcnNetwork {
    /// Initializes deterministic Glorot weights.
    ///
    /// # Panics
    ///
    /// Panics if `layers`, `width` or `input_width` is zero.
    pub fn new(config: NetworkConfig, input_width: usize, seed: u64) -> Self {
        assert!(config.layers > 0, "network must have at least one layer");
        assert!(
            config.width > 0 && input_width > 0,
            "widths must be non-zero"
        );
        let weights = (0..config.layers)
            .map(|l| {
                let rows = if l == 0 { input_width } else { config.width };
                glorot(
                    rows,
                    config.width,
                    seed.wrapping_add(l as u64 * 0x9E37_79B9),
                )
            })
            .collect();
        GcnNetwork {
            config,
            input_width,
            weights,
        }
    }

    /// Shape configuration.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Input feature width.
    pub fn input_width(&self) -> usize {
        self.input_width
    }

    /// Weight matrix of layer `l` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn weight(&self, l: usize) -> &DenseMatrix {
        &self.weights[l]
    }

    /// Total weight bytes across all layers — the combination engine's
    /// weight traffic per full pass.
    pub fn weight_bytes(&self) -> u64 {
        self.weights
            .iter()
            .map(|w| (w.rows() * w.cols() * 4) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let c = NetworkConfig::paper_default();
        assert_eq!(c.layers, 28);
        assert_eq!(c.width, 256);
        assert!(c.residual);
        assert_eq!(c.variant.label(), "GCN");
    }

    #[test]
    fn first_layer_maps_input_width() {
        let n = GcnNetwork::new(NetworkConfig::deep_residual(3, 16), 100, 1);
        assert_eq!(n.weight(0).rows(), 100);
        assert_eq!(n.weight(0).cols(), 16);
        assert_eq!(n.weight(1).rows(), 16);
        assert_eq!(n.weight(2).cols(), 16);
    }

    #[test]
    fn weight_bytes_sum() {
        let n = GcnNetwork::new(NetworkConfig::deep_residual(2, 8), 4, 1);
        assert_eq!(n.weight_bytes(), (4 * 8 + 8 * 8) * 4);
    }

    #[test]
    fn layers_have_distinct_weights() {
        let n = GcnNetwork::new(NetworkConfig::deep_residual(3, 8), 8, 1);
        assert_ne!(n.weight(1), n.weight(2));
    }

    #[test]
    fn variant_labels() {
        assert_eq!(GcnVariant::GinConv { eps: 0.0 }.label(), "GINConv");
        assert_eq!(GcnVariant::GraphSage { sample: 25 }.label(), "GraphSAGE");
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_panics() {
        let _ = GcnNetwork::new(NetworkConfig::deep_residual(0, 8), 8, 1);
    }
}
