//! Functional layer operations: aggregation and combination.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sgcn_formats::DenseMatrix;
use sgcn_graph::CsrGraph;

use crate::network::GcnVariant;

/// Aggregation `H = Ã·X` (and its variant forms): collects each vertex's
/// neighbor features (§III-A).
///
/// * GCN uses the graph's stored (normalized) edge weights.
/// * GINConv ignores edge weights (unweighted sum) and adds `(1+ε)`· self.
/// * GraphSAGE averages a ≤`sample`-neighbor subset, self included.
///
/// `layer_seed` derandomizes GraphSAGE's per-layer sampling.
pub fn aggregate(
    graph: &CsrGraph,
    x: &DenseMatrix,
    variant: GcnVariant,
    layer_seed: u64,
) -> DenseMatrix {
    assert_eq!(
        graph.num_vertices(),
        x.rows(),
        "feature rows must match vertices"
    );
    let n = graph.num_vertices();
    let w = x.cols();
    let mut out = DenseMatrix::zeros(n, w);
    for v in 0..n {
        match variant {
            GcnVariant::Gcn => {
                let acc = out.row_slice_mut(v);
                for (&src, &ew) in graph.neighbors(v).iter().zip(graph.edge_weights(v)) {
                    axpy(acc, x.row_slice(src as usize), ew);
                }
            }
            GcnVariant::GinConv { eps } => {
                let acc = out.row_slice_mut(v);
                for &src in graph.neighbors(v) {
                    if src as usize == v {
                        continue; // self handled below with (1+ε)
                    }
                    axpy(acc, x.row_slice(src as usize), 1.0);
                }
                axpy(acc, x.row_slice(v), 1.0 + eps);
            }
            GcnVariant::GraphSage { sample } => {
                let chosen = sampled_neighbors(graph, v, sample, layer_seed);
                let count = (chosen.len() + 1) as f32; // + self
                let acc = out.row_slice_mut(v);
                for src in &chosen {
                    axpy(acc, x.row_slice(*src as usize), 1.0 / count);
                }
                axpy(acc, x.row_slice(v), 1.0 / count);
            }
        }
    }
    out
}

/// Deterministic ≤`sample` neighbor subset for GraphSAGE at a given layer.
pub fn sampled_neighbors(graph: &CsrGraph, v: usize, sample: usize, layer_seed: u64) -> Vec<u32> {
    let neigh = graph.neighbors(v);
    let own: Vec<u32> = neigh.iter().copied().filter(|&s| s as usize != v).collect();
    if own.len() <= sample {
        return own;
    }
    let mut rng =
        SmallRng::seed_from_u64(layer_seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut idx: Vec<usize> = (0..own.len()).collect();
    // Partial Fisher–Yates: first `sample` slots.
    for i in 0..sample {
        let j = rng.gen_range(i..idx.len());
        idx.swap(i, j);
    }
    idx[..sample].iter().map(|&i| own[i]).collect()
}

/// Combination `S = H·W` — a plain GeMM, functionally what the systolic
/// array computes.
pub fn combine(h: &DenseMatrix, weight: &DenseMatrix) -> DenseMatrix {
    assert_eq!(h.cols(), weight.rows(), "inner dimensions must agree");
    let (m, k, n) = (h.rows(), h.cols(), weight.cols());
    let mut out = DenseMatrix::zeros(m, n);
    for i in 0..m {
        let hrow = h.row_slice(i);
        let orow = out.row_slice_mut(i);
        for (p, &hv) in hrow.iter().enumerate().take(k) {
            if hv == 0.0 {
                continue;
            }
            let wrow = weight.row_slice(p);
            for (o, &wv) in orow.iter_mut().zip(wrow) {
                *o += hv * wv;
            }
        }
    }
    out
}

/// Effective directed edge count the aggregation actually traverses —
/// GraphSAGE's sampling shrinks it (§VI-C).
pub fn effective_edges(graph: &CsrGraph, variant: GcnVariant) -> usize {
    match variant {
        GcnVariant::Gcn | GcnVariant::GinConv { .. } => graph.num_edges(),
        GcnVariant::GraphSage { sample } => (0..graph.num_vertices())
            .map(|v| graph.degree(v).min(sample + 1))
            .sum(),
    }
}

fn axpy(acc: &mut [f32], row: &[f32], w: f32) {
    for (a, &v) in acc.iter_mut().zip(row) {
        *a += w * v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgcn_graph::{GraphBuilder, Normalization};

    fn line_graph(norm: Normalization) -> CsrGraph {
        GraphBuilder::new(3)
            .undirected_edge(0, 1)
            .undirected_edge(1, 2)
            .build(norm)
    }

    fn ident_features() -> DenseMatrix {
        DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0])
    }

    #[test]
    fn gcn_aggregation_weighted_sum() {
        let g = line_graph(Normalization::Unit);
        let x = ident_features();
        let h = aggregate(&g, &x, GcnVariant::Gcn, 0);
        // Vertex 0's only neighbor is 1 (unit weight): row = x[1].
        assert_eq!(h.row(0), x.row(1));
        // Vertex 1 sums x[0] + x[2].
        assert_eq!(h.row(1), vec![2.0, 1.0]);
    }

    #[test]
    fn gin_counts_self_with_eps() {
        let g = line_graph(Normalization::Unit);
        let x = ident_features();
        let h = aggregate(&g, &x, GcnVariant::GinConv { eps: 0.5 }, 0);
        // Vertex 0: x[1] + 1.5·x[0] = (1.5, 1.0).
        assert_eq!(h.row(0), vec![1.5, 1.0]);
    }

    #[test]
    fn sage_mean_includes_self() {
        let g = line_graph(Normalization::Unit);
        let x = ident_features();
        let h = aggregate(&g, &x, GcnVariant::GraphSage { sample: 8 }, 0);
        // Vertex 0: mean(x[1], x[0]) = (0.5, 0.5).
        assert_eq!(h.row(0), vec![0.5, 0.5]);
    }

    #[test]
    fn sage_sampling_caps_degree() {
        let mut b = GraphBuilder::new(10);
        for v in 1..10 {
            b = b.undirected_edge(0, v);
        }
        let g = b.build(Normalization::Unit);
        let s = sampled_neighbors(&g, 0, 4, 7);
        assert_eq!(s.len(), 4);
        // Deterministic.
        assert_eq!(s, sampled_neighbors(&g, 0, 4, 7));
        // Distinct.
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 4);
        assert_eq!(
            effective_edges(&g, GcnVariant::GraphSage { sample: 4 }),
            5 + 9
        );
    }

    #[test]
    fn combine_is_matmul() {
        let h = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let w = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let s = combine(&h, &w);
        assert_eq!(s.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gcn_symmetric_preserves_constant_vector_roughly() {
        // With symmetric normalization the aggregation of an all-ones
        // feature stays bounded (spectral radius ≤ 1).
        let g = line_graph(Normalization::Symmetric);
        let x = DenseMatrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]);
        let h = aggregate(&g, &x, GcnVariant::Gcn, 0);
        for v in 0..3 {
            assert!(h.get(v, 0) <= 1.2 && h.get(v, 0) > 0.5);
        }
    }

    #[test]
    fn effective_edges_plain() {
        let g = line_graph(Normalization::Unit);
        assert_eq!(effective_edges(&g, GcnVariant::Gcn), 4);
        assert_eq!(effective_edges(&g, GcnVariant::GinConv { eps: 0.0 }), 4);
    }
}
