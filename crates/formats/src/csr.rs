//! Compressed sparse row features — the naïve alternative the paper argues
//! against (§II-B, §V-A).
//!
//! CSR stores one 32-bit column index per non-zero plus a row-pointer array.
//! At the ~50% sparsity of deep-GCN intermediate features the index overhead
//! equals the value payload, so CSR *increases* traffic relative to dense
//! storage — the effect Fig. 3 shows. CSR only wins beyond ~90% sparsity
//! (Fig. 19), which is also why SGCN still uses CSR for the ultra-sparse
//! one-hot *input* layer (§VII-B).

use crate::layout::{align_up, Span, CACHELINE_BYTES, ELEM_BYTES};
use crate::traits::{ColRange, FeatureFormat};
use crate::DenseMatrix;

/// Feature matrix in CSR: `row_ptr`, `col_idx`, `values` arrays laid out
/// back-to-back (each cacheline-aligned).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CsrFeatures {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrFeatures {
    /// Encodes a dense matrix into CSR.
    pub fn encode(dense: &DenseMatrix) -> Self {
        let rows = dense.rows();
        let cols = dense.cols();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for (c, &v) in dense.row_slice(r).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        CsrFeatures {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Total non-zeros stored.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Non-zeros in `row`.
    pub fn row_nnz(&self, row: usize) -> usize {
        let (s, e) = self.row_bounds(row);
        e - s
    }

    /// Column indices of `row`.
    pub fn row_cols(&self, row: usize) -> &[u32] {
        let (s, e) = self.row_bounds(row);
        &self.col_idx[s..e]
    }

    /// Values of `row`.
    pub fn row_values(&self, row: usize) -> &[f32] {
        let (s, e) = self.row_bounds(row);
        &self.values[s..e]
    }

    fn row_bounds(&self, row: usize) -> (usize, usize) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        (self.row_ptr[row] as usize, self.row_ptr[row + 1] as usize)
    }

    fn col_idx_base(&self) -> u64 {
        align_up((self.rows as u64 + 1) * 4, CACHELINE_BYTES)
    }

    fn values_base(&self) -> u64 {
        align_up(self.col_idx_base() + self.nnz() as u64 * 4, CACHELINE_BYTES)
    }
}

impl FeatureFormat for CsrFeatures {
    fn format_name(&self) -> &'static str {
        "CSR"
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn capacity_bytes(&self) -> u64 {
        self.values_base() + self.nnz() as u64 * ELEM_BYTES
    }

    // The allocating span methods collect from the visitors below, so the
    // span arithmetic has a single source of truth.
    fn row_spans(&self, row: usize) -> Vec<Span> {
        let mut spans = Vec::with_capacity(3);
        self.for_each_row_span(row, &mut |s| spans.push(s));
        spans
    }

    fn slice_spans(&self, row: usize, range: ColRange) -> Vec<Span> {
        let mut spans = Vec::with_capacity(3);
        self.for_each_slice_span(row, range, &mut |s| spans.push(s));
        spans
    }

    fn write_spans(&self, row: usize) -> Vec<Span> {
        // Writing appends the row's indices and values and updates the row
        // pointer; same footprint as a full-row read.
        self.row_spans(row)
    }

    fn for_each_row_span(&self, row: usize, f: &mut dyn FnMut(Span)) {
        let (s, e) = self.row_bounds(row);
        let nnz = (e - s) as u64;
        f(Span::new(row as u64 * 4, 8)); // row_ptr[r], row_ptr[r+1]
        if nnz > 0 {
            f(Span::new(
                self.col_idx_base() + s as u64 * 4,
                (nnz * 4) as u32,
            ));
            f(Span::new(
                self.values_base() + s as u64 * 4,
                (nnz * 4) as u32,
            ));
        }
    }

    fn for_each_slice_span(&self, row: usize, range: ColRange, f: &mut dyn FnMut(Span)) {
        let (s, e) = self.row_bounds(row);
        let cols = self.row_cols(row);
        let lo = cols.partition_point(|&c| (c as usize) < range.start);
        let hi = cols.partition_point(|&c| (c as usize) < range.end);
        f(Span::new(row as u64 * 4, 8));
        if e > s {
            f(Span::new(
                self.col_idx_base() + s as u64 * 4,
                ((e - s) * 4) as u32,
            ));
        }
        if hi > lo {
            f(Span::new(
                self.values_base() + (s + lo) as u64 * 4,
                ((hi - lo) * 4) as u32,
            ));
        }
    }

    fn for_each_write_span(&self, row: usize, f: &mut dyn FnMut(Span)) {
        self.for_each_row_span(row, f);
    }

    fn decode_row(&self, row: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for (&c, &v) in self.row_cols(row).iter().zip(self.row_values(row)) {
            out[c as usize] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (DenseMatrix, CsrFeatures) {
        // The example of the paper's Fig. 6a.
        let mut m = DenseMatrix::zeros(4, 8);
        for (r, c, v) in [
            (0, 1, 7.0),
            (0, 4, 2.0),
            (0, 5, 3.0),
            (1, 7, 5.0),
            (1, 2, 1.0),
            (1, 6, 4.0),
            (2, 0, 1.0),
            (2, 1, 2.0),
            (2, 3, 3.0),
            (3, 1, 9.0),
            (3, 3, 8.0),
            (3, 5, 7.0),
        ] {
            m.set(r, c, v);
        }
        let csr = CsrFeatures::encode(&m);
        (m, csr)
    }

    #[test]
    fn roundtrip_all_rows() {
        let (m, csr) = sample();
        for r in 0..m.rows() {
            assert_eq!(csr.decode_row(r), m.row(r), "row {r}");
        }
    }

    #[test]
    fn nnz_counts() {
        let (_, csr) = sample();
        assert_eq!(csr.nnz(), 12);
        assert_eq!(csr.row_nnz(0), 3);
        assert_eq!(csr.row_cols(1), &[2, 6, 7]);
    }

    #[test]
    fn row_spans_have_index_overhead() {
        let (_, csr) = sample();
        let spans = csr.row_spans(0);
        // row_ptr 8B + indices 12B + values 12B
        let raw: u64 = spans.iter().map(|s| u64::from(s.bytes)).sum();
        assert_eq!(raw, 8 + 12 + 12);
        // CSR pays one extra u32 per non-zero vs the pure value payload —
        // index bytes equal value bytes.
        assert_eq!(spans[1].bytes, spans[2].bytes);
    }

    #[test]
    fn empty_row_touches_only_row_ptr() {
        let m = DenseMatrix::zeros(3, 8);
        let csr = CsrFeatures::encode(&m);
        let spans = csr.row_spans(1);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].bytes, 8);
        assert_eq!(csr.decode_row(1), vec![0.0; 8]);
    }

    #[test]
    fn slice_spans_scan_indices_fetch_value_window() {
        let (_, csr) = sample();
        // Row 0 non-zeros at cols 1, 4, 5. Window [4, 8) holds 2 of them.
        let spans = csr.slice_spans(0, ColRange::new(4, 8));
        // row_ptr + full index run + 2-value window
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[1].bytes, 12);
        assert_eq!(spans[2].bytes, 8);
    }

    #[test]
    fn slice_window_with_no_nonzeros() {
        let (_, csr) = sample();
        // Row 1 non-zeros at 2, 6, 7; window [3, 6) is empty.
        let spans = csr.slice_spans(1, ColRange::new(3, 6));
        assert_eq!(spans.len(), 2); // no value span
    }

    #[test]
    fn capacity_accounts_three_arrays() {
        let (_, csr) = sample();
        // 5 row ptrs (20 B → 64 aligned), 12 idx (48 → next region at 128),
        // 12 values.
        assert_eq!(csr.capacity_bytes(), 128 + 48);
    }
}
