//! Fig. 3: off-chip memory access and speedup of candidate intermediate-
//! feature formats (Dense, CSR, COO, BSR, Blocked Ellpack, BEICSR,
//! BEICSR+SAC) on a GCNAX-class tiled accelerator.

use sgcn::experiments::fig03_format_comparison;
use sgcn_bench::{banner, experiment_config, selected_datasets};

fn main() {
    banner("Fig 3: format comparison");
    let cfg = experiment_config();
    let datasets = selected_datasets();
    let (traffic, speedup) = fig03_format_comparison(&cfg, &datasets);
    println!("{traffic}");
    println!("{speedup}");
    println!(
        "Paper shape: CSR/COO *increase* traffic at 40–70% sparsity (index\n\
         overhead ≥ payload saving); blocked formats pay for non-empty blocks;\n\
         only BEICSR converts the sparsity into a traffic reduction, and SAC\n\
         adds on top."
    );
}
