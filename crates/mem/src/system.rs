//! The cache + DRAM front-end driven by the accelerator models.
//!
//! Reads probe the global cache and go to DRAM on miss; writes stream to
//! DRAM (no-allocate, invalidating stale lines) — matching the paper's
//! architecture where the compressor flushes output slices straight to
//! DRAM (§V-E) while aggregation reads flow through the global cache
//! (§III-B). Every request is tagged with a [`Traffic`] class so reports
//! can reproduce the breakdown of Fig. 14.
//!
//! The span methods ([`MemorySystem::read_span`] and friends) are the
//! allocation-free fast path: one call walks a whole byte span line by
//! line inside the crate (coalescing the per-line bookkeeping and letting
//! the cache short-circuit repeated probes) and returns the per-span
//! [`SpanCounts`]. The legacy single-shot methods (`read`, `write`, …)
//! delegate to them, so every caller sees identical counters.

use crate::cache::{Cache, CacheConfig, CacheEngine, CacheStats, ListCache};
use crate::dram::{Dram, DramConfig, DramStats};
use crate::fastdiv::FastDiv;
use sgcn_formats::LineRun;

/// Traffic classes of the paper's memory-access breakdown (Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Traffic {
    /// Graph topology (`Ã` in CSR).
    Topology,
    /// Feature reads (X^l inputs to aggregation/combination).
    FeatureRead,
    /// Feature writes (X^(l+1) outputs).
    FeatureWrite,
    /// Weight matrices.
    Weight,
    /// Partial-sum spills (AWB-GCN's column-product dataflow).
    PartialSum,
}

impl Traffic {
    /// All classes in report order.
    pub const ALL: [Traffic; 5] = [
        Traffic::Topology,
        Traffic::FeatureRead,
        Traffic::FeatureWrite,
        Traffic::Weight,
        Traffic::PartialSum,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Traffic::Topology => "topology",
            Traffic::FeatureRead => "feature-in",
            Traffic::FeatureWrite => "feature-out",
            Traffic::Weight => "weights",
            Traffic::PartialSum => "partial-sums",
        }
    }

    fn index(&self) -> usize {
        match self {
            Traffic::Topology => 0,
            Traffic::FeatureRead => 1,
            Traffic::FeatureWrite => 2,
            Traffic::Weight => 3,
            Traffic::PartialSum => 4,
        }
    }
}

impl std::fmt::Display for Traffic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-class counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficStats {
    /// Requests issued.
    pub requests: u64,
    /// Cacheline-granular bytes requested (before cache filtering).
    pub bytes_requested: u64,
    /// Bytes that reached DRAM (read misses / streamed writes).
    pub dram_bytes: u64,
}

/// Per-span result of the batched span API: how many lines the span
/// covered and how the cache filtered them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanCounts {
    /// Cache lines the span touched.
    pub lines: u64,
    /// Lines that hit in the cache.
    pub hits: u64,
    /// Lines that missed (reached DRAM).
    pub misses: u64,
}

impl SpanCounts {
    /// Accumulates another span's counts.
    pub fn add(&mut self, other: SpanCounts) {
        self.lines += other.lines;
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Snapshot returned by [`MemorySystem::report`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemReport {
    /// Cache counters.
    pub cache: CacheStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// Per-class counters, indexed per [`Traffic::ALL`].
    pub per_class: [TrafficStats; 5],
}

impl MemReport {
    /// Counters for one traffic class.
    pub fn traffic(&self, kind: Traffic) -> TrafficStats {
        self.per_class[kind.index()]
    }

    /// Bytes read from DRAM.
    pub fn dram_bytes_read(&self) -> u64 {
        self.dram.bytes_read
    }

    /// Total DRAM bytes moved (read + write).
    pub fn dram_total_bytes(&self) -> u64 {
        self.dram.total_bytes()
    }
}

/// Either cache implementation behind one probe interface (both produce
/// bit-identical statistics; see [`CacheEngine`]).
#[derive(Debug, Clone)]
enum CacheImpl {
    Flat(Cache),
    List(ListCache),
}

impl CacheImpl {
    fn flush(&mut self) {
        match self {
            CacheImpl::Flat(c) => c.flush(),
            CacheImpl::List(c) => c.flush(),
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            CacheImpl::Flat(c) => c.stats(),
            CacheImpl::List(c) => c.stats(),
        }
    }

    fn peek_line(&self, line: u64) -> bool {
        match self {
            CacheImpl::Flat(c) => c.peek_line(line),
            CacheImpl::List(c) => c.peek_line(line),
        }
    }

    fn reset_stats(&mut self) {
        match self {
            CacheImpl::Flat(c) => c.reset_stats(),
            CacheImpl::List(c) => c.reset_stats(),
        }
    }
}

/// The memory hierarchy: global cache in front of HBM.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cache: CacheImpl,
    dram: Dram,
    per_class: [TrafficStats; 5],
    line_bytes: u64,
    /// Line-byte divider (shift when power-of-two) — every span/run call
    /// derives line indices through it.
    line_div: FastDiv,
}

impl MemorySystem {
    /// Builds the hierarchy with the engine the environment selects
    /// ([`CacheEngine::from_env`]; the flat fast path unless
    /// `SGCN_NAIVE=1`).
    pub fn new(cache_config: CacheConfig, dram_config: DramConfig) -> Self {
        Self::with_engine(cache_config, dram_config, CacheEngine::from_env())
    }

    /// Builds the hierarchy with an explicit cache engine.
    pub fn with_engine(
        cache_config: CacheConfig,
        dram_config: DramConfig,
        engine: CacheEngine,
    ) -> Self {
        let line_bytes = cache_config.line_bytes;
        MemorySystem {
            cache: match engine {
                CacheEngine::Flat => CacheImpl::Flat(Cache::new(cache_config)),
                CacheEngine::List => CacheImpl::List(ListCache::new(cache_config)),
            },
            dram: Dram::new(dram_config),
            per_class: [TrafficStats::default(); 5],
            line_bytes,
            line_div: FastDiv::new(line_bytes),
        }
    }

    /// Cache line size in bytes — what callers compact spans against
    /// before handing runs to [`MemorySystem::access_lines`].
    #[inline]
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// First and last line indices a span covers (`bytes > 0`).
    #[inline]
    fn line_range(&self, addr: u64, bytes: u64) -> (u64, u64) {
        (self.line_div.div(addr), self.line_div.div(addr + bytes - 1))
    }

    /// Reads `bytes` bytes at `addr` through the cache in one batched
    /// call; misses go to DRAM. Returns the span's line/hit/miss counts.
    #[inline]
    pub fn read_span(&mut self, addr: u64, bytes: u64, kind: Traffic) -> SpanCounts {
        if bytes == 0 {
            return SpanCounts::default();
        }
        let (first, last) = self.line_range(addr, bytes);
        self.read_lines(first, last - first + 1, 1, 0, kind)
    }

    /// Replays a compacted read run (`base` is the byte base of the
    /// format's address region, which must be line-aligned — region bases
    /// are multiples of the region stride). Bit-identical counters and
    /// state to replaying the run's original spans through
    /// [`MemorySystem::read_span`] one by one: distinct lines probe once
    /// in ascending order, seam lines book their guaranteed hits without
    /// re-probing, and each merged span charges one request.
    #[inline]
    pub fn access_lines(&mut self, base: u64, run: LineRun, kind: Traffic) -> SpanCounts {
        if run.lines == 0 {
            return SpanCounts::default();
        }
        debug_assert!(
            base.is_multiple_of(self.line_bytes),
            "region base {base:#x} not aligned to {}-byte lines",
            self.line_bytes
        );
        self.read_lines(
            self.line_div.div(base) + run.first_line,
            run.lines,
            u64::from(run.spans),
            u64::from(run.seam_hits),
            kind,
        )
    }

    /// The shared read replay: `lines` consecutive cache lines from
    /// `first` charged as `spans` requests plus `seam_hits` booked
    /// repeat hits.
    fn read_lines(
        &mut self,
        first: u64,
        lines: u64,
        spans: u64,
        seam_hits: u64,
        kind: Traffic,
    ) -> SpanCounts {
        let mut hits;
        // One engine dispatch per run, not per line. The List arm is the
        // preserved seed path: per-line class bookkeeping and the
        // division-heavy DRAM reference routine.
        match &mut self.cache {
            CacheImpl::Flat(c) => {
                let line_bytes = self.line_bytes;
                let dram = &mut self.dram;
                hits = c.probe_run(first, lines, |miss_first, miss_count| {
                    dram.access_run(miss_first * line_bytes, miss_count, line_bytes, false);
                });
                c.count_repeat_hits(seam_hits);
                let stats = &mut self.per_class[kind.index()];
                stats.requests += spans;
                stats.bytes_requested += (lines + seam_hits) * line_bytes;
                stats.dram_bytes += (lines - hits) * line_bytes;
            }
            CacheImpl::List(c) => {
                hits = 0;
                self.per_class[kind.index()].requests += spans;
                for line in first..first + lines {
                    let line_addr = line * self.line_bytes;
                    self.per_class[kind.index()].bytes_requested += self.line_bytes;
                    if c.access(line_addr) {
                        hits += 1;
                    } else {
                        self.dram.access_reference(line_addr, false);
                        self.per_class[kind.index()].dram_bytes += self.line_bytes;
                    }
                }
                c.count_repeat_hits(seam_hits);
                self.per_class[kind.index()].bytes_requested += seam_hits * self.line_bytes;
            }
        }
        let misses = lines - hits;
        SpanCounts {
            lines: lines + seam_hits,
            hits: hits + seam_hits,
            misses,
        }
    }

    /// Reads `bytes` bytes at `addr` through the cache; misses go to DRAM.
    pub fn read(&mut self, addr: u64, bytes: u64, kind: Traffic) {
        self.read_span(addr, bytes, kind);
    }

    /// Non-mutating residency probe of a span: how many of its lines a
    /// read *would* hit right now. No fill, no promotion, no counters —
    /// the scheduling half of the warm-reuse hooks (a cache-affinity
    /// scheduler peeks every engine before committing a request to one).
    pub fn peek_span(&self, addr: u64, bytes: u64) -> SpanCounts {
        if bytes == 0 {
            return SpanCounts::default();
        }
        let (first, last) = self.line_range(addr, bytes);
        let lines = last - first + 1;
        let hits = (first..=last)
            .filter(|&line| self.cache.peek_line(line))
            .count() as u64;
        SpanCounts {
            lines,
            hits,
            misses: lines - hits,
        }
    }

    /// Zeroes every counter (cache, DRAM, per-class) and the DRAM service
    /// clocks while keeping the cache contents and open-row state — the
    /// reset half of the warm-reuse hooks: an engine serving a request
    /// stream resets between requests so each request reads fresh
    /// statistics off a warm hierarchy.
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
        self.dram.reset_stats();
        self.per_class = [TrafficStats::default(); 5];
    }

    /// Power-cycle reset: statistics **and** contents — the
    /// failure-drill hook. An engine recovering from a crash (or spun up
    /// by an autoscaler) comes back *cold*: the cache holds no lines,
    /// every DRAM bank's open row is closed, and all counters are zero,
    /// so the first requests it serves honestly pay the warm-up again.
    pub fn reset_cold(&mut self) {
        self.cache.flush();
        self.cache.reset_stats();
        self.dram.reset_cold();
        self.per_class = [TrafficStats::default(); 5];
    }

    /// Reads a span bypassing the cache — streaming accesses (e.g.
    /// topology in accelerators that do not cache it). Every line counts
    /// as a miss.
    pub fn read_uncached_span(&mut self, addr: u64, bytes: u64, kind: Traffic) -> SpanCounts {
        if bytes == 0 {
            return SpanCounts::default();
        }
        let (first, last) = self.line_range(addr, bytes);
        let lines = last - first + 1;
        if matches!(self.cache, CacheImpl::List(_)) {
            // Preserved seed path (per-line bookkeeping, reference DRAM).
            let stats = &mut self.per_class[kind.index()];
            stats.requests += 1;
            for line in first..=last {
                self.dram.access_reference(line * self.line_bytes, false);
                let s = &mut self.per_class[kind.index()];
                s.bytes_requested += self.line_bytes;
                s.dram_bytes += self.line_bytes;
            }
            return SpanCounts {
                lines,
                hits: 0,
                misses: lines,
            };
        }
        self.dram
            .access_run(first * self.line_bytes, lines, self.line_bytes, false);
        let stats = &mut self.per_class[kind.index()];
        stats.requests += 1;
        stats.bytes_requested += lines * self.line_bytes;
        stats.dram_bytes += lines * self.line_bytes;
        SpanCounts {
            lines,
            hits: 0,
            misses: lines,
        }
    }

    /// Reads bypassing the cache — streaming accesses (e.g. topology in
    /// accelerators that do not cache it).
    pub fn read_uncached(&mut self, addr: u64, bytes: u64, kind: Traffic) {
        self.read_uncached_span(addr, bytes, kind);
    }

    /// Streams a span to DRAM (write-no-allocate), invalidating any stale
    /// cached lines. Every line counts as a miss (it reaches DRAM).
    pub fn write_span(&mut self, addr: u64, bytes: u64, kind: Traffic) -> SpanCounts {
        if bytes == 0 {
            return SpanCounts::default();
        }
        let (first, last) = self.line_range(addr, bytes);
        self.write_lines_inner(first, last - first + 1, 1, kind)
    }

    /// Replays a compacted write run (see [`MemorySystem::access_lines`]
    /// for the `base` contract). Write runs carry no seams — the write
    /// compactor merges only strictly contiguous spans, so the streamed
    /// DRAM bursts replay in the original order and every clock/counter
    /// matches the span-at-a-time path bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the run carries seam hits (reads-only metadata).
    #[inline]
    pub fn write_lines(&mut self, base: u64, run: LineRun, kind: Traffic) -> SpanCounts {
        if run.lines == 0 {
            return SpanCounts::default();
        }
        assert_eq!(run.seam_hits, 0, "write runs never merge seams");
        debug_assert!(
            base.is_multiple_of(self.line_bytes),
            "region base {base:#x} not aligned to {}-byte lines",
            self.line_bytes
        );
        self.write_lines_inner(
            self.line_div.div(base) + run.first_line,
            run.lines,
            u64::from(run.spans),
            kind,
        )
    }

    /// The shared streaming-write replay: invalidate + DRAM burst for
    /// `lines` consecutive lines, charged as `spans` requests.
    fn write_lines_inner(
        &mut self,
        first: u64,
        lines: u64,
        spans: u64,
        kind: Traffic,
    ) -> SpanCounts {
        match &mut self.cache {
            CacheImpl::Flat(c) => {
                c.invalidate_run(first, lines);
                self.dram
                    .access_run(first * self.line_bytes, lines, self.line_bytes, true);
                let stats = &mut self.per_class[kind.index()];
                stats.requests += spans;
                stats.bytes_requested += lines * self.line_bytes;
                stats.dram_bytes += lines * self.line_bytes;
            }
            CacheImpl::List(c) => {
                // Preserved seed path.
                self.per_class[kind.index()].requests += spans;
                for line in first..first + lines {
                    let line_addr = line * self.line_bytes;
                    c.invalidate(line_addr);
                    self.dram.access_reference(line_addr, true);
                    let s = &mut self.per_class[kind.index()];
                    s.bytes_requested += self.line_bytes;
                    s.dram_bytes += self.line_bytes;
                }
            }
        }
        SpanCounts {
            lines,
            hits: 0,
            misses: lines,
        }
    }

    /// Streams `bytes` bytes at `addr` to DRAM (write-no-allocate),
    /// invalidating any stale cached lines.
    pub fn write(&mut self, addr: u64, bytes: u64, kind: Traffic) {
        self.write_span(addr, bytes, kind);
    }

    /// Read-modify-write of a span through the cache — accumulation
    /// buffers (partial sums). Hits stay on chip; a miss fetches the line
    /// and charges the eventual dirty write-back.
    pub fn read_modify_write_span(&mut self, addr: u64, bytes: u64, kind: Traffic) -> SpanCounts {
        if bytes == 0 {
            return SpanCounts::default();
        }
        let (first, last) = self.line_range(addr, bytes);
        let lines = last - first + 1;
        let mut hits = 0u64;
        match &mut self.cache {
            CacheImpl::Flat(c) => {
                for line in first..=last {
                    if c.access_line(line) {
                        hits += 1;
                    } else {
                        let line_addr = line * self.line_bytes;
                        self.dram.access(line_addr, false);
                        self.dram.access(line_addr, true); // dirty write-back
                    }
                }
            }
            CacheImpl::List(c) => {
                // Preserved seed path.
                self.per_class[kind.index()].requests += 1;
                for line in first..=last {
                    let line_addr = line * self.line_bytes;
                    self.per_class[kind.index()].bytes_requested += self.line_bytes;
                    if c.access(line_addr) {
                        hits += 1;
                    } else {
                        self.dram.access_reference(line_addr, false);
                        self.dram.access_reference(line_addr, true); // dirty write-back
                        self.per_class[kind.index()].dram_bytes += 2 * self.line_bytes;
                    }
                }
                return SpanCounts {
                    lines,
                    hits,
                    misses: lines - hits,
                };
            }
        }
        let misses = lines - hits;
        let stats = &mut self.per_class[kind.index()];
        stats.requests += 1;
        stats.bytes_requested += lines * self.line_bytes;
        stats.dram_bytes += 2 * misses * self.line_bytes;
        SpanCounts {
            lines,
            hits,
            misses,
        }
    }

    /// Read-modify-write of `bytes` at `addr` through the cache.
    pub fn read_modify_write(&mut self, addr: u64, bytes: u64, kind: Traffic) {
        self.read_modify_write_span(addr, bytes, kind);
    }

    /// Elapsed DRAM time (busiest channel) in cycles.
    pub fn elapsed_dram_cycles(&self) -> u64 {
        self.dram.elapsed_cycles()
    }

    /// Achieved DRAM bandwidth utilization over `elapsed` cycles.
    pub fn bandwidth_utilization(&self, elapsed: u64) -> f64 {
        self.dram.bandwidth_utilization(elapsed)
    }

    /// Resets the DRAM service clocks (between layers/phases).
    pub fn reset_dram_time(&mut self) {
        self.dram.reset_time();
    }

    /// Drops all cached lines (keeps statistics).
    pub fn flush_cache(&mut self) {
        self.cache.flush();
    }

    /// Counters snapshot.
    pub fn report(&self) -> MemReport {
        MemReport {
            cache: self.cache.stats(),
            dram: self.dram.stats(),
            per_class: self.per_class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::with_engine(
            CacheConfig::default(),
            DramConfig::hbm2(),
            CacheEngine::Flat,
        )
    }

    #[test]
    fn read_hits_second_time() {
        let mut m = sys();
        m.read(0, 256, Traffic::FeatureRead);
        m.read(0, 256, Traffic::FeatureRead);
        let r = m.report();
        assert_eq!(r.cache.misses, 4);
        assert_eq!(r.cache.hits, 4);
        assert_eq!(r.dram_bytes_read(), 256);
        assert_eq!(r.traffic(Traffic::FeatureRead).bytes_requested, 512);
        assert_eq!(r.traffic(Traffic::FeatureRead).dram_bytes, 256);
    }

    #[test]
    fn unaligned_read_touches_extra_line() {
        let mut m = sys();
        m.read(60, 8, Traffic::FeatureRead); // straddles two lines
        assert_eq!(m.report().dram_bytes_read(), 128);
    }

    #[test]
    fn write_streams_and_invalidates() {
        let mut m = sys();
        m.read(0, 64, Traffic::FeatureRead);
        m.write(0, 64, Traffic::FeatureWrite);
        // The line was invalidated: next read misses again.
        m.read(0, 64, Traffic::FeatureRead);
        let r = m.report();
        assert_eq!(r.cache.hits, 0);
        assert_eq!(r.dram.bytes_written, 64);
        assert_eq!(r.dram_bytes_read(), 128);
        assert_eq!(r.traffic(Traffic::FeatureWrite).dram_bytes, 64);
    }

    #[test]
    fn uncached_read_never_fills() {
        let mut m = sys();
        m.read_uncached(0, 128, Traffic::Topology);
        m.read(0, 128, Traffic::Topology);
        let r = m.report();
        // The cached read still misses: the uncached one did not fill.
        assert_eq!(r.cache.misses, 2);
        assert_eq!(r.traffic(Traffic::Topology).dram_bytes, 128 + 128);
    }

    #[test]
    fn traffic_classes_are_separate() {
        let mut m = sys();
        m.read(0, 64, Traffic::Topology);
        m.read(1 << 20, 64, Traffic::Weight);
        m.write(2 << 20, 64, Traffic::PartialSum);
        let r = m.report();
        assert_eq!(r.traffic(Traffic::Topology).requests, 1);
        assert_eq!(r.traffic(Traffic::Weight).requests, 1);
        assert_eq!(r.traffic(Traffic::PartialSum).requests, 1);
        assert_eq!(r.traffic(Traffic::FeatureRead).requests, 0);
    }

    #[test]
    fn zero_byte_ops_are_noops() {
        let mut m = sys();
        m.read(0, 0, Traffic::FeatureRead);
        m.write(0, 0, Traffic::FeatureWrite);
        assert_eq!(
            m.read_span(0, 0, Traffic::FeatureRead),
            SpanCounts::default()
        );
        let r = m.report();
        assert_eq!(r.cache.accesses(), 0);
        assert_eq!(r.dram_total_bytes(), 0);
    }

    #[test]
    fn span_counts_partition_lines() {
        let mut m = sys();
        let cold = m.read_span(0, 256, Traffic::FeatureRead);
        assert_eq!(
            cold,
            SpanCounts {
                lines: 4,
                hits: 0,
                misses: 4
            }
        );
        let warm = m.read_span(0, 256, Traffic::FeatureRead);
        assert_eq!(
            warm,
            SpanCounts {
                lines: 4,
                hits: 4,
                misses: 0
            }
        );
        let w = m.write_span(0, 100, Traffic::FeatureWrite);
        assert_eq!(
            w,
            SpanCounts {
                lines: 2,
                hits: 0,
                misses: 2
            }
        );
        let rmw = m.read_modify_write_span(0, 256, Traffic::PartialSum);
        assert_eq!(rmw.lines, 4);
        assert_eq!(rmw.hits, 2, "two lines were invalidated by the write");
        // RMW misses charge fetch + write-back.
        assert_eq!(
            m.report().traffic(Traffic::PartialSum).dram_bytes,
            2 * 2 * 64
        );
    }

    #[test]
    fn labels_are_unique() {
        let mut l: Vec<&str> = Traffic::ALL.iter().map(|t| t.label()).collect();
        l.sort_unstable();
        l.dedup();
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn peek_span_counts_residency_without_mutating() {
        let mut m = sys();
        assert_eq!(
            m.peek_span(0, 256),
            SpanCounts {
                lines: 4,
                hits: 0,
                misses: 4
            }
        );
        m.read(0, 128, Traffic::FeatureRead);
        let before = m.report();
        let p = m.peek_span(0, 256);
        assert_eq!(
            p,
            SpanCounts {
                lines: 4,
                hits: 2,
                misses: 2
            }
        );
        assert_eq!(m.report(), before, "peek must leave every counter alone");
        assert_eq!(m.peek_span(0, 0), SpanCounts::default());
    }

    #[test]
    fn reset_stats_keeps_cache_warm() {
        let mut m = sys();
        m.read(0, 256, Traffic::FeatureRead);
        m.reset_stats();
        let r = m.report();
        assert_eq!(r.cache.accesses(), 0);
        assert_eq!(r.dram_total_bytes(), 0);
        assert_eq!(r.traffic(Traffic::FeatureRead).requests, 0);
        assert_eq!(m.elapsed_dram_cycles(), 0);
        // The lines survived the reset: a re-read is all hits.
        let warm = m.read_span(0, 256, Traffic::FeatureRead);
        assert_eq!(warm.hits, 4);
        assert_eq!(m.report().dram_total_bytes(), 0);
    }

    #[test]
    fn reset_cold_drops_contents_and_stats_on_both_engines() {
        for engine in [CacheEngine::Flat, CacheEngine::List] {
            let mut m =
                MemorySystem::with_engine(CacheConfig::default(), DramConfig::hbm2(), engine);
            m.read(0, 256, Traffic::FeatureRead);
            assert!(m.peek_span(0, 256).hits > 0, "{engine:?}: lines resident");
            m.reset_cold();
            let r = m.report();
            assert_eq!(r.cache.accesses(), 0, "{engine:?}");
            assert_eq!(r.dram_total_bytes(), 0, "{engine:?}");
            assert_eq!(m.elapsed_dram_cycles(), 0, "{engine:?}");
            assert_eq!(m.peek_span(0, 256).hits, 0, "{engine:?}: contents gone");
            // The re-read pays cold misses again, including row
            // activations (open rows were closed by the power cycle).
            let cold = m.read_span(0, 256, Traffic::FeatureRead);
            assert_eq!(cold.hits, 0, "{engine:?}");
            assert!(m.report().dram_total_bytes() > 0, "{engine:?}");
        }
    }

    #[test]
    fn reset_cold_matches_a_fresh_system_bit_for_bit() {
        // A recovered engine must be indistinguishable from a brand-new
        // one: replaying the same trace on both yields identical reports
        // and clocks — the honesty guarantee failure drills rest on.
        let mut recovered = sys();
        recovered.read(0, 4096, Traffic::FeatureRead);
        recovered.write_span(512, 300, Traffic::FeatureWrite);
        recovered.reset_cold();
        let mut fresh = sys();
        for m in [&mut recovered, &mut fresh] {
            m.read(128, 700, Traffic::FeatureRead);
            m.read(128, 700, Traffic::FeatureRead);
        }
        assert_eq!(recovered.report(), fresh.report());
        assert_eq!(recovered.elapsed_dram_cycles(), fresh.elapsed_dram_cycles());
    }

    #[test]
    fn access_lines_matches_read_span() {
        let mut by_span = sys();
        let mut by_run = sys();
        by_span.read_span(128, 300, Traffic::FeatureRead);
        by_run.access_lines(0, LineRun::contiguous(2, 5), Traffic::FeatureRead);
        assert_eq!(by_span.report(), by_run.report());
        assert_eq!(by_span.elapsed_dram_cycles(), by_run.elapsed_dram_cycles());
    }

    #[test]
    fn access_lines_books_seams_as_hits_and_requests_per_span() {
        // Two byte-adjacent spans sharing a boundary line, merged into
        // one run with a seam: [0, 100) then [100, 200).
        let mut by_span = sys();
        by_span.read_span(0, 100, Traffic::FeatureRead);
        by_span.read_span(100, 100, Traffic::FeatureRead);
        let mut by_run = sys();
        let run = LineRun {
            first_line: 0,
            lines: 4,
            spans: 2,
            seam_hits: 1,
        };
        let counts = by_run.access_lines(0, run, Traffic::FeatureRead);
        assert_eq!(by_span.report(), by_run.report());
        // 4 distinct lines + 1 seam re-probe, all misses except the seam.
        assert_eq!(
            counts,
            SpanCounts {
                lines: 5,
                hits: 1,
                misses: 4
            }
        );
        let t = by_run.report().traffic(Traffic::FeatureRead);
        assert_eq!(t.requests, 2);
        assert_eq!(t.bytes_requested, 5 * 64);
        assert_eq!(t.dram_bytes, 4 * 64);
    }

    #[test]
    fn write_lines_matches_write_span() {
        let mut by_span = sys();
        let mut by_run = sys();
        for m in [&mut by_span, &mut by_run] {
            m.read(0, 256, Traffic::FeatureRead); // lines to invalidate
        }
        by_span.write_span(64, 192, Traffic::FeatureWrite);
        by_run.write_lines(
            0,
            LineRun {
                first_line: 1,
                lines: 3,
                spans: 1,
                seam_hits: 0,
            },
            Traffic::FeatureWrite,
        );
        assert_eq!(by_span.report(), by_run.report());
        assert_eq!(by_span.elapsed_dram_cycles(), by_run.elapsed_dram_cycles());
        // The written lines were invalidated in both.
        assert_eq!(by_span.peek_span(0, 256), by_run.peek_span(0, 256));
    }

    #[test]
    #[should_panic(expected = "never merge seams")]
    fn write_lines_rejects_seam_runs() {
        let mut m = sys();
        m.write_lines(
            0,
            LineRun {
                first_line: 0,
                lines: 2,
                spans: 2,
                seam_hits: 1,
            },
            Traffic::FeatureWrite,
        );
    }

    #[test]
    fn empty_runs_are_noops() {
        let mut m = sys();
        assert_eq!(
            m.access_lines(0, LineRun::default(), Traffic::FeatureRead),
            SpanCounts::default()
        );
        assert_eq!(
            m.write_lines(0, LineRun::default(), Traffic::FeatureWrite),
            SpanCounts::default()
        );
        assert_eq!(m.report().cache.accesses(), 0);
        assert_eq!(m.report().dram_total_bytes(), 0);
    }

    #[test]
    fn access_lines_rebases_onto_region_base() {
        let mut by_span = sys();
        let mut by_run = sys();
        let base = 1u64 << 20;
        by_span.read_span(base, 256, Traffic::Weight);
        by_run.access_lines(base, LineRun::contiguous(0, 4), Traffic::Weight);
        assert_eq!(by_span.report(), by_run.report());
    }

    #[test]
    fn engines_report_identical_counters() {
        let mut flat = MemorySystem::with_engine(
            CacheConfig::default(),
            DramConfig::hbm2(),
            CacheEngine::Flat,
        );
        let mut list = MemorySystem::with_engine(
            CacheConfig::default(),
            DramConfig::hbm2(),
            CacheEngine::List,
        );
        for m in [&mut flat, &mut list] {
            m.read(0, 300, Traffic::FeatureRead);
            m.read(128, 64, Traffic::FeatureRead);
            m.write(64, 256, Traffic::FeatureWrite);
            m.read_modify_write(0, 512, Traffic::PartialSum);
            m.read_uncached(4096, 128, Traffic::Topology);
        }
        assert_eq!(flat.report(), list.report());
    }
}
