//! Fig. 17: SGCN's off-chip access sensitivity to the unit slice size C.

use sgcn::experiments::fig17_slice_sensitivity;
use sgcn_bench::{banner, experiment_config, selected_datasets};

fn main() {
    banner("Fig 17: slice-size sensitivity");
    let cfg = experiment_config();
    println!(
        "{}",
        fig17_slice_sensitivity(&cfg, &[32, 64, 96, 128, 256], &selected_datasets())
    );
    println!(
        "Paper shape: performance is flat within C = 32..256 with the best point\n\
         around C = 96; bad choices still beat the dense baseline."
    );
}
