//! Service-level objectives for the queueing simulator: per-request
//! deadlines, admission control (load shedding), and violation
//! accounting.
//!
//! A deployed fleet does not let its queues grow without bound: each
//! request carries a latency budget (its SLO), the dispatcher *sheds*
//! requests it predicts cannot meet that budget, and completed requests
//! that still blew the deadline are reported as *violations*. This
//! module holds the knobs ([`SloConfig`]) and the bookkeeping
//! ([`SloStats`]); the enforcement lives in the event loop
//! ([`super::queueing::simulate_queue`]):
//!
//! * **Admission** — at arrival the dispatcher predicts the request's
//!   end-to-end latency on the engine the policy picked (its backlog
//!   plus the request's estimated service time). If the prediction
//!   exceeds the deadline and shedding is enabled, the request is
//!   rejected on the spot — it never touches an engine, never warms a
//!   cache, and is counted in [`SloStats::shed`].
//! * **Violations** — a completed request whose end-to-end latency
//!   exceeds the deadline counts as a violation (shed requests do not:
//!   the two outcomes partition the non-met SLOs by whether the system
//!   spent service capacity on them).
//! * **The `slo-aware` policy** ([`super::queueing::SchedPolicy`])
//!   complements admission by serving queued requests earliest-deadline
//!   first, spending slack where it buys the most.

/// The SLO knobs of one queueing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloConfig {
    /// End-to-end latency budget per request (cycles, from arrival).
    pub deadline_cycles: u64,
    /// Whether admission control sheds requests predicted to miss the
    /// deadline. With shedding off every request is served and misses
    /// surface as violations only.
    pub shed: bool,
}

impl SloConfig {
    /// A deadline with load shedding enabled — the production posture.
    ///
    /// # Panics
    ///
    /// Panics if `deadline_cycles == 0` (a zero budget sheds everything
    /// by definition; demand it explicitly via [`SloConfig::new`] so a
    /// forgotten knob cannot silently blackhole a run).
    pub fn shedding(deadline_cycles: u64) -> Self {
        assert!(
            deadline_cycles > 0,
            "a zero-cycle deadline sheds every request; construct it explicitly via SloConfig::new"
        );
        SloConfig {
            deadline_cycles,
            shed: true,
        }
    }

    /// Fully explicit constructor (any deadline, shedding on or off).
    pub fn new(deadline_cycles: u64, shed: bool) -> Self {
        SloConfig {
            deadline_cycles,
            shed,
        }
    }

    /// The admission decision: would a request with `predicted_wait`
    /// cycles of queueing ahead of an `estimated_service`-cycle job
    /// still meet the deadline? (Pure — the event loop calls this with
    /// the policy-chosen engine's backlog.)
    pub fn admits(&self, predicted_wait: u64, estimated_service: u64) -> bool {
        // Predicted end-to-end vs budget, with saturation so an
        // estimate beyond the deadline rejects instead of wrapping.
        estimated_service <= self.deadline_cycles
            && predicted_wait <= self.deadline_cycles - estimated_service
    }

    /// Whether a completed request's end-to-end latency violates the
    /// deadline.
    pub fn violated(&self, e2e_cycles: u64) -> bool {
        e2e_cycles > self.deadline_cycles
    }
}

/// Aggregate SLO bookkeeping of one run. Offered = completed + shed —
/// the conservation law the proptests pin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloStats {
    /// Requests that entered the system (completed + shed).
    pub offered: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests rejected at admission.
    pub shed: u64,
    /// Completed requests whose end-to-end latency exceeded the
    /// deadline (0 when no SLO is configured).
    pub violations: u64,
}

impl SloStats {
    /// `shed / offered` (0 when nothing was offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }

    /// `violations / completed` (0 when nothing completed).
    pub fn violation_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.violations as f64 / self.completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_predicted_e2e_vs_budget() {
        let slo = SloConfig::shedding(1000);
        assert!(slo.admits(0, 1000), "exact fit admits");
        assert!(slo.admits(400, 600));
        assert!(!slo.admits(401, 600), "one cycle over rejects");
        // Service alone beyond the budget rejects even with no wait.
        assert!(!slo.admits(0, 1001));
        // Saturation: enormous estimates reject instead of wrapping.
        assert!(!slo.admits(u64::MAX, u64::MAX));
    }

    #[test]
    fn violation_is_strictly_over_deadline() {
        let slo = SloConfig::new(500, false);
        assert!(!slo.violated(500));
        assert!(slo.violated(501));
    }

    #[test]
    #[should_panic(expected = "zero-cycle deadline")]
    fn zero_deadline_shedding_panics() {
        let _ = SloConfig::shedding(0);
    }

    #[test]
    fn stats_rates_guard_zero_denominators() {
        let zero = SloStats::default();
        assert_eq!(zero.shed_rate(), 0.0);
        assert_eq!(zero.violation_rate(), 0.0);
        let s = SloStats {
            offered: 10,
            completed: 6,
            shed: 4,
            violations: 3,
        };
        assert!((s.shed_rate() - 0.4).abs() < 1e-12);
        assert!((s.violation_rate() - 0.5).abs() < 1e-12);
        // The all-shed run keeps every rate finite.
        let all_shed = SloStats {
            offered: 5,
            completed: 0,
            shed: 5,
            violations: 0,
        };
        assert_eq!(all_shed.shed_rate(), 1.0);
        assert_eq!(all_shed.violation_rate(), 0.0);
    }
}
